//! # threefive-gpu-sim — a SIMT simulator for the paper's GPU kernels
//!
//! The paper's GPU results (Figures 4(c) and 5(b)) were measured on an
//! NVIDIA GTX 285 we do not have. This crate substitutes a **functional +
//! performance simulator** faithful to the execution features the paper's
//! analysis depends on:
//!
//! * **SIMT blocks** — kernels run as thread blocks with shared memory and
//!   `__syncthreads()`-style phase barriers ([`exec::BlockCtx`]);
//! * **coalescing** — every global-memory access is grouped per 32-lane
//!   warp and charged in 64-byte DRAM segments, so the traffic cost of
//!   misaligned ghost loads is measured, not assumed ([`mem`]);
//! * **instruction counting** — kernels report arithmetic and per-thread
//!   overhead ops, giving the compute side of the roofline;
//! * **capacity checks** — shared-memory and register budgets are enforced
//!   against the device model (the same constraint that makes LBM SP
//!   blocking infeasible on 16 KB, §VI-B).
//!
//! Three 7-point-stencil kernels mirror the paper's ladder:
//! [`kernels::naive_sweep`] (all taps from DRAM),
//! [`kernels::spatial_sweep`] (shared-memory 2-D tile marching Z, after
//! Micikevicius \[15\]), and [`kernels::pipelined35_sweep`] (the paper's
//! register-pipelined 3.5-D kernel, §VI-A). All three are verified
//! bit-exact against the CPU reference executor, and
//! [`timing::throughput`] converts their counters into MUPS using the
//! GTX 285 machine model.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod exec;
pub mod kernels;
pub mod mem;
pub mod timing;

pub use exec::{BlockCtx, Device, KernelStats};
pub use mem::GmemBuffer;
