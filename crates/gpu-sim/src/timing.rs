//! Converts simulator counters into predicted throughput.
//!
//! `time = max(compute time, memory time)` — the same roofline the
//! machine-model crate uses, but fed with **measured** instruction and
//! transaction counts from the simulator instead of analytic byte/op
//! multipliers. Compute time divides the summed per-thread instructions
//! by the device's usable instruction throughput; memory time divides the
//! coalesced transaction bytes by achieved DRAM bandwidth.

use threefive_machine::{gtx285, Machine, Precision};

use crate::exec::KernelStats;

/// A simulator-backed throughput estimate.
#[derive(Clone, Debug)]
pub struct SimThroughput {
    /// Million grid-point updates per second.
    pub mups: f64,
    /// Seconds spent if compute were the only limit.
    pub compute_s: f64,
    /// Seconds spent if DRAM were the only limit.
    pub memory_s: f64,
}

impl SimThroughput {
    /// Whether the kernel is compute bound under the model.
    pub fn compute_bound(&self) -> bool {
        self.compute_s >= self.memory_s
    }
}

/// Predicts throughput of a launch on `machine` (SP lanes).
///
/// `alu_eff` is the fraction of usable instruction throughput sustained
/// (see the calibration constants in `threefive_machine::roofline`).
pub fn throughput(stats: &KernelStats, machine: &Machine, alu_eff: f64) -> SimThroughput {
    let compute_s = stats.thread_ops / (machine.usable_gops(Precision::Sp) * 1e9 * alu_eff);
    let memory_s = stats.gmem_bytes() as f64 / (machine.achieved_bw_gbs * 1e9);
    let time = compute_s.max(memory_s);
    SimThroughput {
        mups: stats.committed as f64 / time / 1e6,
        compute_s,
        memory_s,
    }
}

/// Convenience: throughput on the paper's GTX 285.
pub fn throughput_gtx285(stats: &KernelStats, alu_eff: f64) -> SimThroughput {
    throughput(stats, &gtx285(), alu_eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Device;
    use crate::kernels::{
        naive_sweep, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
    };
    use threefive_grid::{Dim3, Grid3};
    use threefive_machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};

    fn ladder(d: Dim3) -> (SimThroughput, SimThroughput, SimThroughput, SimThroughput) {
        let dev = Device::gtx285();
        let k = SevenPointGpu {
            alpha: 0.45,
            beta: 0.09,
        };
        let g = Grid3::from_fn(d, |x, y, z| ((x + 2 * y + 3 * z) % 7) as f32 * 0.25);
        let (_, s_naive) = naive_sweep(&dev, k, &g, 2);
        let (_, s_spatial) = spatial_sweep(&dev, k, &g, 2);
        let (_, s_35) = pipelined35_sweep(&dev, k, &g, 2, Pipe35Config::default());
        let (_, s_35_tuned) = pipelined35_sweep(
            &dev,
            k,
            &g,
            2,
            Pipe35Config {
                ty_loaded: 12,
                overhead_per_update: 1.0,
            },
        );
        (
            throughput_gtx285(&s_naive, GPU_ALU_EFF),
            throughput_gtx285(&s_spatial, GPU_ALU_EFF),
            throughput_gtx285(&s_35, GPU_ALU_EFF),
            throughput_gtx285(&s_35_tuned, GPU_ALU_EFF_TUNED),
        )
    }

    #[test]
    fn simulated_ladder_reproduces_figure_5b_shape() {
        // A reduced workload keeps the test fast; ratios are size-stable.
        let (naive, spatial, p35, p35_tuned) = ladder(Dim3::new(128, 64, 32));
        // Monotone ladder.
        assert!(naive.mups < spatial.mups, "{} {}", naive.mups, spatial.mups);
        assert!(spatial.mups < p35.mups, "{} {}", spatial.mups, p35.mups);
        assert!(p35.mups < p35_tuned.mups);
        // Naive and spatial are bandwidth bound; the pipelined 3.5-D
        // kernel becomes compute bound (the paper's headline flip).
        assert!(!naive.compute_bound());
        assert!(!spatial.compute_bound());
        assert!(p35.compute_bound());
        // Spatial gain over naive ~ 2.8X in the paper; the simulator's
        // stricter segment accounting lands in the same neighborhood.
        let spatial_gain = spatial.mups / naive.mups;
        assert!((2.0..=4.5).contains(&spatial_gain), "{spatial_gain}");
        // Temporal gain over spatial ~ 1.9-2X in the paper.
        let temporal_gain = p35_tuned.mups / spatial.mups;
        assert!((1.4..=2.6).contains(&temporal_gain), "{temporal_gain}");
    }

    #[test]
    fn overhead_amortization_only_helps_when_compute_bound() {
        let dev = Device::gtx285();
        let k = SevenPointGpu {
            alpha: 0.4,
            beta: 0.1,
        };
        let g = Grid3::from_fn(Dim3::new(96, 48, 24), |x, y, z| (x + y + z) as f32);
        let (_, hi) = pipelined35_sweep(
            &dev,
            k,
            &g,
            2,
            Pipe35Config {
                ty_loaded: 12,
                overhead_per_update: 6.0,
            },
        );
        let (_, lo) = pipelined35_sweep(
            &dev,
            k,
            &g,
            2,
            Pipe35Config {
                ty_loaded: 12,
                overhead_per_update: 1.0,
            },
        );
        assert!(lo.thread_ops < hi.thread_ops);
        // Same traffic either way: overhead is a compute-side effect.
        assert_eq!(lo.gmem_bytes(), hi.gmem_bytes());
        let t_hi = throughput_gtx285(&hi, GPU_ALU_EFF);
        let t_lo = throughput_gtx285(&lo, GPU_ALU_EFF);
        assert!(t_lo.mups >= t_hi.mups);
    }
}
