//! The paper's GPU 7-point-stencil kernels (§VI-A, Figure 5(b) ladder).
//!
//! All kernels evaluate the stencil in the exact association order of the
//! CPU kernels (`threefive_core::SevenPoint`), so their outputs are
//! **bit-identical** to the CPU reference executor — which is how the
//! simulator's synchronization and pipelining are validated.

use threefive_grid::{Dim3, Grid3};

use crate::exec::{BlockCtx, Device, KernelStats};
use crate::mem::GmemBuffer;

/// 7-point stencil weights for the GPU kernels.
#[derive(Clone, Copy, Debug)]
pub struct SevenPointGpu {
    /// Center weight α.
    pub alpha: f32,
    /// Neighbor weight β.
    pub beta: f32,
}

/// Jacobi sweep state on "device memory": two buffers ping-ponged per
/// step, both initialized with the grid so Dirichlet boundaries persist.
struct DeviceGrids {
    dim: Dim3,
    bufs: [GmemBuffer; 2],
    src_is_zero: bool,
}

impl DeviceGrids {
    fn upload(grid: &Grid3<f32>) -> Self {
        let data = grid.as_slice().to_vec();
        let bytes = data.len() as u64 * 4;
        Self {
            dim: grid.dim(),
            bufs: [
                GmemBuffer::new(0, data.clone()),
                GmemBuffer::new(bytes + 4096, data),
            ],
            src_is_zero: true,
        }
    }

    fn src(&self) -> &GmemBuffer {
        &self.bufs[usize::from(!self.src_is_zero)]
    }

    fn dst(&self) -> &GmemBuffer {
        &self.bufs[usize::from(self.src_is_zero)]
    }

    fn swap(&mut self) {
        self.src_is_zero = !self.src_is_zero;
    }

    fn download(&self) -> Grid3<f32> {
        let mut g = Grid3::zeros(self.dim);
        g.as_mut_slice().copy_from_slice(&self.src().to_vec());
        g
    }
}

/// The shared stencil expression: identical association order everywhere.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn stencil(k: SevenPointGpu, c: f32, xm: f32, xp: f32, ym: f32, yp: f32, zm: f32, zp: f32) -> f32 {
    let sum = ((((xm + xp) + ym) + yp) + zm) + zp;
    k.alpha * c + k.beta * sum
}

/// Naive no-blocking kernel: every stencil tap is a global-memory read
/// (there is no cache on the GTX 285), one thread per (x, y) column
/// marching Z. The first bar of Figure 5(b).
pub fn naive_sweep(
    dev: &Device,
    k: SevenPointGpu,
    grid: &Grid3<f32>,
    steps: usize,
) -> (Grid3<f32>, KernelStats) {
    let mut dg = DeviceGrids::upload(grid);
    let dim = dg.dim;
    let mut stats = KernelStats::default();
    const BX: usize = 32;
    const BY: usize = 8;
    for _ in 0..steps {
        let (src, dst) = (dg.src(), dg.dst());
        for by in (0..dim.ny).step_by(BY) {
            for bx in (0..dim.nx).step_by(BX) {
                let mut ctx = BlockCtx::new(dev, BX * BY, 0, 10);
                ctx.phase(|tid, t| {
                    let gx = bx + tid % BX;
                    let gy = by + tid / BX;
                    if gx == 0 || gx >= dim.nx - 1 || gy == 0 || gy >= dim.ny - 1 {
                        return;
                    }
                    for z in 1..dim.nz - 1 {
                        let c = t.gmem_read(src, dim.idx(gx, gy, z));
                        let xm = t.gmem_read(src, dim.idx(gx - 1, gy, z));
                        let xp = t.gmem_read(src, dim.idx(gx + 1, gy, z));
                        let ym = t.gmem_read(src, dim.idx(gx, gy - 1, z));
                        let yp = t.gmem_read(src, dim.idx(gx, gy + 1, z));
                        let zm = t.gmem_read(src, dim.idx(gx, gy, z - 1));
                        let zp = t.gmem_read(src, dim.idx(gx, gy, z + 1));
                        t.ops(8.0); // 2 mul + 6 add
                        t.ops(4.0); // index arithmetic / loop overhead
                        t.gmem_write(
                            dst,
                            dim.idx(gx, gy, z),
                            stencil(k, c, xm, xp, ym, yp, zm, zp),
                        );
                    }
                });
                let mut s = ctx.finish();
                // Committed: the interior points of this block's footprint.
                let cx = interior_overlap(bx, BX, dim.nx);
                let cy = interior_overlap(by, BY, dim.ny);
                s.committed = (cx * cy * (dim.nz - 2)) as u64;
                stats.merge(&s);
            }
        }
        dg.swap();
    }
    (dg.download(), stats)
}

/// How many of `[start, start+len)` fall in the interior `[1, n-1)`.
fn interior_overlap(start: usize, len: usize, n: usize) -> usize {
    let lo = start.max(1);
    let hi = (start + len).min(n - 1);
    hi.saturating_sub(lo)
}

/// Shared-memory spatial blocking after Micikevicius \[15\]: each block
/// owns a 32×8 XY tile, keeps the current plane (plus halo) in shared
/// memory and the z±1 values in registers while marching Z. The second
/// bar of Figure 5(b) — bandwidth-bound, with halo overestimation.
pub fn spatial_sweep(
    dev: &Device,
    k: SevenPointGpu,
    grid: &Grid3<f32>,
    steps: usize,
) -> (Grid3<f32>, KernelStats) {
    let mut dg = DeviceGrids::upload(grid);
    let dim = dg.dim;
    let mut stats = KernelStats::default();
    const BX: usize = 32;
    const BY: usize = 8;
    const SX: usize = BX + 2; // smem pitch with halo
    for _ in 0..steps {
        let (src, dst) = (dg.src(), dg.dst());
        for by in (0..dim.ny).step_by(BY) {
            for bx in (0..dim.nx).step_by(BX) {
                let mut ctx = BlockCtx::new(dev, BX * BY, SX * (BY + 2), 14);
                // Per-thread registers persisting across phases.
                let mut zm_reg = vec![0.0f32; BX * BY];
                let mut cur_reg = vec![0.0f32; BX * BY];
                let mut zp_reg = vec![0.0f32; BX * BY];
                let coords = |tid: usize| (bx + tid % BX, by + tid / BX);
                let in_grid = |gx: usize, gy: usize| gx < dim.nx && gy < dim.ny;

                // Prolog: zm = plane 0, cur = plane 1.
                ctx.phase(|tid, t| {
                    let (gx, gy) = coords(tid);
                    if in_grid(gx, gy) {
                        zm_reg[tid] = t.gmem_read(src, dim.idx(gx, gy, 0));
                        cur_reg[tid] = t.gmem_read(src, dim.idx(gx, gy, 1));
                    }
                });

                for z in 1..dim.nz - 1 {
                    // Phase 1: publish current plane + halo, fetch z+1.
                    ctx.phase(|tid, t| {
                        let (gx, gy) = coords(tid);
                        if !in_grid(gx, gy) {
                            return;
                        }
                        let lx = tid % BX;
                        let ly = tid / BX;
                        t.smem_write((ly + 1) * SX + lx + 1, cur_reg[tid]);
                        // Halo loads by edge threads (the κ²·⁵ᴰ-style
                        // overestimation of GPU tiles).
                        if lx == 0 && gx > 0 {
                            let v = t.gmem_read(src, dim.idx(gx - 1, gy, z));
                            t.smem_write((ly + 1) * SX, v);
                        }
                        if lx == BX - 1 && gx + 1 < dim.nx {
                            let v = t.gmem_read(src, dim.idx(gx + 1, gy, z));
                            t.smem_write((ly + 1) * SX + lx + 2, v);
                        }
                        if ly == 0 && gy > 0 {
                            let v = t.gmem_read(src, dim.idx(gx, gy - 1, z));
                            t.smem_write(lx + 1, v);
                        }
                        if ly == BY - 1 && gy + 1 < dim.ny {
                            let v = t.gmem_read(src, dim.idx(gx, gy + 1, z));
                            t.smem_write((ly + 2) * SX + lx + 1, v);
                        }
                        zp_reg[tid] = t.gmem_read(src, dim.idx(gx, gy, z + 1));
                    });
                    // Phase 2: compute from smem + registers, write, shift.
                    ctx.phase(|tid, t| {
                        let (gx, gy) = coords(tid);
                        if !in_grid(gx, gy) {
                            return;
                        }
                        let lx = tid % BX;
                        let ly = tid / BX;
                        if gx >= 1 && gx < dim.nx - 1 && gy >= 1 && gy < dim.ny - 1 {
                            let xm = t.smem_read((ly + 1) * SX + lx);
                            let xp = t.smem_read((ly + 1) * SX + lx + 2);
                            let ym = t.smem_read(ly * SX + lx + 1);
                            let yp = t.smem_read((ly + 2) * SX + lx + 1);
                            t.ops(8.0);
                            t.ops(3.0); // loop/index overhead
                            let v =
                                stencil(k, cur_reg[tid], xm, xp, ym, yp, zm_reg[tid], zp_reg[tid]);
                            t.gmem_write(dst, dim.idx(gx, gy, z), v);
                        }
                        zm_reg[tid] = cur_reg[tid];
                        cur_reg[tid] = zp_reg[tid];
                    });
                }
                let mut s = ctx.finish();
                let cx = interior_overlap(bx, BX, dim.nx);
                let cy = interior_overlap(by, BY, dim.ny);
                s.committed = (cx * cy * (dim.nz - 2)) as u64;
                stats.merge(&s);
            }
        }
        dg.swap();
    }
    (dg.download(), stats)
}

/// Configuration of the register-pipelined 3.5-D kernel.
#[derive(Clone, Copy, Debug)]
pub struct Pipe35Config {
    /// Loaded tile rows (threads per tile = 32 × this; owned rows are 4
    /// fewer). 12 by default.
    pub ty_loaded: usize,
    /// Per-update overhead ops: per-thread index/branch work, amortized by
    /// unrolling and per-thread multi-update (§VII-C: 6 base, 3 after
    /// unroll, 1 after multi-update).
    pub overhead_per_update: f64,
}

impl Default for Pipe35Config {
    fn default() -> Self {
        Self {
            ty_loaded: 12,
            overhead_per_update: 6.0,
        }
    }
}

/// The paper's 3.5-D GPU kernel (§VI-A): `dim_T = 2`, `dimX = 32` (one
/// warp), each thread holding the `2R+2 = 4` in-flight Z planes of the
/// intermediate time level in **registers**, exchanging X/Y neighbors
/// through shared memory once per Z step. Only the inner
/// `28 × (ty_loaded − 4)` region is committed — κ ≈ 1.31 (§VI-A).
pub fn pipelined35_sweep(
    dev: &Device,
    k: SevenPointGpu,
    grid: &Grid3<f32>,
    steps: usize,
    cfg: Pipe35Config,
) -> (Grid3<f32>, KernelStats) {
    assert!(
        cfg.ty_loaded > 4,
        "Pipe35Config: ty_loaded must exceed the 2·R·dimT ghost"
    );
    let mut dg = DeviceGrids::upload(grid);
    let dim = dg.dim;
    let mut stats = KernelStats::default();
    const LX: usize = 32; // loaded tile width = warp
    const OX: usize = LX - 4; // owned width (2·R·dimT ghost per side)
    let ly_loaded = cfg.ty_loaded;
    let oy = ly_loaded - 4;

    let mut remaining = steps;
    while remaining > 0 {
        if remaining == 1 {
            // Odd tail: one plain step (the pipeline needs dim_T = 2).
            let g = dg.download();
            let (out, s) = naive_sweep(dev, k, &g, 1);
            stats.merge(&s);
            let mut back = DeviceGrids::upload(&out);
            back.src_is_zero = true;
            dg = back;
            remaining -= 1;
            continue;
        }
        let (src, dst) = (dg.src(), dg.dst());
        let mut ty = 0usize;
        while ty < dim.ny {
            let oy1 = (ty + oy).min(dim.ny);
            let mut tx = 0usize;
            while tx < dim.nx {
                let ox1 = (tx + OX).min(dim.nx);
                run_pipe35_tile(
                    dev, k, src, dst, dim, tx, ox1, ty, oy1, ly_loaded, cfg, &mut stats,
                );
                tx = ox1;
            }
            ty = oy1;
        }
        dg.swap();
        remaining -= 2;
    }
    (dg.download(), stats)
}

/// One tile of the 3.5-D pipeline (dim_T = 2, R = 1).
///
/// Both levels are register-pipelined, as in the paper's §VI-A: each
/// thread keeps a 4-plane ring of **source** values (`ring0`, filled by a
/// single coalesced DRAM read per plane) and a 4-plane ring of
/// intermediate time-level values (`ring1`). X/Y neighbor exchange goes
/// through two shared-memory planes per Z step — the "inter-thread
/// communication between threads using the shared memory" of the paper.
///
/// Z schedule at outer step `s`: load plane `s` into `ring0`; level 1
/// computes plane `s−1`; level 2 computes and commits plane `s−3`.
#[allow(clippy::too_many_arguments)]
fn run_pipe35_tile(
    dev: &Device,
    k: SevenPointGpu,
    src: &GmemBuffer,
    dst: &GmemBuffer,
    dim: Dim3,
    ox0: usize,
    ox1: usize,
    oy0: usize,
    oy1: usize,
    ly_loaded: usize,
    cfg: Pipe35Config,
    stats: &mut KernelStats,
) {
    const LX: usize = 32;
    let threads = LX * ly_loaded;
    let plane = LX * ly_loaded;
    // Two smem exchange planes; 2×4 ring registers + scratch per thread.
    let mut ctx = BlockCtx::new(dev, threads, 2 * plane, 16);
    let mut ring0 = vec![[0.0f32; 4]; threads]; // source (time T) planes
    let mut ring1 = vec![[0.0f32; 4]; threads]; // level-1 (time T+1) planes

    // Level-1 valid (computed) window and the commit window.
    let v1x = (ox0.saturating_sub(1)).max(1)..(ox1 + 1).min(dim.nx - 1);
    let v1y = (oy0.saturating_sub(1)).max(1)..(oy1 + 1).min(dim.ny - 1);
    let cx = ox0.max(1)..ox1.min(dim.nx - 1);
    let cy = oy0.max(1)..oy1.min(dim.ny - 1);
    if cx.is_empty() || cy.is_empty() {
        return;
    }

    // Thread → global coordinates: lane covers [ox0-2, ox0+30),
    // row covers [oy0-2, oy0-2+ly_loaded).
    let gcoords = move |tid: usize| {
        (
            ox0 as i64 - 2 + (tid % LX) as i64,
            oy0 as i64 - 2 + (tid / LX) as i64,
        )
    };
    let in_grid =
        move |gx: i64, gy: i64| gx >= 0 && gy >= 0 && gx < dim.nx as i64 && gy < dim.ny as i64;

    for s in 0..dim.nz + 3 {
        let z0 = s; // plane being loaded
        let z1 = s as i64 - 1; // plane level 1 computes
        let z2 = s as i64 - 3; // plane level 2 commits

        // --- Phase A: load `z0`; publish the exchange planes: smem[0] =
        // source plane `z1` (level 1's X/Y neighbors), smem[1] = level-1
        // plane `z2` (level 2's X/Y neighbors).
        ctx.phase(|tid, t| {
            let (gx, gy) = gcoords(tid);
            if !in_grid(gx, gy) {
                return;
            }
            let (gxu, gyu) = (gx as usize, gy as usize);
            if z0 < dim.nz {
                // The single coalesced DRAM read per thread per plane.
                ring0[tid][z0 % 4] = t.gmem_read(src, dim.idx(gxu, gyu, z0));
            }
            if (0..dim.nz as i64).contains(&z1) {
                t.smem_write(tid, ring0[tid][(z1 as usize) % 4]);
            }
            if (0..dim.nz as i64).contains(&z2) {
                t.smem_write(plane + tid, ring1[tid][(z2 as usize) % 4]);
            }
        });

        // --- Phase B: level 1 computes `z1` into ring1; level 2 computes
        // `z2` from smem[1] + ring1 and commits to DRAM.
        let v1x = v1x.clone();
        let v1y = v1y.clone();
        let cx = cx.clone();
        let cy = cy.clone();
        ctx.phase(|tid, t| {
            let (gx, gy) = gcoords(tid);
            if !in_grid(gx, gy) {
                return;
            }
            let (gxu, gyu) = (gx as usize, gy as usize);

            if let Ok(z1u) = usize::try_from(z1) {
                if z1u < dim.nz {
                    let slot = z1u % 4;
                    let z_rim = z1u == 0 || z1u == dim.nz - 1;
                    let xy_rim = gxu == 0 || gxu == dim.nx - 1 || gyu == 0 || gyu == dim.ny - 1;
                    if z_rim || xy_rim {
                        // Dirichlet: level-1 value = source value, already
                        // in this thread's register ring — no DRAM access.
                        ring1[tid][slot] = ring0[tid][slot];
                    } else if v1x.contains(&gxu) && v1y.contains(&gyu) {
                        let xm = t.smem_read(tid - 1);
                        let xp = t.smem_read(tid + 1);
                        let ym = t.smem_read(tid - LX);
                        let yp = t.smem_read(tid + LX);
                        let c = ring0[tid][slot];
                        let zm = ring0[tid][(z1u - 1) % 4];
                        let zp = ring0[tid][(z1u + 1) % 4];
                        t.ops(8.0);
                        t.ops(cfg.overhead_per_update);
                        ring1[tid][slot] = stencil(k, c, xm, xp, ym, yp, zm, zp);
                    }
                }
            }

            if let Ok(z2u) = usize::try_from(z2) {
                if z2u >= 1 && z2u < dim.nz - 1 && cx.contains(&gxu) && cy.contains(&gyu) {
                    let xm = t.smem_read(plane + tid - 1);
                    let xp = t.smem_read(plane + tid + 1);
                    let ym = t.smem_read(plane + tid - LX);
                    let yp = t.smem_read(plane + tid + LX);
                    let c = ring1[tid][z2u % 4];
                    let zm = ring1[tid][(z2u - 1) % 4];
                    let zp = ring1[tid][(z2u + 1) % 4];
                    t.ops(8.0);
                    t.ops(cfg.overhead_per_update);
                    t.gmem_write(
                        dst,
                        dim.idx(gxu, gyu, z2u),
                        stencil(k, c, xm, xp, ym, yp, zm, zp),
                    );
                }
            }
        });
    }

    let mut s = ctx.finish();
    s.committed = (cx.len() * cy.len() * (dim.nz - 2) * 2) as u64;
    stats.merge(&s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_core::exec::reference_sweep;
    use threefive_core::SevenPoint;
    use threefive_grid::DoubleGrid;

    fn test_grid(d: Dim3) -> Grid3<f32> {
        Grid3::from_fn(d, |x, y, z| {
            (((x * 13 + y * 7 + z * 3) % 17) as f32) * 0.125 - 1.0
        })
    }

    fn cpu_reference(d: Dim3, k: SevenPointGpu, steps: usize) -> Grid3<f32> {
        let mut g = DoubleGrid::from_initial(test_grid(d));
        reference_sweep(&SevenPoint::new(k.alpha, k.beta), &mut g, steps);
        g.src().clone()
    }

    const K: SevenPointGpu = SevenPointGpu {
        alpha: 0.45,
        beta: 0.09,
    };

    #[test]
    fn naive_kernel_is_bit_exact_with_cpu_reference() {
        let d = Dim3::new(37, 19, 9);
        let dev = Device::gtx285();
        let (out, stats) = naive_sweep(&dev, K, &test_grid(d), 3);
        let want = cpu_reference(d, K, 3);
        assert_eq!(out.as_slice(), want.as_slice());
        assert_eq!(stats.committed, 35 * 17 * 7 * 3);
        assert!(stats.gmem_read_tx > 0);
    }

    #[test]
    fn spatial_kernel_is_bit_exact_with_cpu_reference() {
        let d = Dim3::new(40, 21, 11);
        let dev = Device::gtx285();
        let (out, stats) = spatial_sweep(&dev, K, &test_grid(d), 2);
        let want = cpu_reference(d, K, 2);
        assert_eq!(out.as_slice(), want.as_slice());
        assert!(stats.smem_accesses > 0);
    }

    #[test]
    fn pipelined35_is_bit_exact_with_cpu_reference() {
        let d = Dim3::new(40, 25, 12);
        let dev = Device::gtx285();
        for steps in [2usize, 4] {
            let (out, stats) =
                pipelined35_sweep(&dev, K, &test_grid(d), steps, Pipe35Config::default());
            let want = cpu_reference(d, K, steps);
            assert_eq!(out.as_slice(), want.as_slice(), "steps={steps}");
            assert!(stats.syncs > 0);
        }
    }

    #[test]
    fn pipelined35_handles_odd_steps_via_tail_step() {
        let d = Dim3::new(36, 20, 10);
        let dev = Device::gtx285();
        for steps in [1usize, 3, 5] {
            let (out, _) =
                pipelined35_sweep(&dev, K, &test_grid(d), steps, Pipe35Config::default());
            let want = cpu_reference(d, K, steps);
            assert_eq!(out.as_slice(), want.as_slice(), "steps={steps}");
        }
    }

    #[test]
    fn spatial_blocking_slashes_read_traffic() {
        let d = Dim3::new(64, 32, 16);
        let dev = Device::gtx285();
        let g = test_grid(d);
        let (_, naive) = naive_sweep(&dev, K, &g, 1);
        let (_, spatial) = spatial_sweep(&dev, K, &g, 1);
        // Naive reads ~7 values per point; spatial ~1.3 (halo).
        let ratio = naive.gmem_read_tx as f64 / spatial.gmem_read_tx as f64;
        assert!(ratio > 2.5, "read-traffic ratio {ratio}");
    }

    #[test]
    fn pipelined35_halves_traffic_versus_spatial() {
        let d = Dim3::new(64, 32, 16);
        let dev = Device::gtx285();
        let g = test_grid(d);
        let (_, spatial) = spatial_sweep(&dev, K, &g, 2);
        let (_, p35) = pipelined35_sweep(&dev, K, &g, 2, Pipe35Config::default());
        // dim_T = 2 with κ ≈ 1.31: traffic ratio ≈ 2/1.31 ≈ 1.5.
        let ratio = spatial.gmem_bytes() as f64 / p35.gmem_bytes() as f64;
        assert!((1.2..=2.0).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn naive_reads_roughly_seven_values_per_update() {
        let d = Dim3::new(66, 34, 10);
        let dev = Device::gtx285();
        let (_, s) = naive_sweep(&dev, K, &test_grid(d), 1);
        let reads_per_update = s.gmem_bytes() as f64 / s.committed as f64 / 4.0;
        // 7 reads + 1 write = 8 values per update; the segment model
        // charges whole 64-B transactions for each partially-covered
        // segment, so the charged traffic lands noticeably above 8 —
        // exactly the effect that makes the naive kernel so slow on real
        // hardware (and footnote 1 of the paper).
        assert!(
            (8.0..=16.0).contains(&reads_per_update),
            "{reads_per_update}"
        );
    }
}
