//! The SIMT execution framework: devices, blocks, phases, counters.
//!
//! A kernel runs one [`BlockCtx`] per thread block. Inside a block the
//! kernel issues *phases*: a phase executes the thread body for every
//! thread id in order and ends with an implicit `__syncthreads()`. Any
//! value a thread writes (shared memory, global memory) is visible to
//! other threads **only in later phases**, which is exactly the CUDA
//! barrier contract — code that would race on real hardware reads stale
//! data here too, so functional results validate the synchronization
//! structure, not just the arithmetic.

use crate::mem::{warp_transactions, GmemBuffer, SEGMENT_BYTES};

/// Device model: the execution resources the kernels are checked against.
#[derive(Clone, Debug)]
pub struct Device {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Warp width (logical SIMD width).
    pub warp: usize,
    /// Shared memory per SM in bytes.
    pub smem_bytes: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads: usize,
}

impl Device {
    /// The GTX 285 of the paper: 30 SMs, 32-wide warps, 16 KB shared
    /// memory and 16 K registers per SM (§III-D, §VI).
    pub fn gtx285() -> Self {
        Self {
            sms: 30,
            warp: 32,
            smem_bytes: 16 << 10,
            regs_per_sm: 16 << 10,
            max_threads: 512,
        }
    }

    /// How many blocks of the given shape can be resident on one SM —
    /// the occupancy limit from shared memory, registers, and a hardware
    /// cap of 8 blocks/SM. Latency hiding needs at least 2; the paper's
    /// kernels are sized so the budget allows it.
    pub fn blocks_per_sm(
        &self,
        threads: usize,
        smem_bytes_used: usize,
        regs_per_thread: usize,
    ) -> usize {
        let by_threads = (self.max_threads * 2).checked_div(threads).unwrap_or(8);
        let by_smem = self.smem_bytes.checked_div(smem_bytes_used).unwrap_or(8);
        let by_regs = self
            .regs_per_sm
            .checked_div(threads * regs_per_thread)
            .unwrap_or(8);
        by_threads.min(by_smem).min(by_regs).min(8)
    }
}

/// Aggregated execution counters of a kernel launch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Per-thread instructions summed over all threads (arithmetic,
    /// memory and overhead ops in the paper's counting convention).
    pub thread_ops: f64,
    /// Coalesced global-memory read transactions (64-byte segments).
    pub gmem_read_tx: u64,
    /// Coalesced global-memory write transactions.
    pub gmem_write_tx: u64,
    /// Shared-memory scalar accesses.
    pub smem_accesses: u64,
    /// Barrier (phase) count.
    pub syncs: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Grid points whose final value was committed.
    pub committed: u64,
}

impl KernelStats {
    /// DRAM bytes moved (both directions).
    pub fn gmem_bytes(&self) -> u64 {
        (self.gmem_read_tx + self.gmem_write_tx) * SEGMENT_BYTES
    }

    /// Merges another launch's counters into this one.
    pub fn merge(&mut self, o: &KernelStats) {
        self.thread_ops += o.thread_ops;
        self.gmem_read_tx += o.gmem_read_tx;
        self.gmem_write_tx += o.gmem_write_tx;
        self.smem_accesses += o.smem_accesses;
        self.syncs += o.syncs;
        self.blocks += o.blocks;
        self.committed += o.committed;
    }
}

/// One thread block in flight.
pub struct BlockCtx<'a> {
    device: &'a Device,
    threads: usize,
    smem: Vec<f32>,
    read_addrs: Vec<Vec<u64>>,
    write_addrs: Vec<Vec<u64>>,
    stats: KernelStats,
}

impl<'a> BlockCtx<'a> {
    /// Starts a block of `threads` threads with `smem_len` shared floats.
    ///
    /// # Panics
    /// Panics if the block exceeds the device's thread, shared-memory or
    /// register budgets (`regs_per_thread` is the kernel's declared
    /// per-thread register use).
    pub fn new(
        device: &'a Device,
        threads: usize,
        smem_len: usize,
        regs_per_thread: usize,
    ) -> Self {
        assert!(
            threads <= device.max_threads,
            "block of {threads} threads exceeds device limit {}",
            device.max_threads
        );
        assert!(
            smem_len * 4 <= device.smem_bytes,
            "shared memory request {} B exceeds the device's {} B",
            smem_len * 4,
            device.smem_bytes
        );
        assert!(
            threads * regs_per_thread <= device.regs_per_sm,
            "register demand {}x{regs_per_thread} exceeds the SM's {}",
            threads,
            device.regs_per_sm
        );
        Self {
            device,
            threads,
            smem: vec![0.0; smem_len],
            read_addrs: vec![Vec::new(); threads],
            write_addrs: vec![Vec::new(); threads],
            stats: KernelStats {
                blocks: 1,
                ..KernelStats::default()
            },
        }
    }

    /// Number of threads in the block.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one phase: the body executes for every thread id in order,
    /// then an implicit barrier ends the phase (coalescing is resolved and
    /// the sync is counted).
    pub fn phase(&mut self, mut body: impl FnMut(usize, &mut ThreadScope<'_>)) {
        for v in &mut self.read_addrs {
            v.clear();
        }
        for v in &mut self.write_addrs {
            v.clear();
        }
        let mut ops_acc = 0.0f64;
        let mut smem_acc = 0u64;
        for tid in 0..self.threads {
            let mut scope = ThreadScope {
                smem: &mut self.smem,
                reads: &mut self.read_addrs[tid],
                writes: &mut self.write_addrs[tid],
                ops: 0.0,
                smem_accesses: 0,
            };
            body(tid, &mut scope);
            ops_acc += scope.ops;
            smem_acc += scope.smem_accesses;
        }
        self.stats.thread_ops += ops_acc;
        self.stats.smem_accesses += smem_acc;
        self.resolve_coalescing();
        self.stats.syncs += 1;
    }

    /// Groups the phase's per-thread access streams into warp-wide sites
    /// and charges segment transactions.
    fn resolve_coalescing(&mut self) {
        let warp = self.device.warp;
        for (streams, tx_out) in [
            (&self.read_addrs, &mut self.stats.gmem_read_tx),
            (&self.write_addrs, &mut self.stats.gmem_write_tx),
        ] {
            let max_len = streams.iter().map(Vec::len).max().unwrap_or(0);
            let mut lane_addrs = vec![None; warp];
            for site in 0..max_len {
                for warp_base in (0..self.threads).step_by(warp) {
                    let lanes = warp.min(self.threads - warp_base);
                    for (lane, slot) in lane_addrs.iter_mut().take(lanes).enumerate() {
                        *slot = streams[warp_base + lane].get(site).copied();
                    }
                    for slot in lane_addrs.iter_mut().skip(lanes) {
                        *slot = None;
                    }
                    *tx_out += warp_transactions(&lane_addrs);
                }
            }
        }
    }

    /// Counts `n` committed grid-point updates.
    pub fn commit(&mut self, n: u64) {
        self.stats.committed += n;
    }

    /// Finishes the block, returning its counters.
    pub fn finish(self) -> KernelStats {
        self.stats
    }
}

/// Per-thread view inside a phase.
pub struct ThreadScope<'a> {
    smem: &'a mut Vec<f32>,
    reads: &'a mut Vec<u64>,
    writes: &'a mut Vec<u64>,
    ops: f64,
    smem_accesses: u64,
}

impl ThreadScope<'_> {
    /// Global-memory read (counted, coalescing-tracked).
    #[inline]
    pub fn gmem_read(&mut self, buf: &GmemBuffer, idx: usize) -> f32 {
        self.reads.push(buf.addr(idx));
        self.ops += 1.0;
        buf.read(idx)
    }

    /// Global-memory write (counted, coalescing-tracked).
    #[inline]
    pub fn gmem_write(&mut self, buf: &GmemBuffer, idx: usize, v: f32) {
        self.writes.push(buf.addr(idx));
        self.ops += 1.0;
        buf.write(idx, v);
    }

    /// Shared-memory read (an LDS instruction: counted as one op).
    #[inline]
    pub fn smem_read(&mut self, idx: usize) -> f32 {
        self.smem_accesses += 1;
        self.ops += 1.0;
        self.smem[idx]
    }

    /// Shared-memory write (counted as one op). Visible to other threads
    /// from the next phase.
    #[inline]
    pub fn smem_write(&mut self, idx: usize, v: f32) {
        self.smem_accesses += 1;
        self.ops += 1.0;
        self.smem[idx] = v;
    }

    /// Counts `n` arithmetic/overhead instructions.
    #[inline]
    pub fn ops(&mut self, n: f64) {
        self.ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_barrier_publishes_smem_between_phases() {
        let dev = Device::gtx285();
        let mut ctx = BlockCtx::new(&dev, 64, 64, 8);
        ctx.phase(|tid, t| {
            t.smem_write(tid, tid as f32);
        });
        let mut sum = 0.0f32;
        ctx.phase(|tid, t| {
            // Every thread reads a value written by a *different* thread
            // in the previous phase.
            let peer = (tid + 17) % 64;
            let v = t.smem_read(peer);
            assert_eq!(v, peer as f32);
            if tid == 0 {
                sum = v;
            }
        });
        let stats = ctx.finish();
        assert_eq!(stats.syncs, 2);
        assert_eq!(stats.smem_accesses, 128);
        assert_eq!(sum, 17.0);
    }

    #[test]
    fn coalescing_charges_per_warp_site() {
        let dev = Device::gtx285();
        let buf = GmemBuffer::new(0, vec![1.0; 4096]);
        let mut ctx = BlockCtx::new(&dev, 64, 0, 8);
        // Site 1: contiguous (2 warps × 2 segments); site 2: strided.
        ctx.phase(|tid, t| {
            let _ = t.gmem_read(&buf, tid);
            let _ = t.gmem_read(&buf, tid * 32);
        });
        let stats = ctx.finish();
        // Contiguous: each 32-lane warp covers 128 B = 2 segments → 4.
        // Strided: 32 lanes × 128 B apart → 32 tx per warp → 64.
        assert_eq!(stats.gmem_read_tx, 4 + 64);
        assert_eq!(stats.thread_ops, 128.0);
    }

    #[test]
    fn write_coalescing_counted_separately() {
        let dev = Device::gtx285();
        let buf = GmemBuffer::new(0, vec![0.0; 1024]);
        let mut ctx = BlockCtx::new(&dev, 32, 0, 8);
        ctx.phase(|tid, t| {
            t.gmem_write(&buf, tid, tid as f32);
        });
        let stats = ctx.finish();
        assert_eq!(stats.gmem_write_tx, 2);
        assert_eq!(stats.gmem_read_tx, 0);
        assert_eq!(buf.read(31), 31.0);
    }

    #[test]
    fn divergent_threads_produce_partial_warp_traffic() {
        let dev = Device::gtx285();
        let buf = GmemBuffer::new(0, vec![0.0; 1024]);
        let mut ctx = BlockCtx::new(&dev, 32, 0, 8);
        ctx.phase(|tid, t| {
            if tid < 8 {
                let _ = t.gmem_read(&buf, tid);
            }
        });
        let stats = ctx.finish();
        assert_eq!(stats.gmem_read_tx, 1); // 8 lanes in one segment
    }

    #[test]
    #[should_panic(expected = "shared memory request")]
    fn smem_budget_enforced() {
        let dev = Device::gtx285();
        let _ = BlockCtx::new(&dev, 32, (16 << 10) / 4 + 1, 8);
    }

    #[test]
    #[should_panic(expected = "register demand")]
    fn register_budget_enforced() {
        let dev = Device::gtx285();
        let _ = BlockCtx::new(&dev, 512, 0, 64);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn thread_budget_enforced() {
        let dev = Device::gtx285();
        let _ = BlockCtx::new(&dev, 1024, 0, 1);
    }

    #[test]
    fn occupancy_limits_apply_in_turn() {
        let dev = Device::gtx285();
        // Unconstrained small block: capped by the hardware limit of 8.
        assert_eq!(dev.blocks_per_sm(64, 0, 8), 8);
        // The paper's 3.5-D tile: 384 threads, ~3 KB smem, 16 regs —
        // 2 blocks fit, enough for latency hiding.
        assert_eq!(dev.blocks_per_sm(384, 3 << 10, 16), 2);
        // Shared memory as the binding constraint.
        assert_eq!(dev.blocks_per_sm(64, 9 << 10, 8), 1);
        // Registers as the binding constraint.
        assert_eq!(dev.blocks_per_sm(512, 0, 32), 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = KernelStats {
            thread_ops: 10.0,
            gmem_read_tx: 1,
            gmem_write_tx: 2,
            smem_accesses: 3,
            syncs: 4,
            blocks: 1,
            committed: 5,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.thread_ops, 20.0);
        assert_eq!(a.gmem_bytes(), (2 + 4) * 64);
        assert_eq!(a.committed, 10);
    }
}
