//! Global-memory buffers with coalescing-aware transaction accounting.
//!
//! GTX-200-class GPUs service a warp's loads in aligned DRAM segments;
//! the model here charges one 64-byte transaction per distinct aligned
//! 64-byte segment touched by a warp at one access site (§VI-A: "global
//! memory accesses are optimized for the case that every thread in a warp
//! loads 4/8 bytes of a contiguous region").

use std::cell::{Cell, RefCell};

/// DRAM transaction segment size in bytes.
pub const SEGMENT_BYTES: u64 = 64;

/// A global-memory buffer of `f32` values with access accounting.
///
/// Each buffer gets a distinct virtual base address (segment-aligned) so
/// accesses to different buffers never coalesce together.
pub struct GmemBuffer {
    base: u64,
    data: RefCell<Vec<f32>>,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl GmemBuffer {
    /// Wraps `data` as device memory at the given virtual `base` (will be
    /// rounded up to a segment boundary).
    pub fn new(base: u64, data: Vec<f32>) -> Self {
        Self {
            base: base.next_multiple_of(SEGMENT_BYTES),
            data: RefCell::new(data),
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Virtual byte address of element `idx`.
    #[inline]
    pub fn addr(&self, idx: usize) -> u64 {
        self.base + (idx as u64) * 4
    }

    /// Reads element `idx` (counts one scalar read).
    #[inline]
    pub fn read(&self, idx: usize) -> f32 {
        self.reads.set(self.reads.get() + 1);
        self.data.borrow()[idx]
    }

    /// Writes element `idx` (counts one scalar write).
    #[inline]
    pub fn write(&self, idx: usize, v: f32) {
        self.writes.set(self.writes.get() + 1);
        self.data.borrow_mut()[idx] = v;
    }

    /// Scalar reads performed so far.
    pub fn scalar_reads(&self) -> u64 {
        self.reads.get()
    }

    /// Scalar writes performed so far.
    pub fn scalar_writes(&self) -> u64 {
        self.writes.get()
    }

    /// Consumes the buffer and returns the contents.
    pub fn into_inner(self) -> Vec<f32> {
        self.data.into_inner()
    }

    /// Copies the contents out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.borrow().clone()
    }
}

/// Counts the DRAM transactions needed to service one warp-wide access
/// site: the number of distinct aligned 64-byte segments among the lanes'
/// addresses. `None` entries are inactive lanes (divergence / bounds).
pub fn warp_transactions(addrs: &[Option<u64>]) -> u64 {
    let mut segs: Vec<u64> = addrs.iter().flatten().map(|a| a / SEGMENT_BYTES).collect();
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_warp_access_is_two_segments() {
        // 32 lanes × 4 B = 128 B = 2 aligned 64-B segments.
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(i * 4)).collect();
        assert_eq!(warp_transactions(&addrs), 2);
    }

    #[test]
    fn offset_by_one_element_costs_an_extra_segment() {
        // The paper's unaligned ghost loads: one more transaction.
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(60 + i * 4)).collect();
        assert_eq!(warp_transactions(&addrs), 3);
    }

    #[test]
    fn strided_access_explodes_transactions() {
        // One segment per lane: the uncoalesced worst case.
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(i * 256)).collect();
        assert_eq!(warp_transactions(&addrs), 32);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let addrs: Vec<Option<u64>> = (0..32)
            .map(|i| if i < 8 { Some(i * 4) } else { None })
            .collect();
        assert_eq!(warp_transactions(&addrs), 1);
        assert_eq!(warp_transactions(&[None; 32]), 0);
    }

    #[test]
    fn same_segment_lanes_coalesce() {
        let addrs: Vec<Option<u64>> = (0..32).map(|_| Some(128)).collect();
        assert_eq!(warp_transactions(&addrs), 1);
    }

    #[test]
    fn buffer_reads_and_writes_round_trip() {
        let b = GmemBuffer::new(1000, vec![0.0; 8]);
        b.write(3, 2.5);
        assert_eq!(b.read(3), 2.5);
        assert_eq!(b.scalar_reads(), 1);
        assert_eq!(b.scalar_writes(), 1);
        // Base is segment aligned.
        assert_eq!(b.addr(0) % SEGMENT_BYTES, 0);
    }
}
