//! Persistent worker team.
//!
//! The 3.5-D executor runs one parallel region per XY tile, with thousands
//! of barrier-separated phases inside. Spawning OS threads per region would
//! dwarf the work, so a [`ThreadTeam`] keeps `n - 1` workers parked in a
//! spin-then-yield loop and re-dispatches borrowed closures to them; the
//! calling thread participates as member 0. Closure lifetime is safe
//! because `run` does not return until every member has finished (the same
//! argument that makes `std::thread::scope` sound).
//!
//! # Failure model
//!
//! * A member's closure **panics** — the panic is caught in the worker,
//!   the generation still drains (every member bumps `done`), and the
//!   failure surfaces as [`SyncError::TeamPanicked`] from
//!   [`ThreadTeam::try_run`] (or a propagated panic from
//!   [`ThreadTeam::run`]). The team stays usable.
//! * A member **stalls** — with borrowed closures this cannot be abandoned
//!   soundly (returning early would let the stalled member touch freed
//!   caller data), so `run`/`try_run` wait indefinitely; workloads with
//!   internal barriers get bounded-time draining from
//!   [`SpinBarrier::checked_wait`](crate::SpinBarrier::checked_wait)
//!   instead, which turns a stall into a cooperative early exit.
//!   For `'static` jobs, [`ThreadTeam::try_run_for`] adds a true watchdog:
//!   after the deadline it returns [`SyncError::TeamStalled`] and
//!   **quarantines** the team — further runs are refused (fast `Err`)
//!   until the straggler drains, after which the team re-arms itself.
//!   The job is reference-counted so the straggler can finish safely at
//!   any later time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::pad::CachePadded;
use crate::SyncError;

/// Sentinel stored in the trampoline slot when the current generation's
/// job lives in `TeamShared::static_job` instead of the raw pointer pair.
/// `usize::MAX` is never a valid function pointer on supported targets.
const STATIC_JOB: usize = usize::MAX;

/// Reference-counted erased job used by the watchdogged (`'static`) path.
type SharedJob = Arc<dyn Fn(usize) + Send + Sync>;

/// Quarantine slot value meaning "no stalled generation outstanding".
const NO_QUARANTINE: usize = usize::MAX;

/// Trampoline that downcasts the erased data pointer back to the concrete
/// closure type and invokes it.
///
/// # Safety
/// `data` must point to a live `F` for the duration of the call.
unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
    // SAFETY: caller guarantees `data` points to a live `F`.
    let f = unsafe { &*(data as *const F) };
    f(tid);
}

struct TeamShared {
    n: usize,
    /// Generation counter; bumped (Release) after `job` is written.
    go: AtomicUsize,
    /// Current job: erased closure pointer and its trampoline, valid for
    /// generation `go`. INVARIANT: only dereferenced between the `go` bump
    /// that published them and the matching `done` count, during which the
    /// closure is kept alive by the blocked `run` caller.
    job: [AtomicUsize; 2],
    /// Reference-counted job slot for watchdogged (`'static`) runs. Kept
    /// populated while a stalled generation is quarantined so a straggler
    /// that has not yet fetched the job still finds it.
    static_job: Mutex<Option<SharedJob>>,
    /// Number of workers that finished the current generation.
    done: AtomicUsize,
    /// Per-worker generation high-water mark (`progress[tid - 1]` holds
    /// the last generation worker `tid` finished) — lets the watchdog name
    /// the straggler and lets `Drop` decide whether joining is safe.
    progress: Vec<CachePadded<AtomicUsize>>,
    /// Set when the team is dropped.
    shutdown: AtomicBool,
    /// Set if any member's closure panicked in the current generation.
    poisoned: AtomicBool,
    /// Generation that stalled past its watchdog deadline, or
    /// `NO_QUARANTINE`. While set, new runs are refused.
    quarantined: AtomicUsize,
}

/// A fixed-size pool of persistent worker threads executing borrowed
/// closures.
///
/// `run`/`try_run` must not be called concurrently from multiple threads;
/// the team is a SPMD executor with a single dispatching caller (member 0),
/// not a general task pool.
///
/// ```
/// use threefive_sync::ThreadTeam;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let team = ThreadTeam::new(4);
/// let sum = AtomicUsize::new(0);
/// team.run(|tid| { sum.fetch_add(tid, Ordering::Relaxed); });
/// assert_eq!(sum.into_inner(), 0 + 1 + 2 + 3);
/// ```
pub struct ThreadTeam {
    shared: Arc<TeamShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadTeam {
    /// Creates a team of `n` members total (`n - 1` spawned workers plus
    /// the caller of [`ThreadTeam::run`]).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ThreadTeam: need at least one member");
        let shared = Arc::new(TeamShared {
            n,
            go: AtomicUsize::new(0),
            job: [AtomicUsize::new(0), AtomicUsize::new(0)],
            static_job: Mutex::new(None),
            done: AtomicUsize::new(0),
            progress: (1..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            quarantined: AtomicUsize::new(NO_QUARANTINE),
        });
        let handles = (1..n)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("threefive-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("ThreadTeam: failed to spawn worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total team size (including the caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.shared.n
    }

    /// Executes `f(tid)` on every member, `tid ∈ 0..threads()`, blocking
    /// until all members have finished. The caller runs `tid == 0`.
    ///
    /// # Panics
    /// Propagates a panic if any member's closure panicked, and panics if
    /// the team is quarantined by an earlier stalled generation that has
    /// still not drained (see [`ThreadTeam::try_run_for`]).
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if let Err(e) = self.try_run(f) {
            match e {
                SyncError::TeamPanicked { .. } => panic!("ThreadTeam: a team member panicked"),
                other => panic!("ThreadTeam: {other}"),
            }
        }
    }

    /// Non-panicking [`ThreadTeam::run`]: a member panic drains the
    /// generation and surfaces as [`SyncError::TeamPanicked`]; the team
    /// remains usable afterwards.
    ///
    /// There is no deadline on this path: the closure is *borrowed*, so
    /// abandoning a stalled member would let it touch freed caller data.
    /// Workloads needing bounded-time stall recovery either run their
    /// internal barriers through
    /// [`SpinBarrier::checked_wait`](crate::SpinBarrier::checked_wait)
    /// (cooperative draining, as the 3.5-D executor does) or use the
    /// `'static` watchdog path [`ThreadTeam::try_run_for`].
    pub fn try_run<F: Fn(usize) + Sync>(&self, f: F) -> Result<(), SyncError> {
        let sh = &*self.shared;
        self.heal()?;
        // SAFETY: erase the closure — workers only use the pointer while
        // we block below, so `f` outlives every dereference (taking the
        // addresses here is itself safe; `unsafe` only names the fn type).
        let tramp = trampoline::<F> as unsafe fn(*const (), usize) as usize;
        let data = &f as *const F as usize;
        let gen = self.publish(data, tramp);

        // The caller is member 0.
        let caller_panic = catch_unwind(AssertUnwindSafe(|| f(0))).is_err();

        // Wait for the n-1 workers (spin, then yield when oversubscribed).
        // No deadline: see the method docs for why this must not abandon.
        let mut spins = 0u32;
        // ORDERING: Acquire on `done` pairs with each worker's Release
        // increment, making every store the workers sequenced before it
        // (poisoned, progress) visible once the count reaches n-1.
        while sh.done.load(Ordering::Acquire) < sh.n - 1 {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // ORDERING: Relaxed is enough — every worker's `poisoned` store is
        // sequenced before its Release `done` increment, and the Acquire
        // loop above ordered all of those before this load.
        if caller_panic || sh.poisoned.load(Ordering::Relaxed) {
            return Err(SyncError::TeamPanicked { generation: gen });
        }
        Ok(())
    }

    /// Watchdogged run for `'static` jobs: executes `f(tid)` on every
    /// member like [`ThreadTeam::try_run`], but if any spawned worker has
    /// not finished within `deadline` (measured from dispatch), returns
    /// [`SyncError::TeamStalled`] naming the first straggler and
    /// **quarantines** the team.
    ///
    /// While quarantined, every `run`/`try_run`/`try_run_for` call fails
    /// fast with [`SyncError::TeamQuarantined`] instead of dispatching on
    /// top of the stalled generation (which could otherwise mis-count
    /// `done` and free a live closure). The quarantine lifts automatically
    /// — the next call re-arms the team — once the straggler finishes.
    /// The `Arc` keeps the job alive however late that is, which is what
    /// makes the early return sound (and why this path requires
    /// `'static`).
    ///
    /// The deadline also covers the caller's own `f(0)`, but a stall *in*
    /// `f(0)` blocks the calling thread itself; the watchdog can only
    /// detect worker stalls.
    ///
    /// An **already-expired** deadline (`Duration::ZERO`) returns
    /// [`SyncError::DeadlineExpired`] immediately *without dispatching*:
    /// no member runs `f`, and the team is neither poisoned nor
    /// quarantined. Callers that compute a remaining deadline
    /// (`total.saturating_sub(elapsed)`) therefore get a typed timeout
    /// for jobs that ran out of time while queued, instead of paying for
    /// a dispatch that is guaranteed to be flagged as stalled.
    pub fn try_run_for<F>(&self, f: Arc<F>, deadline: Duration) -> Result<(), SyncError>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let sh = &*self.shared;
        self.heal()?;
        if deadline.is_zero() {
            return Err(SyncError::DeadlineExpired { deadline });
        }
        *sh.static_job.lock().unwrap() = Some(f.clone() as SharedJob);
        let start = Instant::now();
        let gen = self.publish(0, STATIC_JOB);

        let caller_panic = catch_unwind(AssertUnwindSafe(|| f(0))).is_err();

        let mut spins = 0u32;
        // ORDERING: same Acquire-on-`done` pairing as `try_run`'s wait loop.
        while sh.done.load(Ordering::Acquire) < sh.n - 1 {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                if start.elapsed() > deadline {
                    // ORDERING: Release publishes the quarantined generation
                    // to `heal`'s Acquire load before any later dispatch.
                    sh.quarantined.store(gen, Ordering::Release);
                    // ORDERING: Acquire pairs with each worker's Release
                    // progress store, so a straggler is never misidentified
                    // from a stale progress value.
                    let tid = (1..sh.n)
                        .find(|&t| sh.progress[t - 1].load(Ordering::Acquire) < gen)
                        .unwrap_or(0);
                    return Err(SyncError::TeamStalled { tid, phase: gen });
                }
                std::thread::yield_now();
            }
        }
        // Healthy drain: drop the job slot so the closure's captures free
        // deterministically.
        *sh.static_job.lock().unwrap() = None;
        // ORDERING: Relaxed is enough — ordered by the Acquire `done` loop
        // above, exactly as in `try_run`.
        if caller_panic || sh.poisoned.load(Ordering::Relaxed) {
            return Err(SyncError::TeamPanicked { generation: gen });
        }
        Ok(())
    }

    /// Whether an earlier stalled generation is still quarantining the
    /// team (a subsequent run would fail fast).
    pub fn is_quarantined(&self) -> bool {
        let sh = &*self.shared;
        // ORDERING: Acquire on `quarantined` pairs with the watchdog's
        // Release store; Acquire on `done` pairs with the workers' Release
        // increments so a drained generation is observed as drained.
        sh.quarantined.load(Ordering::Acquire) != NO_QUARANTINE
            && sh.done.load(Ordering::Acquire) < sh.n - 1
    }

    /// Gate + re-arm: refuse to dispatch while a stalled generation has
    /// not drained; clear the quarantine once it has.
    fn heal(&self) -> Result<(), SyncError> {
        let sh = &*self.shared;
        // ORDERING: Acquire pairs with the watchdog's Release store of the
        // stalled generation.
        let q = sh.quarantined.load(Ordering::Acquire);
        if q == NO_QUARANTINE {
            return Ok(());
        }
        // ORDERING: Acquire pairs with the straggler's Release `done`
        // increment — re-arming is sound only once the drain is visible.
        if sh.done.load(Ordering::Acquire) < sh.n - 1 {
            return Err(SyncError::TeamQuarantined { phase: q });
        }
        // Straggler drained: release the retained job and re-arm.
        *sh.static_job.lock().unwrap() = None;
        // ORDERING: Release so the re-arm is published after the job-slot
        // clear above it.
        sh.quarantined.store(NO_QUARANTINE, Ordering::Release);
        Ok(())
    }

    /// Publishes a job and returns its generation number.
    ///
    /// The `poisoned`/`done` re-arm and the job stores are `Relaxed`: they
    /// are sequenced before the `Release` bump of `go`, and workers read
    /// them only after their `Acquire` load of `go` observes the bump, so
    /// the bump publishes all of them atomically. The previous generation
    /// cannot race these resets because callers reach `publish` only after
    /// that generation fully drained (`done == n - 1`, enforced by the
    /// wait loops and the quarantine gate).
    fn publish(&self, data: usize, tramp: usize) -> usize {
        let sh = &*self.shared;
        // ORDERING: the four Relaxed stores are sequenced before the
        // Release `go` bump, which publishes them atomically to each
        // worker's Acquire load of `go` (see the method docs).
        sh.poisoned.store(false, Ordering::Relaxed);
        sh.done.store(0, Ordering::Relaxed);
        sh.job[0].store(data, Ordering::Relaxed);
        sh.job[1].store(tramp, Ordering::Relaxed);
        // ORDERING: Release pairs with the workers' Acquire `go` loop.
        sh.go.fetch_add(1, Ordering::Release) + 1
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        // ORDERING: Relaxed store is published by the Release `go` bump
        // below, which workers observe with an Acquire load before they
        // read the flag.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Wake workers so they observe the shutdown flag.
        // ORDERING: Release pairs with the workers' Acquire `go` loop.
        self.shared.go.fetch_add(1, Ordering::Release);
        if self.is_quarantined() {
            // A stalled worker may never exit; joining would trade a
            // recovered hang for a hang in Drop. Detach instead: healthy
            // workers exit on their own, the straggler (if it ever
            // finishes) sees `shutdown` and exits too, and the shared
            // state plus the `'static` job stay alive via their `Arc`s.
            self.handles.clear();
            return;
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &TeamShared, tid: usize) {
    let mut seen = 0usize;
    loop {
        // Spin briefly, then yield: tight work loops stay hot, idle teams
        // don't burn a core forever.
        let mut spins = 0u32;
        loop {
            // ORDERING: Acquire pairs with the caller's Release `go` bump,
            // ordering the generation's job/poisoned/done resets (all
            // Relaxed, sequenced before the bump) before our reads below.
            let g = sh.go.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // ORDERING: Relaxed — both reads are ordered by the Acquire `go`
        // load above, which is what published them.
        if sh.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // ORDERING: Relaxed — ordered by the same Acquire `go` load.
        let tramp = sh.job[1].load(Ordering::Relaxed);
        let panicked = if tramp == STATIC_JOB {
            // Watchdogged generation: clone the refcounted job so it stays
            // alive for the whole call even if the caller times out and
            // returns meanwhile.
            let job = sh.static_job.lock().unwrap().clone();
            match job {
                Some(f) => catch_unwind(AssertUnwindSafe(|| f(tid))).is_err(),
                // Slot already cleared: the generation was healed/shut
                // down before this (very late) worker woke; skip the work
                // but still drain the generation.
                None => false,
            }
        } else {
            // ORDERING: Relaxed — published by the Release `go` bump and
            // ordered by the Acquire `go` load above.
            let data = sh.job[0].load(Ordering::Relaxed) as *const ();
            // SAFETY: the slot holds a `trampoline::<F>` function pointer
            // written by `run` for this generation.
            let call: unsafe fn(*const (), usize) = unsafe { std::mem::transmute(tramp) };
            // SAFETY: the `run` caller keeps the closure alive until `done`
            // reaches n-1, which happens only after this call returns.
            catch_unwind(AssertUnwindSafe(|| unsafe { call(data, tid) })).is_err()
        };
        if panicked {
            // ORDERING: Relaxed store is sequenced before the Release
            // `done` increment below, which publishes it to the caller's
            // Acquire wait loop.
            sh.poisoned.store(true, Ordering::Relaxed);
        }
        // ORDERING: progress before `done`, both Release — once the
        // caller's Acquire load of `done` observes the full count, every
        // progress store is visible too, and the watchdog's Acquire
        // progress load pairs with this store directly.
        sh.progress[tid - 1].store(seen, Ordering::Release);
        sh.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpinBarrier;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_tid_exactly_once() {
        let team = ThreadTeam::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        team.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reusable_across_many_runs() {
        let team = ThreadTeam::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            team.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 1500);
    }

    #[test]
    fn closure_borrows_locals_mutably_via_sync_cells() {
        let team = ThreadTeam::new(4);
        let data: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        team.run(|tid| {
            for (i, cell) in data.iter().enumerate() {
                if i % 4 == tid {
                    cell.store(i * 10, Ordering::Relaxed);
                }
            }
        });
        for (i, cell) in data.iter().enumerate() {
            assert_eq!(cell.load(Ordering::Relaxed), i * 10);
        }
    }

    #[test]
    fn members_synchronize_with_barrier_inside_run() {
        let team = ThreadTeam::new(4);
        let barrier = SpinBarrier::new(4);
        let phase = AtomicUsize::new(0);
        team.run(|_| {
            for p in 1..=50 {
                barrier.wait();
                let cur = phase.load(Ordering::Relaxed);
                assert!(cur == p - 1 || cur == p);
                barrier.wait();
                if barrier.wait() {
                    phase.store(p, Ordering::Relaxed);
                }
                barrier.wait();
            }
        });
        assert_eq!(phase.into_inner(), 50);
    }

    #[test]
    fn single_member_team_runs_inline() {
        let team = ThreadTeam::new(1);
        let mut hit = false;
        let hit_cell = std::sync::Mutex::new(&mut hit);
        team.run(|tid| {
            assert_eq!(tid, 0);
            **hit_cell.lock().unwrap() = true;
        });
        assert!(hit);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let team = ThreadTeam::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // Team still usable afterwards.
        let ok = AtomicUsize::new(0);
        team.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 2);
    }

    #[test]
    fn try_run_reports_member_panic_as_error() {
        let team = ThreadTeam::new(3);
        let err = team
            .try_run(|tid| {
                if tid == 2 {
                    panic!("injected");
                }
            })
            .unwrap_err();
        assert!(matches!(err, SyncError::TeamPanicked { .. }), "{err:?}");
        // And a healthy follow-up run succeeds.
        let ok = AtomicUsize::new(0);
        team.try_run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ok.into_inner(), 3);
    }

    #[test]
    fn try_run_reports_caller_panic_as_error() {
        let team = ThreadTeam::new(2);
        let err = team
            .try_run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
            })
            .unwrap_err();
        assert!(matches!(err, SyncError::TeamPanicked { .. }));
    }

    #[test]
    fn watchdog_flags_stall_and_team_rearms() {
        let team = ThreadTeam::new(2);
        let release = Arc::new(AtomicBool::new(false));
        let stalling = {
            let release = Arc::clone(&release);
            Arc::new(move |tid: usize| {
                if tid == 1 {
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let err = team
            .try_run_for(stalling, Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, SyncError::TeamStalled { tid: 1, phase: 1 });
        // While the straggler runs, further dispatches fail fast.
        assert!(team.is_quarantined());
        let err = team.try_run(|_| {}).unwrap_err();
        assert!(matches!(err, SyncError::TeamQuarantined { phase: 1 }));
        // Let the straggler drain; the team must heal and be reusable.
        release.store(true, Ordering::Release);
        let healed = std::iter::repeat_with(|| {
            std::thread::sleep(Duration::from_millis(5));
            !team.is_quarantined()
        })
        .take(400)
        .any(|h| h);
        assert!(healed, "straggler should drain the quarantine");
        let ok = AtomicUsize::new(0);
        team.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 2);
    }

    #[test]
    fn expired_deadline_refuses_without_dispatching() {
        // Regression: an already-expired deadline used to dispatch the job
        // anyway (the caller even executed f(0) in full) and only then
        // notice the timeout. It must refuse up front: nothing runs, and
        // the team is immediately reusable.
        let team = ThreadTeam::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        let job = {
            let ran = Arc::clone(&ran);
            Arc::new(move |_tid: usize| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        };
        let err = team
            .try_run_for(Arc::clone(&job), Duration::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            SyncError::DeadlineExpired {
                deadline: Duration::ZERO
            }
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0, "job must not have run");
        assert!(!team.is_quarantined());
        // A healthy follow-up run works on the first try.
        team.try_run_for(job, Duration::from_secs(5)).unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn watchdog_passes_healthy_static_jobs() {
        let team = ThreadTeam::new(4);
        let sum = Arc::new(AtomicUsize::new(0));
        let job = {
            let sum = Arc::clone(&sum);
            Arc::new(move |tid: usize| {
                sum.fetch_add(tid + 1, Ordering::Relaxed);
            })
        };
        for _ in 0..50 {
            team.try_run_for(Arc::clone(&job), Duration::from_secs(5))
                .unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn quarantined_team_drop_does_not_hang() {
        let release = Arc::new(AtomicBool::new(false));
        {
            let team = ThreadTeam::new(2);
            let release = Arc::clone(&release);
            let job = Arc::new(move |tid: usize| {
                if tid == 1 {
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
            });
            let err = team
                .try_run_for(job, Duration::from_millis(20))
                .unwrap_err();
            assert!(matches!(err, SyncError::TeamStalled { .. }));
            // Dropping while quarantined must detach, not join-hang.
        }
        release.store(true, Ordering::Release);
    }
}
