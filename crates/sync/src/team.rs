//! Persistent worker team.
//!
//! The 3.5-D executor runs one parallel region per XY tile, with thousands
//! of barrier-separated phases inside. Spawning OS threads per region would
//! dwarf the work, so a [`ThreadTeam`] keeps `n - 1` workers parked in a
//! spin-then-yield loop and re-dispatches borrowed closures to them; the
//! calling thread participates as member 0. Closure lifetime is safe
//! because `run` does not return until every member has finished (the same
//! argument that makes `std::thread::scope` sound).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Trampoline that downcasts the erased data pointer back to the concrete
/// closure type and invokes it.
///
/// # Safety
/// `data` must point to a live `F` for the duration of the call.
unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
    // SAFETY: caller guarantees `data` points to a live `F`.
    let f = unsafe { &*(data as *const F) };
    f(tid);
}

struct TeamShared {
    n: usize,
    /// Generation counter; bumped (Release) after `job` is written.
    go: AtomicUsize,
    /// Current job: erased closure pointer and its trampoline, valid for
    /// generation `go`. INVARIANT: only dereferenced between the `go` bump
    /// that published them and the matching `done` count, during which the
    /// closure is kept alive by the blocked `run` caller.
    job: [AtomicUsize; 2],
    /// Number of workers that finished the current generation.
    done: AtomicUsize,
    /// Set when the team is dropped.
    shutdown: AtomicBool,
    /// Set if any member's closure panicked in the current generation.
    poisoned: AtomicBool,
}

/// A fixed-size pool of persistent worker threads executing borrowed
/// closures.
///
/// ```
/// use threefive_sync::ThreadTeam;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let team = ThreadTeam::new(4);
/// let sum = AtomicUsize::new(0);
/// team.run(|tid| { sum.fetch_add(tid, Ordering::Relaxed); });
/// assert_eq!(sum.into_inner(), 0 + 1 + 2 + 3);
/// ```
pub struct ThreadTeam {
    shared: Arc<TeamShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadTeam {
    /// Creates a team of `n` members total (`n - 1` spawned workers plus
    /// the caller of [`ThreadTeam::run`]).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ThreadTeam: need at least one member");
        let shared = Arc::new(TeamShared {
            n,
            go: AtomicUsize::new(0),
            job: [AtomicUsize::new(0), AtomicUsize::new(0)],
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        });
        let handles = (1..n)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("threefive-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("ThreadTeam: failed to spawn worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total team size (including the caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.shared.n
    }

    /// Executes `f(tid)` on every member, `tid ∈ 0..threads()`, blocking
    /// until all members have finished. The caller runs `tid == 0`.
    ///
    /// # Panics
    /// Propagates a panic if any member's closure panicked.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        let sh = &*self.shared;
        // Erase the closure: workers only use the pointer while we block
        // below, so `f` outlives every dereference.
        sh.poisoned.store(false, Ordering::Relaxed);
        sh.done.store(0, Ordering::Relaxed);
        sh.job[0].store(&f as *const F as usize, Ordering::Relaxed);
        sh.job[1].store(
            trampoline::<F> as unsafe fn(*const (), usize) as usize,
            Ordering::Relaxed,
        );
        // Release-publish the job to workers.
        sh.go.fetch_add(1, Ordering::Release);

        // The caller is member 0.
        let caller_panic = catch_unwind(AssertUnwindSafe(|| f(0))).is_err();

        // Wait for the n-1 workers (spin, then yield when oversubscribed).
        let mut spins = 0u32;
        while sh.done.load(Ordering::Acquire) < sh.n - 1 {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if caller_panic || sh.poisoned.load(Ordering::Relaxed) {
            panic!("ThreadTeam: a team member panicked");
        }
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Wake workers so they observe the shutdown flag.
        self.shared.go.fetch_add(1, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &TeamShared, tid: usize) {
    let mut seen = 0usize;
    loop {
        // Spin briefly, then yield: tight work loops stay hot, idle teams
        // don't burn a core forever.
        let mut spins = 0u32;
        loop {
            let g = sh.go.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if sh.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let data = sh.job[0].load(Ordering::Relaxed) as *const ();
        let call: unsafe fn(*const (), usize) =
            // SAFETY: the slot holds a `trampoline::<F>` function pointer
            // written by `run` for this generation.
            unsafe { std::mem::transmute(sh.job[1].load(Ordering::Relaxed)) };
        // SAFETY: the `run` caller keeps the closure alive until `done`
        // reaches n-1, which happens only after this call returns.
        if catch_unwind(AssertUnwindSafe(|| unsafe { call(data, tid) })).is_err() {
            sh.poisoned.store(true, Ordering::Relaxed);
        }
        sh.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpinBarrier;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_tid_exactly_once() {
        let team = ThreadTeam::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        team.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reusable_across_many_runs() {
        let team = ThreadTeam::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            team.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 1500);
    }

    #[test]
    fn closure_borrows_locals_mutably_via_sync_cells() {
        let team = ThreadTeam::new(4);
        let data: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        team.run(|tid| {
            for (i, cell) in data.iter().enumerate() {
                if i % 4 == tid {
                    cell.store(i * 10, Ordering::Relaxed);
                }
            }
        });
        for (i, cell) in data.iter().enumerate() {
            assert_eq!(cell.load(Ordering::Relaxed), i * 10);
        }
    }

    #[test]
    fn members_synchronize_with_barrier_inside_run() {
        let team = ThreadTeam::new(4);
        let barrier = SpinBarrier::new(4);
        let phase = AtomicUsize::new(0);
        team.run(|_| {
            for p in 1..=50 {
                barrier.wait();
                let cur = phase.load(Ordering::Relaxed);
                assert!(cur == p - 1 || cur == p);
                barrier.wait();
                if barrier.wait() {
                    phase.store(p, Ordering::Relaxed);
                }
                barrier.wait();
            }
        });
        assert_eq!(phase.into_inner(), 50);
    }

    #[test]
    fn single_member_team_runs_inline() {
        let team = ThreadTeam::new(1);
        let mut hit = false;
        let hit_cell = std::sync::Mutex::new(&mut hit);
        team.run(|tid| {
            assert_eq!(tid, 0);
            **hit_cell.lock().unwrap() = true;
        });
        assert!(hit);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let team = ThreadTeam::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // Team still usable afterwards.
        let ok = AtomicUsize::new(0);
        team.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 2);
    }
}
