//! Tournament (tree) barrier after Mellor-Crummey & Scott \[33\].
//!
//! Each episode runs a static single-elimination tournament: in round `r`,
//! the thread whose `r`-th index bit is 0 waits for its partner
//! (`tid | 1<<r`), the partner announces arrival and blocks on a private
//! release flag. The champion (thread 0) then wakes its defeated partners
//! in reverse order and each woken thread does the same for its own
//! sub-bracket. Every flag is written by exactly one thread and spun on by
//! exactly one thread, so there is no contended cache line — the property
//! that makes tree barriers scale where centralized counters saturate.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pad::CachePadded;

/// Spins on `cond`, yielding after a bounded number of iterations so
/// oversubscribed configurations still make progress.
#[inline]
fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        spins += 1;
        if spins < 1 << 12 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// A tree barrier for a fixed set of `n` threads with per-thread handles.
pub struct TournamentBarrier {
    n: usize,
    rounds: u32,
    arrive: Vec<CachePadded<AtomicUsize>>,
    release: Vec<CachePadded<AtomicUsize>>,
}

impl TournamentBarrier {
    /// Creates a barrier for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "TournamentBarrier: need at least one thread");
        let rounds = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
        Self {
            n,
            rounds,
            arrive: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            release: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
        }
    }

    /// Number of participating threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.n
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Exactly one handle per `tid` may be used; each participating thread
    /// must call [`TournamentWaiter::wait`] once per episode.
    ///
    /// # Panics
    /// Panics if `tid >= n`.
    pub fn waiter(&self, tid: usize) -> TournamentWaiter<'_> {
        assert!(tid < self.n, "TournamentBarrier: tid out of range");
        TournamentWaiter {
            barrier: self,
            tid,
            epoch: 0,
        }
    }
}

/// Per-thread handle to a [`TournamentBarrier`] (owns the episode counter).
pub struct TournamentWaiter<'a> {
    barrier: &'a TournamentBarrier,
    tid: usize,
    epoch: usize,
}

impl TournamentWaiter<'_> {
    /// Thread index this handle represents.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Blocks until all threads have called `wait` for this episode.
    ///
    /// Returns `true` for the champion (thread 0).
    pub fn wait(&mut self) -> bool {
        self.epoch += 1;
        let e = self.epoch;
        let b = self.barrier;
        let tid = self.tid;

        // Ascend: win rounds until losing (or becoming champion).
        let mut won_rounds = 0u32;
        while won_rounds < b.rounds {
            let bit = 1usize << won_rounds;
            if tid & bit == 0 {
                let partner = tid | bit;
                if partner < b.n {
                    // ORDERING: Acquire pairs with the partner's Release
                    // arrival store, ordering everything the partner did
                    // before this episode ahead of the winner's reads.
                    spin_until(|| b.arrive[partner].load(Ordering::Acquire) >= e);
                }
                won_rounds += 1;
            } else {
                // Loser of this round: announce and block.
                // ORDERING: Release publishes this thread's pre-barrier
                // work to the winner's Acquire arrival load; Acquire on
                // `release` pairs with the champion-side Release wake so
                // post-barrier reads see every thread's episode.
                b.arrive[tid].store(e, Ordering::Release);
                spin_until(|| b.release[tid].load(Ordering::Acquire) >= e);
                break;
            }
        }

        // Descend: wake the partners defeated on the way up, in reverse.
        for r in (0..won_rounds).rev() {
            let partner = tid | (1usize << r);
            if partner < b.n {
                // ORDERING: Release pairs with the loser's Acquire wait on
                // `release`, handing it the champion-side view of the
                // whole episode.
                b.release[partner].store(e, Ordering::Release);
            }
        }
        tid == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn exercise(n: usize, rounds: usize) {
        let barrier = Arc::new(TournamentBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for tid in 0..n {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let mut w = barrier.waiter(tid);
                    for round in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        let leader = w.wait();
                        assert_eq!(leader, tid == 0);
                        // All n increments of this round must be visible.
                        assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * n);
                        w.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * n);
    }

    #[test]
    fn synchronizes_various_thread_counts() {
        for n in [1usize, 2, 3, 4, 5, 7, 8] {
            exercise(n, 50);
        }
    }

    #[test]
    fn single_thread_is_champion() {
        let b = TournamentBarrier::new(1);
        let mut w = b.waiter(0);
        assert!(w.wait());
        assert!(w.wait());
    }

    #[test]
    #[should_panic(expected = "tid out of range")]
    fn waiter_bounds_checked() {
        let b = TournamentBarrier::new(2);
        let _ = b.waiter(2);
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(TournamentBarrier::new(1).rounds, 0);
        assert_eq!(TournamentBarrier::new(2).rounds, 1);
        assert_eq!(TournamentBarrier::new(3).rounds, 2);
        assert_eq!(TournamentBarrier::new(4).rounds, 2);
        assert_eq!(TournamentBarrier::new(5).rounds, 3);
        assert_eq!(TournamentBarrier::new(8).rounds, 3);
    }
}
