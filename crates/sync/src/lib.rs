//! Thread-level-parallelism substrate for the 3.5-D executor.
//!
//! The paper's parallel 3.5-D algorithm barriers **once per streamed Z
//! plane** across all threads (§V-E), so barrier latency is on the critical
//! path; the authors implement "our own barrier that is 50X faster than
//! pthreads barrier" (§III-B). This crate provides:
//!
//! * [`SpinBarrier`] — a centralized sense-reversing spin barrier (one
//!   atomic counter + one generation word, local spinning on the
//!   generation);
//! * [`TournamentBarrier`] — a fan-in-2 tree barrier in the style of
//!   Mellor-Crummey & Scott \[33\], whose per-round contention is O(1)
//!   per cache line;
//! * [`ThreadTeam`] — a pool of persistent workers that repeatedly execute
//!   borrowed closures (`run(|tid| …)`), so the executor pays thread spawn
//!   cost once per run, not once per time step;
//! * [`TeamPool`] — a fixed set of persistent teams behind RAII
//!   checkout/checkin leases, with health probing, quarantine of stalled
//!   teams and heal accounting — the serving layer's isolation boundary
//!   between tenants;
//! * [`SharedSlice`] — the unsafe-but-audited escape hatch that lets team
//!   members write disjoint regions of one buffer in parallel, as the row
//!   partitioning guarantees;
//! * [`Instrument`] / [`SweepTiming`] — zero-cost-when-disabled per-thread
//!   compute vs. barrier-wait timing, the observability layer the
//!   benchmark harness reports through;
//! * [`Tracer`] / [`TraceSnapshot`] — zero-cost-when-disabled per-thread
//!   span/event recording (one cache-padded ring per team member) at
//!   pipeline-stage granularity, exported to Perfetto by the bench crate;
//! * [`Observer`] — the composable bundle of [`Instrument`] + [`Tracer`]
//!   that the sweep entry points take, replacing the per-combination
//!   executor variants that used to exist.

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod barrier;
mod error;
mod instrument;
mod observer;
mod pad;
mod pool;
mod shared;
pub mod shim;
mod team;
mod tournament;
mod trace;

pub use barrier::SpinBarrier;
pub use error::SyncError;
pub use instrument::{Instrument, SweepTiming, ThreadTiming, WaitHistogram, WAIT_HIST_BUCKETS};
pub use observer::Observer;
pub use pad::CachePadded;
pub use pool::{TeamLease, TeamPool, TeamUnit, DEFAULT_PROBE_DEADLINE};
pub use shared::SharedSlice;
pub use shim::{
    AtomicBoolShim, AtomicUsizeShim, CondvarShim, GuardOf, MutexShim, StdFamily, SyncFamily,
};
pub use team::ThreadTeam;
pub use tournament::{TournamentBarrier, TournamentWaiter};
pub use trace::{
    ThreadTrace, TraceEvent, TraceEventKind, TraceSnapshot, Tracer, TRACE_DEFAULT_CAPACITY,
};
