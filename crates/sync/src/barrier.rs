//! Centralized sense-reversing spin barrier.

use std::time::Duration;

use crate::shim::{AtomicBoolShim, AtomicUsizeShim, Ordering, StdFamily, SyncFamily};
use crate::SyncError;

/// A spin barrier for a fixed set of `n` threads.
///
/// Arrivals increment one shared counter; the last arrival resets the
/// counter and advances the generation, releasing the spinners. Threads
/// spin locally on the generation word (a read-only load loop), so the only
/// contended write per episode is the single `fetch_add` — the structure of
/// the paper's fast software barrier.
///
/// Unlike `std::sync::Barrier` there is no mutex, no condvar and no futex
/// syscall; waiting burns CPU, which is the right trade-off for the 3.5-D
/// executor where the barrier separates back-to-back compute phases
/// microseconds apart.
///
/// The barrier is generic over a [`SyncFamily`] so the model checker can
/// run this exact code under a deterministic scheduler (DESIGN.md §16);
/// production code uses the default [`StdFamily`] instantiation, which
/// monomorphizes to plain `std` atomics.
///
/// # Fault tolerance
///
/// The barrier only works when **every** participant reaches **every**
/// episode; a panicked or wedged participant would otherwise spin the
/// healthy ones forever. Two escape hatches break that:
///
/// * [`poison`](SpinBarrier::poison) — marks the barrier dead and bumps
///   the generation so current spinners drain; participants using
///   [`checked_wait`](SpinBarrier::checked_wait) observe the poison and
///   return [`SyncError::BarrierPoisoned`]. The parallel executor poisons
///   from a panic guard so one panicking worker releases the whole team.
/// * a **deadline** on `checked_wait` — a participant that waits longer
///   than the deadline poisons the barrier itself and returns
///   [`SyncError::BarrierTimeout`], so a silent stall (rather than a
///   panic) also drains every healthy thread in bounded time.
///
/// The zero-cost [`wait`](SpinBarrier::wait) fast path is unchanged and
/// unaware of poisoning; mix it with the checked API only when no fault
/// can occur between the plain waits.
pub struct SpinBarrier<F: SyncFamily = StdFamily> {
    n: usize,
    count: F::AtomicUsize,
    generation: F::AtomicUsize,
    poisoned: F::AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `n` participating threads (the production
    /// [`StdFamily`] instantiation).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::new_in(n)
    }
}

impl<F: SyncFamily> SpinBarrier<F> {
    /// Creates a barrier for `n` participating threads in family `F`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new_in(n: usize) -> Self {
        assert!(n > 0, "SpinBarrier: need at least one thread");
        Self {
            n,
            count: F::AtomicUsize::named(0, "barrier.count"),
            generation: F::AtomicUsize::named(0, "barrier.generation"),
            poisoned: F::AtomicBool::named(false, "barrier.poisoned"),
        }
    }

    /// Number of participating threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` threads have called `wait` for this episode.
    ///
    /// Returns `true` for exactly one thread per episode (the last
    /// arrival), mirroring `std::sync::Barrier`'s leader flag.
    #[inline]
    pub fn wait(&self) -> bool {
        // ORDERING: Acquire pairs with the leader's Release generation
        // store; a stale read only costs a lapped spinner an extra loop.
        let gen = self.generation.load(Ordering::Acquire);
        // ORDERING: AcqRel — the increment publishes this thread's
        // pre-barrier writes to the releasing thread and orders the
        // release after all arrivals.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset for the next episode, then release.
            // Spinners cannot touch `count` again until they observe the
            // new generation, so the reset cannot race with re-arrivals.
            // ORDERING: Relaxed — published by the Release generation
            // store below; no thread reads `count` before observing it.
            self.count.store(0, Ordering::Relaxed);
            // ORDERING: Release publishes the count reset and every
            // arrival's writes to the spinners' Acquire loads.
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            // ORDERING: Acquire pairs with the leader's Release store so
            // exiting the loop also acquires all pre-barrier writes.
            while self.generation.load(Ordering::Acquire) == gen {
                // Spin locally while the release is imminent, then yield so
                // oversubscribed configurations (threads > cores) make
                // progress instead of burning the releasing thread's core.
                spins = spins.wrapping_add(1);
                if spins < F::SPIN_YIELD_LIMIT {
                    F::spin_hint();
                } else {
                    F::yield_now();
                }
            }
            false
        }
    }

    /// Fault-aware barrier wait: like [`wait`](SpinBarrier::wait) but
    /// drains with an error instead of spinning forever when the barrier
    /// is poisoned or the optional `deadline` elapses.
    ///
    /// On timeout the waiter poisons the barrier before returning, so all
    /// other checked waiters (current and future) drain promptly too.
    /// After any `Err`, the episode count is unreliable; the barrier must
    /// be [`reset`](SpinBarrier::reset) before reuse.
    pub fn checked_wait(&self, deadline: Option<Duration>) -> Result<bool, SyncError> {
        // ORDERING: Acquire pairs with the Release in `poison()` so the
        // poisoner's pre-poison state is visible to the draining waiter.
        if self.poisoned.load(Ordering::Acquire) {
            return Err(SyncError::BarrierPoisoned);
        }
        let armed = deadline.map(F::deadline);
        // ORDERING: Acquire pairs with the leader's Release generation
        // store (see `wait`).
        let gen = self.generation.load(Ordering::Acquire);
        // ORDERING: AcqRel — publishes pre-barrier writes, orders the
        // release after all arrivals (see `wait`).
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // ORDERING: Relaxed — published by the Release generation
            // store below; no thread reads `count` before observing it.
            self.count.store(0, Ordering::Relaxed);
            // ORDERING: Release publishes the count reset and every
            // arrival's writes to the spinners' Acquire loads.
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            // Release even when poisoned (so spinners drain), but report
            // the poison to the leader as well.
            // ORDERING: Acquire pairs with the Release in `poison()`.
            if self.poisoned.load(Ordering::Acquire) {
                return Err(SyncError::BarrierPoisoned);
            }
            Ok(true)
        } else {
            let mut spins = 0u32;
            // ORDERING: Acquire pairs with the leader's Release store.
            while self.generation.load(Ordering::Acquire) == gen {
                // ORDERING: Acquire pairs with the Release in `poison()`.
                if self.poisoned.load(Ordering::Acquire) {
                    return Err(SyncError::BarrierPoisoned);
                }
                spins = spins.wrapping_add(1);
                if spins < F::SPIN_YIELD_LIMIT {
                    F::spin_hint();
                } else {
                    // Deadline checks piggyback on the slow (yielding)
                    // path: the first 4096 spins stay syscall- and
                    // clock-free, matching the fast path's latency.
                    if let (Some(d), Some(t)) = (deadline, armed) {
                        if F::expired(t) {
                            self.poison();
                            return Err(SyncError::BarrierTimeout { deadline: d });
                        }
                    }
                    F::yield_now();
                }
            }
            // ORDERING: Acquire pairs with the Release in `poison()`.
            if self.poisoned.load(Ordering::Acquire) {
                return Err(SyncError::BarrierPoisoned);
            }
            Ok(false)
        }
    }

    /// Marks the barrier dead and bumps the generation so current
    /// spinners drain. Checked waiters observe the poison and return
    /// [`SyncError::BarrierPoisoned`]; the executor's panic guard calls
    /// this so one dying worker cannot strand the rest of the team.
    pub fn poison(&self) {
        // ORDERING: Release pairs with the waiters' Acquire poison loads
        // so the poisoner's state is visible when the error is observed.
        self.poisoned.store(true, Ordering::Release);
        // Release current spinners; with the poison flag set they report
        // the error rather than treating this as a completed episode.
        // ORDERING: Release publishes the poison flag store above to
        // spinners that exit via the generation bump alone.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        // ORDERING: Acquire pairs with the Release in `poison()`.
        self.poisoned.load(Ordering::Acquire)
    }

    /// Re-arms a poisoned barrier for reuse.
    ///
    /// The caller must guarantee no thread is currently waiting on (or
    /// about to arrive at) the barrier — e.g. after `ThreadTeam::run`
    /// has returned, all members have drained by construction.
    pub fn reset(&self) {
        // ORDERING: Relaxed — caller guarantees quiescence; no concurrent
        // waiters exist to observe the reset out of order.
        self.count.store(0, Ordering::Relaxed);
        // ORDERING: Release so a subsequent checked waiter's Acquire sees
        // a fully re-armed barrier.
        self.poisoned.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn single_thread_barrier_is_trivially_leader() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.threads(), 1);
    }

    #[test]
    fn all_threads_observe_pre_barrier_writes() {
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(T));
        let cells: Arc<Vec<AtomicUsize>> = Arc::new((0..T).map(|_| AtomicUsize::new(0)).collect());

        let handles: Vec<_> = (0..T)
            .map(|tid| {
                let barrier = Arc::clone(&barrier);
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    for round in 1..=ROUNDS {
                        cells[tid].store(round, Ordering::Relaxed);
                        barrier.wait();
                        // Every thread's write for this round must be
                        // visible to every other thread.
                        for c in cells.iter() {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const T: usize = 3;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(T));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn checked_wait_matches_wait_when_healthy() {
        const T: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(T));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..T {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier
                            .checked_wait(Some(Duration::from_secs(5)))
                            .expect("healthy barrier")
                        {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    fn missing_participant_times_out_and_poisons() {
        // 3 participants, only 2 arrive: both must drain with an error in
        // bounded time — the permanent-hang scenario this API removes.
        let barrier = Arc::new(SpinBarrier::new(3));
        let deadline = Duration::from_millis(50);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            let errs: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || barrier.checked_wait(Some(deadline)).unwrap_err())
                })
                .collect();
            for h in errs {
                let e = h.join().unwrap();
                assert!(
                    matches!(
                        e,
                        SyncError::BarrierTimeout { .. } | SyncError::BarrierPoisoned
                    ),
                    "{e:?}"
                );
            }
        });
        assert!(t0.elapsed() < Duration::from_secs(5), "drained promptly");
        assert!(barrier.is_poisoned());
        // Future waiters drain immediately.
        assert_eq!(
            barrier.checked_wait(None).unwrap_err(),
            SyncError::BarrierPoisoned
        );
        // Reset re-arms the barrier.
        barrier.reset();
        assert!(!barrier.is_poisoned());
    }

    #[test]
    fn poison_drains_spinners() {
        let barrier = Arc::new(SpinBarrier::new(2));
        std::thread::scope(|s| {
            let waiter = {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || barrier.checked_wait(None))
            };
            // Give the waiter time to start spinning, then poison instead
            // of arriving (models a panicking partner).
            std::thread::sleep(Duration::from_millis(10));
            barrier.poison();
            assert_eq!(waiter.join().unwrap(), Err(SyncError::BarrierPoisoned));
        });
    }

    #[test]
    fn reset_after_poison_restores_service() {
        let b = SpinBarrier::new(1);
        b.poison();
        assert!(b.checked_wait(None).is_err());
        b.reset();
        assert_eq!(b.checked_wait(None), Ok(true));
        assert!(b.wait());
    }
}
