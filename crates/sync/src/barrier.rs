//! Centralized sense-reversing spin barrier.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A spin barrier for a fixed set of `n` threads.
///
/// Arrivals increment one shared counter; the last arrival resets the
/// counter and advances the generation, releasing the spinners. Threads
/// spin locally on the generation word (a read-only load loop), so the only
/// contended write per episode is the single `fetch_add` — the structure of
/// the paper's fast software barrier.
///
/// Unlike `std::sync::Barrier` there is no mutex, no condvar and no futex
/// syscall; waiting burns CPU, which is the right trade-off for the 3.5-D
/// executor where the barrier separates back-to-back compute phases
/// microseconds apart.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Creates a barrier for `n` participating threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "SpinBarrier: need at least one thread");
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participating threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` threads have called `wait` for this episode.
    ///
    /// Returns `true` for exactly one thread per episode (the last
    /// arrival), mirroring `std::sync::Barrier`'s leader flag.
    #[inline]
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        // AcqRel: the increment publishes this thread's pre-barrier writes
        // to the releasing thread and orders the release after all arrivals.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset for the next episode, then release.
            // Spinners cannot touch `count` again until they observe the
            // new generation, so the reset cannot race with re-arrivals.
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                // Spin locally while the release is imminent, then yield so
                // oversubscribed configurations (threads > cores) make
                // progress instead of burning the releasing thread's core.
                spins += 1;
                if spins < 1 << 12 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_trivially_leader() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.threads(), 1);
    }

    #[test]
    fn all_threads_observe_pre_barrier_writes() {
        const T: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(T));
        let cells: Arc<Vec<AtomicUsize>> = Arc::new((0..T).map(|_| AtomicUsize::new(0)).collect());

        let handles: Vec<_> = (0..T)
            .map(|tid| {
                let barrier = Arc::clone(&barrier);
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    for round in 1..=ROUNDS {
                        cells[tid].store(round, Ordering::Relaxed);
                        barrier.wait();
                        // Every thread's write for this round must be
                        // visible to every other thread.
                        for c in cells.iter() {
                            assert_eq!(c.load(Ordering::Relaxed), round);
                        }
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const T: usize = 3;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(T));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
