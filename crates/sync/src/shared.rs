//! Disjoint shared mutation of one slice by many team members.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A view of a mutable slice that may be mutated concurrently by several
/// threads **on provably disjoint index ranges**.
///
/// The 3.5-D executor partitions every XY sub-plane into per-thread row
/// segments (`threefive_grid::partition::plane_share` guarantees exact,
/// non-overlapping coverage) and hands each team member the same
/// `SharedSlice`; members only touch their own segments. The disjointness
/// proof lives at the call site, which is why the accessors are `unsafe`.
pub struct SharedSlice<'a, T> {
    ptr: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: sending/sharing the view is safe; actual aliasing discipline is
// deferred to the unsafe accessors.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        Self {
            // Cast through UnsafeCell to make later shared mutation defined.
            ptr: slice.as_mut_ptr() as *const UnsafeCell<T>,
            len,
            _marker: PhantomData,
        }
    }

    /// Slice length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `indices [start, start+len)`.
    ///
    /// # Safety
    /// The caller must guarantee that no other thread accesses any index in
    /// the range for the lifetime of the returned slice, and the range must
    /// be in bounds (checked by assertion).
    // `&mut` from `&self` is this type's entire purpose: mutation goes
    // through `UnsafeCell`, and exclusivity is the documented contract.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start.checked_add(len).is_some_and(|e| e <= self.len),
            "SharedSlice::slice_mut out of bounds"
        );
        // SAFETY: in-bounds by the assertion; exclusivity is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut((*self.ptr.add(start)).get(), len) }
    }

    /// Shared read of `indices [start, start+len)`.
    ///
    /// # Safety
    /// The caller must guarantee that no thread *writes* any index in the
    /// range for the lifetime of the returned slice (concurrent readers are
    /// fine); the range must be in bounds (checked by assertion).
    #[inline]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        assert!(
            start.checked_add(len).is_some_and(|e| e <= self.len),
            "SharedSlice::slice out of bounds"
        );
        // SAFETY: in-bounds by the assertion; absence of concurrent writers
        // is the caller's contract.
        unsafe { std::slice::from_raw_parts((*self.ptr.add(start)).get(), len) }
    }

    /// Shared read of index `i`.
    ///
    /// # Safety
    /// No other thread may be concurrently *writing* index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        assert!(i < self.len, "SharedSlice::read out of bounds");
        // SAFETY: in-bounds; no concurrent writer per the caller's contract.
        unsafe { *(*self.ptr.add(i)).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadTeam;
    use threefive_grid::partition::even_range;

    #[test]
    fn disjoint_parallel_writes_land() {
        let n = 10_000usize;
        let threads = 4usize;
        let mut data = vec![0u64; n];
        {
            let view = SharedSlice::new(&mut data);
            let team = ThreadTeam::new(threads);
            team.run(|tid| {
                let r = even_range(n, threads, tid);
                // SAFETY: even_range yields disjoint ranges per tid.
                let chunk = unsafe { view.slice_mut(r.start, r.len()) };
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = (r.start + k) as u64 * 3;
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn read_sees_prior_writes() {
        let mut data = vec![1.5f64, 2.5, 3.5];
        let view = SharedSlice::new(&mut data);
        // SAFETY: no concurrent writers in this test.
        unsafe {
            assert_eq!(view.read(0), 1.5);
            assert_eq!(view.read(2), 3.5);
        }
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_mut_bounds_checked() {
        let mut data = vec![0u8; 4];
        let view = SharedSlice::new(&mut data);
        // SAFETY: single-threaded; bounds violation should panic first.
        let _ = unsafe { view.slice_mut(2, 3) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_mut_overflow_checked() {
        let mut data = vec![0u8; 4];
        let view = SharedSlice::new(&mut data);
        // SAFETY: single-threaded; overflow should panic first.
        let _ = unsafe { view.slice_mut(usize::MAX, 2) };
    }
}
