//! The sync-primitive shim: one generic seam between the hand-rolled
//! concurrency layer and the deterministic model checker.
//!
//! Every coordination primitive in this crate (and the serve layer's
//! admission queue) is written against the [`SyncFamily`] trait instead
//! of concrete `std` types. In normal builds the single implementor in
//! play is [`StdFamily`], whose associated types *are* the `std` types —
//! no wrappers, no runtime dispatch — so after monomorphization the
//! generic `SpinBarrier<StdFamily>` compiles to exactly the code the
//! non-generic barrier compiled to. Under `threefive-modelcheck`, the
//! same source instantiates with `ModelFamily`, whose types route every
//! load, store, RMW, lock, unlock, wait and deadline check through a
//! deterministic scheduler that exhaustively explores interleavings and
//! weak-memory outcomes (DESIGN.md §16).
//!
//! The seam deliberately covers **time** as well as memory:
//! [`SyncFamily::deadline`]/[`SyncFamily::expired`] abstract "has this
//! wait timed out", which under the checker becomes a nondeterministic
//! (but latching) choice — the only way to model a `checked_wait`
//! deadline racing the last arrival without wall-clock flakiness.

use std::time::{Duration, Instant};

pub use std::sync::atomic::Ordering;

/// Shim over `AtomicUsize`: the subset of the `std` API the sync layer
/// uses. Implementors must make every method behave like the `std`
/// method of the same name (the checker's implementor adds scheduling
/// and weak-memory effects, never different semantics).
pub trait AtomicUsizeShim: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: usize) -> Self;
    /// Like [`AtomicUsizeShim::new`] but carries a debug label the
    /// model checker surfaces in schedule traces. Zero-cost families
    /// ignore the label.
    fn named(v: usize, _name: &'static str) -> Self
    where
        Self: Sized,
    {
        Self::new(v)
    }
    /// Atomic load.
    fn load(&self, order: Ordering) -> usize;
    /// Atomic store.
    fn store(&self, v: usize, order: Ordering);
    /// Atomic fetch-add, returning the previous value.
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
}

/// Shim over `AtomicBool` (see [`AtomicUsizeShim`]).
pub trait AtomicBoolShim: Send + Sync {
    /// Creates the atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Labelled constructor for readable checker traces.
    fn named(v: bool, _name: &'static str) -> Self
    where
        Self: Sized,
    {
        Self::new(v)
    }
    /// Atomic load.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, v: bool, order: Ordering);
}

/// Shim over `Mutex`. Lock poisoning is unwrapped inside the shim
/// (matching the `.lock().unwrap()` idiom at every ported call site):
/// a panic while holding the lock propagates to later lockers.
pub trait MutexShim<T>: Send + Sync {
    /// The RAII guard; unlocks on drop.
    type Guard<'a>: std::ops::Deref<Target = T> + std::ops::DerefMut
    where
        Self: 'a,
        T: 'a;
    /// Creates the mutex holding `value`.
    fn new(value: T) -> Self;
    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a holder panicked).
    fn lock(&self) -> Self::Guard<'_>;
}

/// Shim over `Condvar`, tied to its family's mutex type so guards flow
/// through `wait_timeout` without erasure.
pub trait CondvarShim: Send + Sync + Sized {
    /// The [`SyncFamily`] this condvar belongs to (fixes the guard type).
    type Family: SyncFamily<Condvar = Self>;
    /// Creates the condvar.
    fn new() -> Self;
    /// Wakes one waiter (no-op when nobody waits — condvars do not
    /// buffer notifications, which is exactly the lost-wakeup hazard the
    /// model checker explores).
    fn notify_one(&self);
    /// Wakes every waiter.
    fn notify_all(&self);
    /// Releases `guard`, waits for a notification or `timeout`, then
    /// reacquires the lock. Returns the reacquired guard and whether
    /// the wait timed out.
    fn wait_timeout<'a, T: Send>(
        &self,
        guard: GuardOf<'a, Self::Family, T>,
        timeout: Duration,
    ) -> (GuardOf<'a, Self::Family, T>, bool);
}

/// The mutex guard type of family `F` protecting a `T`.
pub type GuardOf<'a, F, T> = <<F as SyncFamily>::Mutex<T> as MutexShim<T>>::Guard<'a>;

/// One coherent set of synchronization primitives.
///
/// The default everywhere is [`StdFamily`]; the model checker provides
/// `ModelFamily`. Primitives written against this trait run unmodified
/// under both — the trait is the *entire* surface the checker needs to
/// control.
pub trait SyncFamily: Sized + Send + Sync + 'static {
    /// `AtomicUsize` of this family.
    type AtomicUsize: AtomicUsizeShim;
    /// `AtomicBool` of this family.
    type AtomicBool: AtomicBoolShim;
    /// `Mutex<T>` of this family.
    type Mutex<T: Send>: MutexShim<T>;
    /// `Condvar` of this family.
    type Condvar: CondvarShim<Family = Self>;
    /// An armed deadline produced by [`SyncFamily::deadline`].
    type Deadline: Copy + Send;

    /// Spin-loop iterations before a waiter downgrades from
    /// [`SyncFamily::spin_hint`] to [`SyncFamily::yield_now`] (and
    /// starts checking deadlines). The checker sets this to 0 so every
    /// spin iteration is a schedule point with a deadline check.
    const SPIN_YIELD_LIMIT: u32;

    /// Busy-wait pause (`std::hint::spin_loop` in real builds).
    fn spin_hint();
    /// Cooperative yield; under the checker this parks the thread until
    /// another thread performs a write (spin-wait fairness).
    fn yield_now();
    /// Arms a deadline `timeout` from now.
    fn deadline(timeout: Duration) -> Self::Deadline;
    /// Whether the armed deadline has elapsed. Under the checker this
    /// is a nondeterministic *latching* choice: once a deadline reports
    /// expired it stays expired, but the first `true` can be scheduled
    /// at any point — including exactly between a partner's arrival and
    /// our observation of it.
    fn expired(deadline: Self::Deadline) -> bool;
    /// Budget left on the armed deadline, `None` once elapsed. The
    /// `Some` value is only ever used as a wait bound, so the checker's
    /// dummy duration is harmless.
    fn remaining(deadline: Self::Deadline) -> Option<Duration>;
}

/// The production family: every associated type is the `std` type
/// itself, every method an `#[inline(always)]` passthrough, so generic
/// primitives monomorphize to exactly their pre-shim code.
pub struct StdFamily;

impl AtomicUsizeShim for std::sync::atomic::AtomicUsize {
    #[inline(always)]
    fn new(v: usize) -> Self {
        std::sync::atomic::AtomicUsize::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: usize, order: Ordering) {
        std::sync::atomic::AtomicUsize::store(self, v, order)
    }
    #[inline(always)]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::fetch_add(self, v, order)
    }
}

impl AtomicBoolShim for std::sync::atomic::AtomicBool {
    #[inline(always)]
    fn new(v: bool) -> Self {
        std::sync::atomic::AtomicBool::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> bool {
        std::sync::atomic::AtomicBool::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: bool, order: Ordering) {
        std::sync::atomic::AtomicBool::store(self, v, order)
    }
}

impl<T: Send> MutexShim<T> for std::sync::Mutex<T> {
    type Guard<'a>
        = std::sync::MutexGuard<'a, T>
    where
        T: 'a;
    #[inline(always)]
    fn new(value: T) -> Self {
        std::sync::Mutex::new(value)
    }
    #[inline(always)]
    fn lock(&self) -> Self::Guard<'_> {
        self.lock().unwrap()
    }
}

impl CondvarShim for std::sync::Condvar {
    type Family = StdFamily;
    #[inline(always)]
    fn new() -> Self {
        std::sync::Condvar::new()
    }
    #[inline(always)]
    fn notify_one(&self) {
        std::sync::Condvar::notify_one(self)
    }
    #[inline(always)]
    fn notify_all(&self) {
        std::sync::Condvar::notify_all(self)
    }
    #[inline(always)]
    fn wait_timeout<'a, T: Send>(
        &self,
        guard: GuardOf<'a, StdFamily, T>,
        timeout: Duration,
    ) -> (GuardOf<'a, StdFamily, T>, bool) {
        let (guard, result) = std::sync::Condvar::wait_timeout(self, guard, timeout).unwrap();
        (guard, result.timed_out())
    }
}

impl SyncFamily for StdFamily {
    type AtomicUsize = std::sync::atomic::AtomicUsize;
    type AtomicBool = std::sync::atomic::AtomicBool;
    type Mutex<T: Send> = std::sync::Mutex<T>;
    type Condvar = std::sync::Condvar;
    type Deadline = (Instant, Duration);

    const SPIN_YIELD_LIMIT: u32 = 1 << 12;

    #[inline(always)]
    fn spin_hint() {
        std::hint::spin_loop()
    }
    #[inline(always)]
    fn yield_now() {
        std::thread::yield_now()
    }
    #[inline(always)]
    fn deadline(timeout: Duration) -> Self::Deadline {
        (Instant::now(), timeout)
    }
    #[inline(always)]
    fn expired((start, timeout): Self::Deadline) -> bool {
        start.elapsed() > timeout
    }
    #[inline(always)]
    fn remaining((start, timeout): Self::Deadline) -> Option<Duration> {
        (start + timeout)
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The std family must behave exactly like the raw std types: these
    // are semantic pin-downs for the passthroughs the whole sync layer
    // now routes through.

    #[test]
    fn std_atomics_pass_through() {
        let a = <StdFamily as SyncFamily>::AtomicUsize::named(3, "a");
        assert_eq!(a.load(Ordering::Acquire), 3);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 3);
        a.store(9, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 9);
        let b = <StdFamily as SyncFamily>::AtomicBool::named(false, "b");
        assert!(!b.load(Ordering::Acquire));
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
    }

    #[test]
    fn std_mutex_and_condvar_round_trip() {
        let m = <StdFamily as SyncFamily>::Mutex::<usize>::new(1);
        {
            let mut g = MutexShim::lock(&m);
            *g += 1;
        }
        assert_eq!(*MutexShim::lock(&m), 2);

        let cv = <StdFamily as SyncFamily>::Condvar::new();
        let g = MutexShim::lock(&m);
        // Nobody notifies: the wait must time out and hand the lock back.
        let (g, timed_out) = CondvarShim::wait_timeout(&cv, g, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*g, 2);
    }

    #[test]
    fn std_condvar_notify_wakes_waiter() {
        let pair = Arc::new((
            <StdFamily as SyncFamily>::Mutex::<bool>::new(false),
            <StdFamily as SyncFamily>::Condvar::new(),
        ));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = MutexShim::lock(m);
            let deadline = StdFamily::deadline(Duration::from_secs(10));
            while !*g {
                let Some(wait) = StdFamily::remaining(deadline) else {
                    return false;
                };
                let (back, _) = CondvarShim::wait_timeout(cv, g, wait);
                g = back;
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *MutexShim::lock(m) = true;
        cv.notify_one();
        assert!(h.join().unwrap(), "waiter saw the flag");
    }

    #[test]
    fn std_deadline_expires_and_reports_remaining() {
        let d = StdFamily::deadline(Duration::from_millis(10));
        assert!(!StdFamily::expired(d));
        assert!(StdFamily::remaining(d).is_some());
        std::thread::sleep(Duration::from_millis(25));
        assert!(StdFamily::expired(d));
        assert_eq!(StdFamily::remaining(d), None);
    }
}
