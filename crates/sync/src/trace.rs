//! Pipeline tracing: per-thread span/event recording, zero-cost when off.
//!
//! [`Instrument`](crate::Instrument) reduces a whole sweep to two numbers
//! per thread; a [`Tracer`] keeps the *timeline* — one span per streamed
//! Z plane × time level of the 3.5-D pipeline, a span per barrier wait
//! (entry to exit), and instant events for team quarantine/heal and
//! fallback-ladder transitions. The snapshot exports to Chrome
//! trace-event JSON (see the bench crate) and loads in Perfetto.
//!
//! Design:
//!
//! * **One ring buffer per team member**, each behind a
//!   [`CachePadded`] so concurrent writers never share a line. A record
//!   is only ever written by its owning thread; readers snapshot after
//!   the parallel region quiesces (and a release/acquire pair on the
//!   ring length keeps even a mid-run snapshot sound).
//! * **Lock-free and allocation-free on the hot path**: recording is a
//!   relaxed length load, four relaxed stores, and one release store.
//!   When the ring is full the record is dropped and counted — tracing
//!   never blocks the pipeline.
//! * **Zero-cost when disabled**, exactly like `Instrument`: a disabled
//!   handle carries no buffers and [`Tracer::now_ns`] returns `None`, so
//!   the executors never read the clock and the swept grids stay
//!   bit-identical to the untraced fast path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::CachePadded;

/// Default ring capacity per thread (records). At one span per plane ×
/// time level plus one barrier span per outer step, a 512³ sweep with
/// `dim_T = 4` stays well under this.
pub const TRACE_DEFAULT_CAPACITY: usize = 1 << 16;

/// What one trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// One streamed Z plane processed at one time level (a span).
    Plane {
        /// Global Z index of the plane.
        z: u32,
        /// Time level within the temporal block, `1..=dim_T`.
        level: u32,
    },
    /// One barrier episode: the span runs from entry to exit.
    Barrier {
        /// Outer pipeline step the barrier closes.
        step: u32,
    },
    /// A team member was quarantined by the watchdog (instant).
    Quarantine {
        /// The quarantined member.
        tid: u32,
    },
    /// A quarantined member drained and the team healed (instant).
    Heal {
        /// The healed member.
        tid: u32,
    },
    /// The fallback ladder moved to a lower rung (instant).
    Fallback {
        /// Rung being abandoned (ladder index).
        from: u32,
        /// Rung being tried next (ladder index).
        to: u32,
    },
}

impl TraceEventKind {
    fn encode(self) -> (u64, u64) {
        let (tag, a, b) = match self {
            Self::Plane { z, level } => (0u64, z, level),
            Self::Barrier { step } => (1, step, 0),
            Self::Quarantine { tid } => (2, tid, 0),
            Self::Heal { tid } => (3, tid, 0),
            Self::Fallback { from, to } => (4, from, to),
        };
        (tag, ((a as u64) << 32) | b as u64)
    }

    fn decode(tag: u64, args: u64) -> Option<Self> {
        let a = (args >> 32) as u32;
        let b = args as u32;
        match tag {
            0 => Some(Self::Plane { z: a, level: b }),
            1 => Some(Self::Barrier { step: a }),
            2 => Some(Self::Quarantine { tid: a }),
            3 => Some(Self::Heal { tid: a }),
            4 => Some(Self::Fallback { from: a, to: b }),
            _ => None,
        }
    }

    /// Short label for exporters and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Plane { .. } => "plane",
            Self::Barrier { .. } => "barrier",
            Self::Quarantine { .. } => "quarantine",
            Self::Heal { .. } => "heal",
            Self::Fallback { .. } => "fallback",
        }
    }
}

/// One record: `[tag, packed args, start, end]`, all written relaxed by
/// the owning thread, published by a release store of the ring length.
#[derive(Debug)]
struct Record {
    tag: AtomicU64,
    args: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Record {
    fn zeroed() -> Self {
        Self {
            tag: AtomicU64::new(0),
            args: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

/// One thread's ring: records `[0, len)` are valid, the rest spare.
#[derive(Debug)]
struct ThreadBuf {
    len: AtomicUsize,
    dropped: AtomicU64,
    records: Vec<Record>,
}

impl ThreadBuf {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            records: (0..capacity).map(|_| Record::zeroed()).collect(),
        }
    }

    fn push(&self, kind: TraceEventKind, start_ns: u64, end_ns: u64) {
        // ORDERING: Relaxed — `len` and `dropped` are written only by this
        // ring's owning thread; cross-thread readers go through the
        // Release store below.
        let n = self.len.load(Ordering::Relaxed);
        let Some(r) = self.records.get(n) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let (tag, args) = kind.encode();
        // ORDERING: the four Relaxed record stores are sequenced before
        // the Release `len` bump, which publishes the record atomically
        // to `snapshot`'s Acquire load.
        r.tag.store(tag, Ordering::Relaxed);
        r.args.store(args, Ordering::Relaxed);
        r.start_ns.store(start_ns, Ordering::Relaxed);
        r.end_ns.store(end_ns, Ordering::Relaxed);
        self.len.store(n + 1, Ordering::Release);
    }
}

#[derive(Debug)]
struct TracerInner {
    /// All timestamps are nanoseconds since this epoch.
    epoch: Instant,
    threads: Vec<CachePadded<ThreadBuf>>,
}

/// Handle enabling (or not) per-thread pipeline tracing.
///
/// Like [`Instrument`](crate::Instrument), the executors borrow it and
/// the harness owns it; a disabled handle makes every call a no-op.
#[derive(Debug)]
pub struct Tracer {
    inner: Option<TracerInner>,
}

impl Tracer {
    /// A disabled handle: no buffers, no clock reads, no atomics.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with [`TRACE_DEFAULT_CAPACITY`] records per
    /// team member.
    pub fn enabled(threads: usize) -> Self {
        Self::with_capacity(threads, TRACE_DEFAULT_CAPACITY)
    }

    /// An enabled handle with `capacity` records per team member.
    pub fn with_capacity(threads: usize, capacity: usize) -> Self {
        Self {
            inner: Some(TracerInner {
                epoch: Instant::now(),
                threads: (0..threads)
                    .map(|_| CachePadded::new(ThreadBuf::with_capacity(capacity)))
                    .collect(),
            }),
        }
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the trace epoch, iff enabled — the only way the
    /// executors obtain trace timestamps, so a disabled handle provably
    /// never reads the clock.
    #[inline]
    pub fn now_ns(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// Records a span for thread `tid`.
    ///
    /// No-op when disabled or `tid` is out of range; when the ring is
    /// full the record is dropped and counted, never blocking.
    #[inline]
    pub fn record(&self, tid: usize, kind: TraceEventKind, start_ns: u64, end_ns: u64) {
        if let Some(buf) = self.inner.as_ref().and_then(|i| i.threads.get(tid)) {
            buf.push(kind, start_ns, end_ns);
        }
    }

    /// Records an instant event (zero-duration span) for thread `tid`.
    #[inline]
    pub fn instant(&self, tid: usize, kind: TraceEventKind, ts_ns: u64) {
        self.record(tid, kind, ts_ns, ts_ns);
    }

    /// Snapshots every thread's ring into plain owned data.
    pub fn snapshot(&self) -> TraceSnapshot {
        let threads = self
            .inner
            .as_ref()
            .map(|i| i.threads.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|buf| {
                // ORDERING: Acquire on `len` pairs with the writer's
                // Release bump, ordering the Relaxed record field reads
                // below after the stores they observe; `dropped` is a
                // monotonic counter where staleness only undercounts.
                let n = buf.len.load(Ordering::Acquire);
                ThreadTrace {
                    events: buf.records[..n]
                        .iter()
                        .filter_map(|r| {
                            TraceEventKind::decode(
                                r.tag.load(Ordering::Relaxed),
                                r.args.load(Ordering::Relaxed),
                            )
                            .map(|kind| TraceEvent {
                                kind,
                                start_ns: r.start_ns.load(Ordering::Relaxed),
                                end_ns: r.end_ns.load(Ordering::Relaxed),
                            })
                        })
                        .collect(),
                    dropped: buf.dropped.load(Ordering::Relaxed),
                }
            })
            .collect();
        TraceSnapshot { threads }
    }

    /// Empties the rings (between benchmark repetitions).
    pub fn reset(&self) {
        for buf in self
            .inner
            .as_ref()
            .map(|i| i.threads.as_slice())
            .unwrap_or(&[])
        {
            // ORDERING: reset runs between repetitions with no writer in
            // flight; Release on `len` keeps the truncation ordered for
            // any snapshot that races a later sweep, `dropped` is plain.
            buf.len.store(0, Ordering::Release);
            buf.dropped.store(0, Ordering::Relaxed);
        }
    }
}

/// One recorded span/event, timestamps in ns since the trace epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// When it started.
    pub start_ns: u64,
    /// When it ended (equals `start_ns` for instant events).
    pub end_ns: u64,
}

impl TraceEvent {
    /// Span duration in nanoseconds (0 for instant events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One thread's recorded timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Events in recording order (monotonic `start_ns` per thread).
    pub events: Vec<TraceEvent>,
    /// Records dropped because the ring was full.
    pub dropped: u64,
}

/// Owned snapshot of a whole team's timelines, indexed by `tid`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// One timeline per team member.
    pub threads: Vec<ThreadTrace>,
}

impl TraceSnapshot {
    /// Total recorded events across the team.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total records dropped to full rings across the team.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Histogram of barrier-wait span durations across the team.
    pub fn barrier_wait_hist(&self) -> crate::WaitHistogram {
        let mut h = crate::WaitHistogram::default();
        for t in &self.threads {
            for e in &t.events {
                if matches!(e.kind, TraceEventKind::Barrier { .. }) {
                    h.record(e.duration_ns());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_reads_the_clock() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(t.now_ns().is_none());
        t.record(0, TraceEventKind::Barrier { step: 1 }, 0, 10);
        let s = t.snapshot();
        assert!(s.threads.is_empty());
        assert_eq!(s.total_events(), 0);
        assert_eq!(s.total_dropped(), 0);
    }

    #[test]
    fn enabled_tracer_round_trips_every_kind() {
        let t = Tracer::enabled(2);
        assert!(t.is_enabled());
        assert!(t.now_ns().is_some());
        let kinds = [
            TraceEventKind::Plane { z: 7, level: 3 },
            TraceEventKind::Barrier { step: 42 },
            TraceEventKind::Quarantine { tid: 1 },
            TraceEventKind::Heal { tid: 1 },
            TraceEventKind::Fallback { from: 0, to: 1 },
        ];
        for (i, k) in kinds.iter().enumerate() {
            t.record(0, *k, i as u64 * 10, i as u64 * 10 + 5);
        }
        t.instant(1, TraceEventKind::Heal { tid: 0 }, 99);
        t.record(9, TraceEventKind::Barrier { step: 0 }, 0, 1); // out of range: ignored
        let s = t.snapshot();
        assert_eq!(s.threads.len(), 2);
        assert_eq!(s.threads[0].events.len(), kinds.len());
        for (i, k) in kinds.iter().enumerate() {
            let e = s.threads[0].events[i];
            assert_eq!(e.kind, *k);
            assert_eq!(e.start_ns, i as u64 * 10);
            assert_eq!(e.duration_ns(), 5);
        }
        assert_eq!(s.threads[1].events[0].duration_ns(), 0);
        assert_eq!(s.total_events(), kinds.len() + 1);
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        let t = Tracer::with_capacity(1, 2);
        for i in 0..5 {
            t.record(0, TraceEventKind::Barrier { step: i }, 0, 1);
        }
        let s = t.snapshot();
        assert_eq!(s.threads[0].events.len(), 2);
        assert_eq!(s.threads[0].dropped, 3);
        assert_eq!(s.total_dropped(), 3);
        t.reset();
        let s = t.snapshot();
        assert_eq!(s.total_events(), 0);
        assert_eq!(s.total_dropped(), 0);
    }

    #[test]
    fn barrier_wait_hist_counts_only_barrier_spans() {
        let t = Tracer::enabled(1);
        t.record(0, TraceEventKind::Plane { z: 0, level: 1 }, 0, 1_000_000);
        t.record(0, TraceEventKind::Barrier { step: 0 }, 0, 500);
        t.record(0, TraceEventKind::Barrier { step: 1 }, 0, 2_000_000);
        let h = t.snapshot().barrier_wait_hist();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn timestamps_are_monotonic_per_thread_by_construction() {
        let t = Tracer::enabled(1);
        let mut last = 0;
        for i in 0..100 {
            let now = t.now_ns().unwrap();
            assert!(now >= last);
            last = now;
            t.record(0, TraceEventKind::Plane { z: i, level: 1 }, now, now + 1);
        }
        let s = t.snapshot();
        let starts: Vec<u64> = s.threads[0].events.iter().map(|e| e.start_ns).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }
}
