//! The composable observability bundle handed to the sweep executors.
//!
//! Before this module existed every executor grew a ladder of entry
//! points (plain, timing-only, timing-plus-spans), one per
//! combination of [`Instrument`] and [`Tracer`]. An [`Observer`] bundles
//! both handles behind one borrow, so each workload exposes exactly one
//! entry point taking `&Observer` and the caller composes what it wants
//! observed:
//!
//! * [`Observer::disabled`] — the fast path; no clock is ever read;
//! * [`Observer::with_instrument`] — aggregate compute/barrier timing;
//! * [`Observer::with_tracer`] — per-plane/per-barrier timeline spans;
//! * [`Observer::new`] — both.
//!
//! The zero-cost guarantee is inherited, not re-implemented: every
//! clock read goes through [`Instrument::now`] or [`Tracer::now_ns`],
//! both of which return `None` on disabled handles, so a disabled
//! observer provably never syscalls and swept grids stay bit-identical
//! to the unobserved fast path.

use std::time::{Duration, Instant};

use crate::barrier::SpinBarrier;
use crate::error::SyncError;
use crate::instrument::Instrument;
use crate::trace::{TraceEventKind, Tracer};

static DISABLED_INSTRUMENT: Instrument = Instrument::disabled();
static DISABLED_TRACER: Tracer = Tracer::disabled();

/// Borrowed bundle of the two observability handles.
///
/// Cloneless and cheap (two references); executors take `&Observer` and
/// the harness owns the underlying [`Instrument`] / [`Tracer`].
#[derive(Clone, Copy, Debug)]
pub struct Observer<'a> {
    instr: &'a Instrument,
    tracer: &'a Tracer,
}

impl<'a> Observer<'a> {
    /// A fully disabled observer: no timing, no tracing, no clock reads.
    pub const fn disabled() -> Observer<'static> {
        Observer {
            instr: &DISABLED_INSTRUMENT,
            tracer: &DISABLED_TRACER,
        }
    }

    /// An observer recording into both handles.
    pub const fn new(instr: &'a Instrument, tracer: &'a Tracer) -> Self {
        Self { instr, tracer }
    }

    /// Aggregate timing only; tracing stays off.
    pub const fn with_instrument(instr: &'a Instrument) -> Self {
        Self {
            instr,
            tracer: &DISABLED_TRACER,
        }
    }

    /// Timeline tracing only; aggregate timing stays off.
    pub const fn with_tracer(tracer: &'a Tracer) -> Self {
        Self {
            instr: &DISABLED_INSTRUMENT,
            tracer,
        }
    }

    /// The wrapped timing handle.
    #[inline]
    pub fn instrument(&self) -> &'a Instrument {
        self.instr
    }

    /// The wrapped tracing handle.
    #[inline]
    pub fn tracer(&self) -> &'a Tracer {
        self.tracer
    }

    /// Whether either handle is collecting anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.instr.is_enabled() || self.tracer.is_enabled()
    }

    /// Reads the wall clock iff timing is enabled (see
    /// [`Instrument::now`]).
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        self.instr.now()
    }

    /// Adds `ns` of compute time to thread `tid`'s timing slot.
    #[inline]
    pub fn add_compute_ns(&self, tid: usize, ns: u64) {
        self.instr.add_compute_ns(tid, ns);
    }

    /// Trace timestamp for the start of a span, iff tracing is enabled
    /// (see [`Tracer::now_ns`]).
    #[inline]
    pub fn span_start(&self) -> Option<u64> {
        self.tracer.now_ns()
    }

    /// Closes a plane span opened by [`Observer::span_start`]: one
    /// streamed Z plane `z` processed at time level `level`.
    #[inline]
    pub fn plane_span(&self, tid: usize, z: usize, level: usize, start: Option<u64>) {
        if let Some(t0) = start {
            let end = self.tracer.now_ns().unwrap_or(t0);
            self.tracer.record(
                tid,
                TraceEventKind::Plane {
                    z: z as u32,
                    level: level as u32,
                },
                t0,
                end,
            );
        }
    }

    /// Closes a barrier span opened by [`Observer::span_start`]: one
    /// barrier episode at outer pipeline step `step`.
    #[inline]
    pub fn barrier_span(&self, tid: usize, step: usize, start: Option<u64>) {
        if let Some(t0) = start {
            let end = self.tracer.now_ns().unwrap_or(t0);
            self.tracer
                .record(tid, TraceEventKind::Barrier { step: step as u32 }, t0, end);
        }
    }

    /// Records an instant event on thread `tid` iff tracing is enabled.
    #[inline]
    pub fn instant(&self, tid: usize, kind: TraceEventKind) {
        if let Some(ts) = self.tracer.now_ns() {
            self.tracer.instant(tid, kind, ts);
        }
    }

    /// [`SpinBarrier::checked_wait`] with the wait duration recorded in
    /// thread `tid`'s timing slot (total and wait histogram).
    ///
    /// When timing is disabled this is exactly `checked_wait`: no clock
    /// read surrounds the barrier, preserving the fast path.
    #[inline]
    pub fn barrier_wait(
        &self,
        barrier: &SpinBarrier,
        deadline: Option<Duration>,
        tid: usize,
    ) -> Result<bool, SyncError> {
        match self.instr.now() {
            None => barrier.checked_wait(deadline),
            Some(t0) => {
                let res = barrier.checked_wait(deadline);
                self.instr
                    .add_barrier_ns(tid, t0.elapsed().as_nanos() as u64);
                res
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_never_reads_the_clock() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.now().is_none());
        assert!(obs.span_start().is_none());
        obs.plane_span(0, 3, 1, None);
        obs.barrier_span(0, 2, None);
        obs.instant(0, TraceEventKind::Heal { tid: 0 });
        assert!(obs.instrument().timing().per_thread.is_empty());
        assert_eq!(obs.tracer().snapshot().total_events(), 0);
    }

    #[test]
    fn composed_observer_routes_to_both_handles() {
        let instr = Instrument::enabled(1);
        let tracer = Tracer::enabled(1);
        let obs = Observer::new(&instr, &tracer);
        assert!(obs.is_enabled());
        obs.add_compute_ns(0, 100);
        let t0 = obs.span_start();
        assert!(t0.is_some());
        obs.plane_span(0, 5, 2, t0);
        obs.barrier_span(0, 1, obs.span_start());
        obs.instant(0, TraceEventKind::Quarantine { tid: 0 });
        assert_eq!(instr.timing().total_compute_ns(), 100);
        assert_eq!(tracer.snapshot().total_events(), 3);
    }

    #[test]
    fn barrier_wait_records_an_episode_iff_timing_enabled() {
        let barrier = SpinBarrier::new(1);
        let instr = Instrument::enabled(1);
        let obs = Observer::with_instrument(&instr);
        assert!(obs.barrier_wait(&barrier, None, 0).expect("wait succeeds"));
        assert_eq!(instr.timing().wait_hist.total(), 1);

        let off = Observer::disabled();
        assert!(off.barrier_wait(&barrier, None, 0).expect("wait succeeds"));
        assert!(off.instrument().timing().per_thread.is_empty());
    }

    #[test]
    fn partial_observers_keep_the_other_handle_disabled() {
        let instr = Instrument::enabled(1);
        let obs = Observer::with_instrument(&instr);
        assert!(obs.span_start().is_none());
        let tracer = Tracer::enabled(1);
        let obs = Observer::with_tracer(&tracer);
        assert!(obs.now().is_none());
        assert!(obs.is_enabled());
    }
}
