//! Cache-line padding (replaces `crossbeam::utils::CachePadded` so the
//! crate builds with no external dependencies).

use std::ops::{Deref, DerefMut};

/// Aligns `T` to a cache-line-sized boundary so adjacent instances never
/// share a line — the property that keeps per-thread barrier flags and
/// progress counters free of false sharing.
///
/// 128-byte alignment covers both the 64-byte line of current x86-64
/// parts (including the adjacent-line prefetcher pair) and the 128-byte
/// line of Apple/ARM big cores.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_line_separated() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 128);
        assert_eq!(*v[3], 3);
    }

    #[test]
    fn deref_mut_and_into_inner() {
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(p.into_inner(), 6);
    }
}
