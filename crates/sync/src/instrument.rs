//! Per-thread compute/barrier-wait timing, zero-cost when disabled.
//!
//! The 3.5-D executors barrier once per streamed Z plane, so the share of
//! wall-clock time a thread spends *waiting* at the barrier (rather than
//! computing) is the direct measurement of load imbalance and barrier
//! latency — the quantity Wittmann/Hager/Wellein report for shared-cache
//! temporal blocking. An [`Instrument`] is handed to the instrumented
//! sweep entry points; each team member accumulates two nanosecond
//! counters (compute, barrier wait) into its own cache-padded slot, and
//! [`Instrument::timing`] snapshots them into a [`SweepTiming`].
//!
//! A disabled handle ([`Instrument::disabled`]) carries no slots: every
//! record call reduces to one predictable branch on a `bool`, and no
//! clock is ever read — the hot loop of `parallel35d_sweep` stays
//! bit-for-bit on the fast path it had before instrumentation existed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::CachePadded;

/// Number of buckets in a [`WaitHistogram`].
pub const WAIT_HIST_BUCKETS: usize = 12;

/// Histogram of barrier-wait episode durations.
///
/// Bucket `i` counts waits with `duration_ns ≤ 2^(10 + 2i)` (1 µs, 4 µs,
/// 16 µs, … ~268 ms); the last bucket is unbounded. Log-spaced buckets
/// separate the healthy case (sub-µs spins) from load imbalance (tens of
/// µs) and stragglers (ms and up) at a glance.
///
/// `threefive-metrics` mirrors this geometry as `HistSpec::BARRIER_WAIT`
/// so the daemon can merge these counts into its live registry
/// bucket-for-bucket; a regression test over there pins the two edge
/// functions to each other. Change one only with the other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitHistogram {
    /// Per-bucket episode counts.
    pub counts: [u64; WAIT_HIST_BUCKETS],
}

impl WaitHistogram {
    /// The bucket a wait of `ns` nanoseconds falls into.
    pub fn bucket_index(ns: u64) -> usize {
        let mut edge = 1u64 << 10;
        for i in 0..WAIT_HIST_BUCKETS - 1 {
            if ns <= edge {
                return i;
            }
            edge <<= 2;
        }
        WAIT_HIST_BUCKETS - 1
    }

    /// Upper edge of bucket `i` in nanoseconds; `None` for the unbounded
    /// last bucket.
    pub fn bucket_upper_ns(i: usize) -> Option<u64> {
        (i < WAIT_HIST_BUCKETS - 1).then(|| 1u64 << (10 + 2 * i))
    }

    /// Counts one wait episode of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
    }

    /// Total episodes recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// One thread's timing slot: nanoseconds computing vs. waiting, plus the
/// wait-episode histogram.
#[derive(Debug, Default)]
struct Slot {
    compute_ns: AtomicU64,
    barrier_ns: AtomicU64,
    wait_hist: [AtomicU64; WAIT_HIST_BUCKETS],
}

/// Handle enabling (or not) per-thread compute/barrier-wait timing.
///
/// Cloneless by design: the executors borrow it, the harness owns it.
#[derive(Debug)]
pub struct Instrument {
    /// `None` ⇒ disabled: no slots, no clock reads, no atomics.
    slots: Option<Vec<CachePadded<Slot>>>,
}

impl Instrument {
    /// A disabled handle: all recording calls are no-ops.
    pub const fn disabled() -> Self {
        Self { slots: None }
    }

    /// An enabled handle with one padded slot per team member.
    pub fn enabled(threads: usize) -> Self {
        Self {
            slots: Some((0..threads).map(|_| CachePadded::default()).collect()),
        }
    }

    /// Whether timing is being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.slots.is_some()
    }

    /// Reads the clock iff enabled — the only way the executors obtain
    /// timestamps, so a disabled handle provably never syscalls.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        if self.slots.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Adds `ns` of compute time to thread `tid`'s slot.
    ///
    /// No-op when disabled or `tid` is out of range (a smaller team than
    /// the handle was sized for is fine; the extra slots read zero).
    #[inline]
    pub fn add_compute_ns(&self, tid: usize, ns: u64) {
        if let Some(slot) = self.slots.as_ref().and_then(|s| s.get(tid)) {
            // ORDERING: Relaxed — monotonic counter, each slot written by
            // one thread; the team's barrier publishes it to `timing()`.
            slot.compute_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Adds one barrier-wait episode of `ns` to thread `tid`'s slot —
    /// both the running total and the wait histogram.
    #[inline]
    pub fn add_barrier_ns(&self, tid: usize, ns: u64) {
        if let Some(slot) = self.slots.as_ref().and_then(|s| s.get(tid)) {
            // ORDERING: Relaxed — same single-writer counter argument as
            // `add_compute_ns`.
            slot.barrier_ns.fetch_add(ns, Ordering::Relaxed);
            slot.wait_hist[WaitHistogram::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots the accumulated counters.
    pub fn timing(&self) -> SweepTiming {
        let mut wait_hist = WaitHistogram::default();
        let per_thread = self
            .slots
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|s| {
                // ORDERING: Relaxed — snapshots are taken after the sweep's
                // final barrier, which already ordered the workers' stores.
                for (i, c) in s.wait_hist.iter().enumerate() {
                    wait_hist.counts[i] += c.load(Ordering::Relaxed);
                }
                // ORDERING: Relaxed — same post-barrier argument as above.
                ThreadTiming {
                    compute_ns: s.compute_ns.load(Ordering::Relaxed),
                    barrier_ns: s.barrier_ns.load(Ordering::Relaxed),
                }
            })
            .collect();
        SweepTiming {
            per_thread,
            wait_hist,
        }
    }

    /// Zeroes the counters (between benchmark repetitions).
    pub fn reset(&self) {
        for s in self.slots.as_deref().unwrap_or(&[]) {
            // ORDERING: Relaxed — reset happens between repetitions, with
            // no sweep in flight; the next dispatch publishes the zeroes.
            s.compute_ns.store(0, Ordering::Relaxed);
            s.barrier_ns.store(0, Ordering::Relaxed);
            for c in &s.wait_hist {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Per-thread timing of one (or several accumulated) instrumented sweeps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepTiming {
    /// One entry per team member, indexed by `tid`.
    pub per_thread: Vec<ThreadTiming>,
    /// Distribution of individual barrier-wait episodes across the team.
    pub wait_hist: WaitHistogram,
}

/// One thread's split of wall-clock time inside the parallel region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadTiming {
    /// Nanoseconds spent in stencil/LBM computation (between barriers).
    pub compute_ns: u64,
    /// Nanoseconds spent waiting at the per-Z-step barrier.
    pub barrier_ns: u64,
}

impl ThreadTiming {
    /// This thread's fraction of in-region time spent waiting, in
    /// `[0, 1]`; 0 when nothing was recorded (never NaN).
    pub fn barrier_share(&self) -> f64 {
        let total = self.compute_ns + self.barrier_ns;
        if total == 0 {
            0.0
        } else {
            self.barrier_ns as f64 / total as f64
        }
    }
}

impl SweepTiming {
    /// Total compute nanoseconds across the team.
    pub fn total_compute_ns(&self) -> u64 {
        self.per_thread.iter().map(|t| t.compute_ns).sum()
    }

    /// Total barrier-wait nanoseconds across the team.
    pub fn total_barrier_ns(&self) -> u64 {
        self.per_thread.iter().map(|t| t.barrier_ns).sum()
    }

    /// Fraction of in-region time spent waiting at barriers, in `[0, 1]`.
    ///
    /// Returns 0 when nothing was recorded (disabled handle, or a serial
    /// run whose single member never waits).
    pub fn barrier_share(&self) -> f64 {
        let c = self.total_compute_ns();
        let b = self.total_barrier_ns();
        if c + b == 0 {
            0.0
        } else {
            b as f64 / (c + b) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let i = Instrument::disabled();
        assert!(!i.is_enabled());
        assert!(i.now().is_none());
        i.add_compute_ns(0, 100);
        i.add_barrier_ns(0, 100);
        let t = i.timing();
        assert!(t.per_thread.is_empty());
        assert_eq!(t.barrier_share(), 0.0);
    }

    #[test]
    fn enabled_handle_accumulates_per_thread() {
        let i = Instrument::enabled(2);
        assert!(i.is_enabled());
        assert!(i.now().is_some());
        i.add_compute_ns(0, 300);
        i.add_barrier_ns(0, 100);
        i.add_compute_ns(1, 100);
        i.add_barrier_ns(1, 300);
        i.add_compute_ns(7, 999); // out of range: ignored
        let t = i.timing();
        assert_eq!(t.per_thread.len(), 2);
        assert_eq!(t.total_compute_ns(), 400);
        assert_eq!(t.total_barrier_ns(), 400);
        assert!((t.barrier_share() - 0.5).abs() < 1e-12);
        i.reset();
        assert_eq!(i.timing().total_compute_ns(), 0);
    }

    #[test]
    fn barrier_share_is_zero_without_samples() {
        assert_eq!(SweepTiming::default().barrier_share(), 0.0);
        let t = SweepTiming {
            per_thread: vec![ThreadTiming {
                compute_ns: 10,
                barrier_ns: 0,
            }],
            ..Default::default()
        };
        assert_eq!(t.barrier_share(), 0.0);
    }

    #[test]
    fn per_thread_share_is_zero_without_samples() {
        assert_eq!(ThreadTiming::default().barrier_share(), 0.0);
        let t = ThreadTiming {
            compute_ns: 100,
            barrier_ns: 300,
        };
        assert!((t.barrier_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wait_histogram_buckets_and_merge() {
        assert_eq!(WaitHistogram::bucket_index(0), 0);
        assert_eq!(WaitHistogram::bucket_index(1024), 0);
        assert_eq!(WaitHistogram::bucket_index(1025), 1);
        assert_eq!(WaitHistogram::bucket_index(u64::MAX), WAIT_HIST_BUCKETS - 1);
        assert_eq!(WaitHistogram::bucket_upper_ns(0), Some(1 << 10));
        assert_eq!(WaitHistogram::bucket_upper_ns(WAIT_HIST_BUCKETS - 1), None);
        let mut a = WaitHistogram::default();
        a.record(100);
        a.record(2_000_000);
        let mut b = WaitHistogram::default();
        b.record(100);
        b.merge(&a);
        assert_eq!(b.total(), 3);
        assert_eq!(b.counts[0], 2);
    }

    #[test]
    fn instrument_collects_wait_histogram() {
        let i = Instrument::enabled(2);
        i.add_barrier_ns(0, 500);
        i.add_barrier_ns(1, 2_000_000);
        let t = i.timing();
        assert_eq!(t.wait_hist.total(), 2);
        assert_eq!(t.wait_hist.counts[0], 1);
        i.reset();
        assert_eq!(i.timing().wait_hist.total(), 0);
    }
}
