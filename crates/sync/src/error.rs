//! Typed errors for the synchronization substrate.

use std::fmt;
use std::time::Duration;

/// Failures surfaced by the fault-tolerant barrier/team entry points.
///
/// The panicking fast paths ([`crate::SpinBarrier::wait`],
/// [`crate::ThreadTeam::run`]) never construct these; the `try_`/checked
/// variants return them so callers (the executor fallback ladder) can
/// degrade instead of hanging or unwinding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The barrier was poisoned: a participant panicked or timed out, so
    /// the episode count can no longer be trusted. All checked waiters
    /// drain with this error until [`crate::SpinBarrier::reset`].
    BarrierPoisoned,
    /// A checked wait exceeded its deadline. The waiter poisons the
    /// barrier on the way out so every other participant drains too.
    BarrierTimeout {
        /// Configured deadline that was exceeded.
        deadline: Duration,
    },
    /// A team member's closure panicked during the given generation; all
    /// members finished, the team stays usable.
    TeamPanicked {
        /// Team generation (run index) in which the panic occurred.
        generation: usize,
    },
    /// A watchdogged run was requested with a deadline that had already
    /// expired (zero remaining time). Nothing was dispatched: the team
    /// never saw the job, no member ran, and the team is not quarantined.
    /// Callers computing a *remaining* deadline (e.g. a service dequeuing
    /// a job admitted long ago) get an immediate typed timeout instead of
    /// paying for a doomed dispatch.
    DeadlineExpired {
        /// The (already elapsed) deadline as given.
        deadline: Duration,
    },
    /// The watchdog deadline elapsed with at least one member still
    /// running. `tid` names the first straggler; the team is quarantined
    /// until that member finishes.
    TeamStalled {
        /// First member that had not finished at the deadline.
        tid: usize,
        /// Team generation (run index) that stalled.
        phase: usize,
    },
    /// A run was attempted while an earlier stalled generation has still
    /// not drained; the call returns immediately instead of queueing.
    TeamQuarantined {
        /// The stalled generation the team is waiting out.
        phase: usize,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::BarrierPoisoned => {
                write!(f, "barrier poisoned by a panicked or timed-out participant")
            }
            SyncError::BarrierTimeout { deadline } => {
                write!(f, "barrier wait exceeded deadline of {deadline:?}")
            }
            SyncError::TeamPanicked { generation } => {
                write!(f, "a team member panicked in generation {generation}")
            }
            SyncError::DeadlineExpired { deadline } => {
                write!(
                    f,
                    "deadline of {deadline:?} already expired before dispatch"
                )
            }
            SyncError::TeamStalled { tid, phase } => {
                write!(f, "team member {tid} stalled in generation {phase}")
            }
            SyncError::TeamQuarantined { phase } => {
                write!(
                    f,
                    "team quarantined: generation {phase} has not drained yet"
                )
            }
        }
    }
}

impl std::error::Error for SyncError {}
