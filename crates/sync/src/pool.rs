//! Persistent team pool: checkout/checkin with quarantine and heal
//! accounting.
//!
//! A long-running solver service keeps its pinned [`ThreadTeam`]s hot
//! across jobs instead of spawning threads per request. [`TeamPool`] owns
//! a fixed set of teams and hands them out one job at a time through RAII
//! [`TeamLease`]s; fault isolation between tenants is the pool's job:
//!
//! * a lease marked **suspect** (its job failed with a sync error) is
//!   health-probed at checkin with a trivial watchdogged no-op run
//!   ([`ThreadTeam::try_run_for`]). A probe that times out means a
//!   straggler from the failed job is still wedged inside the team — the
//!   team is moved to the **quarantined** side list instead of back into
//!   circulation, so the next tenant can never be dispatched on top of a
//!   stalled generation;
//! * quarantined teams are **re-probed on every checkout**: once the
//!   straggler drains, [`ThreadTeam::try_run_for`]'s internal heal re-arms
//!   the team and the pool returns it to the idle set, bumping the heal
//!   counter. The pool never drops a quarantined team and never creates
//!   replacements, so the total team count is a hard invariant:
//!   `idle + quarantined + leased == capacity` at all times — repeated
//!   poison→heal cycles can neither leak teams nor inflate the pool.
//!
//! The pool is a cold-path allocator of execution contexts; all fast-path
//! work happens inside the leased team. Checkout blocks (bounded) on a
//! condvar rather than spinning.
//!
//! Like the barrier, the pool is generic over a [`SyncFamily`] *and* over
//! the pooled unit ([`TeamUnit`]) so the model checker can exhaustively
//! explore checkout/checkin/quarantine/heal against a scripted in-memory
//! team (DESIGN.md §16). Production code uses the default
//! `TeamPool<StdFamily, ThreadTeam>` instantiation.

use std::sync::Arc;
use std::time::Duration;

use crate::shim::{AtomicUsizeShim, CondvarShim, MutexShim, Ordering, StdFamily, SyncFamily};
use crate::{SyncError, ThreadTeam};

/// Default watchdog deadline for the checkin/checkout health probes.
pub const DEFAULT_PROBE_DEADLINE: Duration = Duration::from_millis(200);

/// The pooled execution unit: what [`TeamPool`] creates, probes and
/// quarantines. Production pools hold [`ThreadTeam`]s; the model checker
/// substitutes a scripted team whose probe outcome the explored schedule
/// controls.
pub trait TeamUnit: Send {
    /// Creates one unit with `threads` members.
    fn create(threads: usize) -> Self;
    /// Whether the unit is currently quarantined by its own watchdog
    /// (a prior run left a straggler wedged inside).
    fn is_quarantined(&self) -> bool;
    /// One watchdogged no-op dispatch; `true` means every member answered
    /// within `deadline` (and any earlier quarantine was healed on entry).
    fn probe(&self, deadline: Duration) -> bool;
}

impl TeamUnit for ThreadTeam {
    fn create(threads: usize) -> Self {
        ThreadTeam::new(threads)
    }

    fn is_quarantined(&self) -> bool {
        ThreadTeam::is_quarantined(self)
    }

    fn probe(&self, deadline: Duration) -> bool {
        matches!(
            self.try_run_for(Arc::new(|_tid: usize| {}), deadline),
            Ok(()) | Err(SyncError::TeamPanicked { .. })
        )
    }
}

struct PoolInner<U> {
    /// Teams ready for checkout.
    idle: Vec<U>,
    /// Teams whose last health probe timed out; re-probed on checkout.
    quarantined: Vec<U>,
    /// Teams currently leased to jobs.
    leased: usize,
}

/// A fixed-size pool of persistent [`ThreadTeam`]s with quarantine/heal
/// bookkeeping (see the module docs for the isolation protocol).
pub struct TeamPool<F: SyncFamily = StdFamily, U: TeamUnit = ThreadTeam> {
    threads_per_team: usize,
    capacity: usize,
    probe_deadline: Duration,
    inner: F::Mutex<PoolInner<U>>,
    freed: F::Condvar,
    /// Total quarantine entries (a suspect checkin probe timed out).
    isolations: F::AtomicUsize,
    /// Total heals (a quarantined team passed a later probe).
    heals: F::AtomicUsize,
}

impl TeamPool {
    /// Creates `teams` teams of `threads_per_team` members each, all idle
    /// (the production [`StdFamily`]/[`ThreadTeam`] instantiation).
    ///
    /// # Panics
    /// Panics if `teams == 0` or `threads_per_team == 0`.
    pub fn new(teams: usize, threads_per_team: usize) -> Self {
        Self::new_in(teams, threads_per_team)
    }
}

impl<F: SyncFamily, U: TeamUnit> TeamPool<F, U> {
    /// Creates `teams` units of `threads_per_team` members each in family
    /// `F`, all idle.
    ///
    /// # Panics
    /// Panics if `teams == 0` or `threads_per_team == 0`.
    pub fn new_in(teams: usize, threads_per_team: usize) -> Self {
        assert!(teams > 0, "TeamPool: need at least one team");
        assert!(threads_per_team > 0, "TeamPool: need at least one thread");
        Self {
            threads_per_team,
            capacity: teams,
            probe_deadline: DEFAULT_PROBE_DEADLINE,
            inner: F::Mutex::new(PoolInner {
                idle: (0..teams).map(|_| U::create(threads_per_team)).collect(),
                quarantined: Vec::new(),
                leased: 0,
            }),
            freed: F::Condvar::new(),
            isolations: F::AtomicUsize::named(0, "pool.isolations"),
            heals: F::AtomicUsize::named(0, "pool.heals"),
        }
    }

    /// Overrides the health-probe watchdog deadline (default
    /// [`DEFAULT_PROBE_DEADLINE`]). Shorter deadlines detect wedged teams
    /// faster at the cost of false positives on heavily loaded hosts —
    /// harmless ones: a false quarantine heals at the next checkout probe.
    pub fn with_probe_deadline(mut self, deadline: Duration) -> Self {
        self.probe_deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Total number of teams the pool owns (leased + idle + quarantined).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Members per team.
    pub fn threads_per_team(&self) -> usize {
        self.threads_per_team
    }

    /// Teams currently ready for checkout (after reclaiming any healed
    /// quarantined teams).
    pub fn idle(&self) -> usize {
        let mut inner = self.inner.lock();
        self.reclaim_locked(&mut inner);
        inner.idle.len()
    }

    /// Teams currently in the quarantined side list.
    pub fn quarantined(&self) -> usize {
        self.inner.lock().quarantined.len()
    }

    /// Teams currently leased out.
    pub fn leased(&self) -> usize {
        self.inner.lock().leased
    }

    /// Total times a suspect team was quarantined.
    pub fn isolation_count(&self) -> usize {
        // ORDERING: Relaxed — monotonic stats counter; readers need no
        // ordering with the pool state it summarizes.
        self.isolations.load(Ordering::Relaxed)
    }

    /// Total times a quarantined team healed and rejoined the idle set.
    pub fn heal_count(&self) -> usize {
        // ORDERING: Relaxed — monotonic stats counter (see above).
        self.heals.load(Ordering::Relaxed)
    }

    /// Checks out a team, blocking up to `timeout` for one to free up.
    ///
    /// Returns `None` if no team became available in time — every team is
    /// leased or quarantined. The caller decides the policy (reject the
    /// job, retry, …); the pool never over-allocates.
    pub fn checkout(&self, timeout: Duration) -> Option<TeamLease<'_, F, U>> {
        let deadline = F::deadline(timeout);
        let mut inner = self.inner.lock();
        loop {
            self.reclaim_locked(&mut inner);
            if let Some(team) = inner.idle.pop() {
                inner.leased += 1;
                return Some(TeamLease {
                    pool: self,
                    team: Some(team),
                    suspect: false,
                });
            }
            let wait = F::remaining(deadline)?;
            let (guard, _) = self.freed.wait_timeout(inner, wait);
            inner = guard;
        }
    }

    /// Re-probes every quarantined team; healed ones rejoin the idle set.
    ///
    /// [`TeamUnit::is_quarantined`] turning false means the straggler
    /// drained; the probe run then heals (re-arms) the team. Must be
    /// called with the pool lock held.
    fn reclaim_locked(&self, inner: &mut PoolInner<U>) {
        let mut still_quarantined = Vec::new();
        for team in inner.quarantined.drain(..) {
            if !team.is_quarantined() && team.probe(self.probe_deadline) {
                // ORDERING: Relaxed — stats counter; the heal itself is
                // published by the pool mutex we hold.
                self.heals.fetch_add(1, Ordering::Relaxed);
                inner.idle.push(team);
            } else {
                still_quarantined.push(team);
            }
        }
        inner.quarantined = still_quarantined;
    }

    /// Returns a leased team to the pool (called by [`TeamLease::drop`]).
    fn checkin(&self, team: U, suspect: bool) {
        let healthy = if suspect {
            // The job failed with a sync error: a member may still be
            // wedged inside the team. One watchdogged no-op run decides —
            // drained teams come back clean, stalled ones are isolated.
            !team.is_quarantined() && team.probe(self.probe_deadline)
        } else {
            true
        };
        let mut inner = self.inner.lock();
        inner.leased -= 1;
        if healthy {
            inner.idle.push(team);
        } else {
            // ORDERING: Relaxed — stats counter; the quarantine move is
            // published by the pool mutex we hold.
            self.isolations.fetch_add(1, Ordering::Relaxed);
            inner.quarantined.push(team);
        }
        drop(inner);
        self.freed.notify_all();
    }
}

/// RAII lease on one pooled team; checked back in on drop.
///
/// Call [`TeamLease::mark_suspect`] when the job running on this team
/// failed with a sync error (panic, barrier timeout, stall) so checkin
/// health-probes the team instead of trusting it.
pub struct TeamLease<'a, F: SyncFamily = StdFamily, U: TeamUnit = ThreadTeam> {
    pool: &'a TeamPool<F, U>,
    team: Option<U>,
    suspect: bool,
}

impl<F: SyncFamily, U: TeamUnit> TeamLease<'_, F, U> {
    /// The leased team.
    pub fn team(&self) -> &U {
        self.team.as_ref().expect("lease is live until drop")
    }

    /// Flags the team for a health probe at checkin.
    pub fn mark_suspect(&mut self) {
        self.suspect = true;
    }
}

impl<F: SyncFamily, U: TeamUnit> std::ops::Deref for TeamLease<'_, F, U> {
    type Target = U;
    fn deref(&self) -> &U {
        self.team()
    }
}

impl<F: SyncFamily, U: TeamUnit> Drop for TeamLease<'_, F, U> {
    fn drop(&mut self) {
        let team = self.team.take().expect("double drop is impossible");
        self.pool.checkin(team, self.suspect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    #[test]
    fn checkout_runs_and_checkin_recycles() {
        let pool = TeamPool::new(2, 3);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            let lease = pool.checkout(Duration::from_secs(5)).expect("idle team");
            lease
                .try_run(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
        }
        assert_eq!(hits.into_inner(), 30);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.leased(), 0);
        assert_eq!(pool.quarantined(), 0);
    }

    #[test]
    fn exhausted_pool_times_out_instead_of_overallocating() {
        let pool = TeamPool::new(1, 2);
        let lease = pool.checkout(Duration::from_millis(10)).unwrap();
        assert!(pool.checkout(Duration::from_millis(30)).is_none());
        drop(lease);
        assert!(pool.checkout(Duration::from_millis(100)).is_some());
    }

    #[test]
    fn panicked_job_does_not_quarantine_the_team() {
        // A member panic drains the generation; the team stays usable and
        // the suspect probe must pass.
        let pool = TeamPool::new(1, 2);
        {
            let mut lease = pool.checkout(Duration::from_secs(5)).unwrap();
            let err = lease
                .try_run(|tid| {
                    if tid == 1 {
                        panic!("injected");
                    }
                })
                .unwrap_err();
            assert!(matches!(err, SyncError::TeamPanicked { .. }));
            lease.mark_suspect();
        }
        assert_eq!(pool.quarantined(), 0);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.isolation_count(), 0);
    }

    /// A job whose worker `tid == 1` wedges until `release` goes true.
    fn wedge_job(release: &Arc<AtomicBool>) -> Arc<impl Fn(usize) + Send + Sync + 'static> {
        let release = Arc::clone(release);
        Arc::new(move |tid: usize| {
            if tid == 1 {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        })
    }

    #[test]
    fn stalled_job_quarantines_and_heals() {
        let pool = TeamPool::new(1, 2).with_probe_deadline(Duration::from_millis(20));
        let release = Arc::new(AtomicBool::new(false));
        {
            let mut lease = pool.checkout(Duration::from_secs(5)).unwrap();
            let err = lease
                .team()
                .try_run_for(wedge_job(&release), Duration::from_millis(20))
                .unwrap_err();
            assert!(matches!(err, SyncError::TeamStalled { .. }));
            lease.mark_suspect();
        }
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.isolation_count(), 1);
        // The only team is wedged: checkout must fail, not hang or
        // hand out the poisoned team.
        assert!(pool.checkout(Duration::from_millis(50)).is_none());
        // Straggler drains -> the next checkout reclaims the team.
        release.store(true, Ordering::Release);
        let lease = wait_checkout(&pool);
        assert_eq!(pool.heal_count(), 1);
        drop(lease);
        assert_eq!(pool.idle(), 1);
    }

    fn wait_checkout(pool: &TeamPool) -> TeamLease<'_> {
        for _ in 0..400 {
            if let Some(l) = pool.checkout(Duration::from_millis(25)) {
                return l;
            }
        }
        panic!("pool never healed");
    }

    #[test]
    fn repeated_quarantine_heal_cycles_keep_pool_size_stable() {
        // Regression (satellite): N poison->heal rounds must neither leak
        // quarantined teams nor lose heal counts — the team population is
        // exactly `capacity` throughout, and every quarantine is matched
        // by a heal once the straggler drains.
        const ROUNDS: usize = 8;
        let pool = TeamPool::new(2, 2).with_probe_deadline(Duration::from_millis(20));
        for round in 1..=ROUNDS {
            let release = Arc::new(AtomicBool::new(false));
            {
                let mut lease = pool.checkout(Duration::from_secs(5)).unwrap();
                let err = lease
                    .team()
                    .try_run_for(wedge_job(&release), Duration::from_millis(15))
                    .unwrap_err();
                assert!(matches!(err, SyncError::TeamStalled { .. }), "{err:?}");
                lease.mark_suspect();
            }
            assert_eq!(pool.isolation_count(), round, "round {round}");
            // Population invariant holds mid-quarantine...
            assert_eq!(pool.idle() + pool.quarantined() + pool.leased(), 2);
            release.store(true, Ordering::Release);
            // ...and the team heals back into circulation.
            let healed = std::iter::repeat_with(|| {
                std::thread::sleep(Duration::from_millis(5));
                pool.idle() == 2
            })
            .take(400)
            .any(|h| h);
            assert!(healed, "round {round}: pool never healed to full size");
            assert_eq!(pool.heal_count(), round, "round {round}");
            assert_eq!(pool.quarantined(), 0, "round {round}");
        }
        // After all rounds: full capacity idle, zero leaked teams.
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.leased(), 0);
        assert_eq!(pool.isolation_count(), ROUNDS);
        assert_eq!(pool.heal_count(), ROUNDS);
    }

    #[test]
    fn concurrent_checkouts_share_the_pool() {
        let pool = Arc::new(TeamPool::new(2, 2));
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let lease = pool.checkout(Duration::from_secs(10)).expect("team");
                        lease.try_run(|_| {}).unwrap();
                        drop(lease);
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.into_inner(), 120);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.leased(), 0);
    }
}
