//! Stress and failure-injection tests for the synchronization substrate.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use threefive_sync::{SharedSlice, SpinBarrier, SyncError, ThreadTeam, TournamentBarrier};

#[test]
fn spin_barrier_many_threads_many_episodes() {
    const T: usize = 8;
    const EPISODES: usize = 500;
    let barrier = Arc::new(SpinBarrier::new(T));
    let counter = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..T {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for e in 1..=EPISODES {
                    counter.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    // After the barrier every increment of this episode is
                    // visible; before the next one, none of the next's.
                    let seen = counter.load(Ordering::Relaxed);
                    assert!(seen >= e * T && seen <= e * T + T, "episode {e}: {seen}");
                    barrier.wait();
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), T * EPISODES);
}

#[test]
fn mixed_barrier_kinds_interoperate_in_one_team() {
    // The executor uses SpinBarrier inside ThreadTeam::run; the tournament
    // barrier must compose the same way.
    const T: usize = 4;
    let team = ThreadTeam::new(T);
    let spin = SpinBarrier::new(T);
    let tournament = TournamentBarrier::new(T);
    let log = Vec::from_iter((0..T * 3).map(|_| AtomicUsize::new(0)));
    team.run(|tid| {
        let mut w = tournament.waiter(tid);
        log[tid].store(1, Ordering::Relaxed);
        spin.wait();
        assert!(log.iter().take(T).all(|c| c.load(Ordering::Relaxed) == 1));
        log[T + tid].store(2, Ordering::Relaxed);
        w.wait();
        assert!(log
            .iter()
            .skip(T)
            .take(T)
            .all(|c| c.load(Ordering::Relaxed) == 2));
        log[2 * T + tid].store(3, Ordering::Relaxed);
        spin.wait();
        assert!(log
            .iter()
            .skip(2 * T)
            .all(|c| c.load(Ordering::Relaxed) == 3));
    });
}

#[test]
fn team_survives_thousands_of_tiny_runs() {
    let team = ThreadTeam::new(4);
    let total = AtomicUsize::new(0);
    for _ in 0..2000 {
        team.run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(total.into_inner(), 8000);
}

#[test]
fn team_panic_recovery_under_repeated_failures() {
    let team = ThreadTeam::new(3);
    for round in 0..20 {
        let failing = round % 3;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == failing {
                    panic!("injected failure {round}");
                }
            });
        }));
        assert!(result.is_err(), "round {round} should propagate the panic");
        // The team must stay functional after every failure.
        let ok = AtomicUsize::new(0);
        team.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 3, "round {round}");
    }
}

#[test]
fn try_run_panic_recovery_cycles() {
    // The typed-error twin of the panic-recovery test: repeated injected
    // panics through `try_run` must come back as `TeamPanicked` every
    // time, with a healthy run in between each failure.
    let team = ThreadTeam::new(4);
    for round in 0..25 {
        let failing = round % 4;
        let err = team
            .try_run(|tid| {
                if tid == failing {
                    panic!("injected failure {round}");
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, SyncError::TeamPanicked { .. }),
            "round {round}: {err:?}"
        );
        let ok = AtomicUsize::new(0);
        team.try_run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ok.into_inner(), 4, "round {round}");
    }
}

#[test]
fn oversubscribed_team_double_the_cores() {
    // 2× the hardware threads: members must yield rather than livelock,
    // both in the team dispatch loop and inside barrier episodes.
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let n = 2 * cores;
    let team = ThreadTeam::new(n);
    let barrier = SpinBarrier::new(n);
    let counter = AtomicUsize::new(0);
    const EPISODES: usize = 50;
    let t0 = Instant::now();
    team.run(|_| {
        for e in 1..=EPISODES {
            counter.fetch_add(1, Ordering::Relaxed);
            barrier.wait();
            let seen = counter.load(Ordering::Relaxed);
            assert!(seen >= e * n && seen <= e * n + n, "episode {e}: {seen}");
            barrier.wait();
        }
    });
    assert_eq!(counter.into_inner(), n * EPISODES);
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "oversubscription must degrade, not livelock"
    );
}

#[test]
fn oversubscribed_team_survives_panics() {
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let n = 2 * cores;
    let team = ThreadTeam::new(n);
    let err = team
        .try_run(|tid| {
            if tid == n - 1 {
                panic!("last member dies");
            }
        })
        .unwrap_err();
    assert!(matches!(err, SyncError::TeamPanicked { .. }));
    let ok = AtomicUsize::new(0);
    team.run(|_| {
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.into_inner(), n);
}

#[test]
fn watchdog_timeout_never_hangs_permanently() {
    // A member that stalls far past the deadline: the caller must get
    // `TeamStalled` at ~deadline (not at stall length), quarantine must
    // refuse further dispatch, and the team must heal once the straggler
    // drains — the "no permanent hang" guarantee end to end.
    let team = ThreadTeam::new(4);
    let release = Arc::new(AtomicBool::new(false));
    let stall = {
        let release = Arc::clone(&release);
        Arc::new(move |tid: usize| {
            if tid == 3 {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        })
    };
    let t0 = Instant::now();
    let err = team
        .try_run_for(stall, Duration::from_millis(50))
        .unwrap_err();
    assert_eq!(err, SyncError::TeamStalled { tid: 3, phase: 1 });
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "watchdog returned at the deadline, not at stall length"
    );
    // Quarantined: fail fast, not hang.
    let t1 = Instant::now();
    assert!(team.try_run(|_| {}).is_err());
    assert!(t1.elapsed() < Duration::from_secs(5));
    // Heal and prove reuse.
    release.store(true, Ordering::Release);
    let deadline = Instant::now() + Duration::from_secs(10);
    while team.is_quarantined() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let ok = AtomicUsize::new(0);
    team.run(|_| {
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.into_inner(), 4);
}

#[test]
fn barrier_timeout_with_oversubscription_drains_all() {
    // Missing participant + more waiters than cores: every checked waiter
    // must drain with an error in bounded time.
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let waiters = 2 * cores;
    let barrier = Arc::new(SpinBarrier::new(waiters + 1)); // one never arrives
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier
                        .checked_wait(Some(Duration::from_millis(100)))
                        .unwrap_err()
                })
            })
            .collect();
        for h in handles {
            let e = h.join().unwrap();
            assert!(matches!(
                e,
                SyncError::BarrierTimeout { .. } | SyncError::BarrierPoisoned
            ));
        }
    });
    assert!(t0.elapsed() < Duration::from_secs(30), "bounded drain");
}

#[test]
fn shared_slice_full_checkerboard_write() {
    // Interleaved (non-contiguous) disjoint ownership: even indices to
    // thread 0, odd to thread 1 — stresses aliasing assumptions harder
    // than block partitions.
    let n = 4096usize;
    let mut data = vec![0u32; n];
    {
        let view = SharedSlice::new(&mut data);
        let team = ThreadTeam::new(2);
        team.run(|tid| {
            for i in (tid..n).step_by(2) {
                // SAFETY: parity partition is disjoint.
                unsafe {
                    *view.slice_mut(i, 1).first_mut().unwrap() = (i * 3 + tid) as u32;
                }
            }
        });
    }
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v, (i * 3 + i % 2) as u32);
    }
}

#[test]
fn barrier_heavy_team_workload_like_the_pipeline() {
    // Shape of the 3.5-D executor: many barrier-separated phases over a
    // shared buffer, each thread writing its row band every phase.
    const T: usize = 4;
    const PHASES: usize = 300;
    let team = ThreadTeam::new(T);
    let barrier = SpinBarrier::new(T);
    let mut buf = vec![0u64; 64];
    let view = SharedSlice::new(&mut buf);
    team.run(|tid| {
        let rows = threefive_grid_rows(64, T, tid);
        for phase in 1..=PHASES {
            // SAFETY: row bands are disjoint per thread.
            let mine = unsafe { view.slice_mut(rows.0, rows.1 - rows.0) };
            for v in mine.iter_mut() {
                *v += phase as u64;
            }
            barrier.wait();
            // All rows must now be at the same phase sum.
            let expect = (phase * (phase + 1) / 2) as u64;
            // SAFETY: no writers during the read phase.
            let all = unsafe { view.slice(0, 64) };
            assert!(all.iter().all(|&v| v == expect), "phase {phase}");
            barrier.wait();
        }
    });
}

/// Minimal stand-in for the grid crate's partitioner (avoids a dev-dep
/// cycle): contiguous even split.
fn threefive_grid_rows(n: usize, parts: usize, k: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let start = k * base + k.min(extra);
    (start, start + base + usize::from(k < extra))
}
