//! Stress and failure-injection tests for the synchronization substrate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use threefive_sync::{SharedSlice, SpinBarrier, ThreadTeam, TournamentBarrier};

#[test]
fn spin_barrier_many_threads_many_episodes() {
    const T: usize = 8;
    const EPISODES: usize = 500;
    let barrier = Arc::new(SpinBarrier::new(T));
    let counter = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..T {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for e in 1..=EPISODES {
                    counter.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    // After the barrier every increment of this episode is
                    // visible; before the next one, none of the next's.
                    let seen = counter.load(Ordering::Relaxed);
                    assert!(seen >= e * T && seen <= e * T + T, "episode {e}: {seen}");
                    barrier.wait();
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), T * EPISODES);
}

#[test]
fn mixed_barrier_kinds_interoperate_in_one_team() {
    // The executor uses SpinBarrier inside ThreadTeam::run; the tournament
    // barrier must compose the same way.
    const T: usize = 4;
    let team = ThreadTeam::new(T);
    let spin = SpinBarrier::new(T);
    let tournament = TournamentBarrier::new(T);
    let log = Vec::from_iter((0..T * 3).map(|_| AtomicUsize::new(0)));
    team.run(|tid| {
        let mut w = tournament.waiter(tid);
        log[tid].store(1, Ordering::Relaxed);
        spin.wait();
        assert!(log.iter().take(T).all(|c| c.load(Ordering::Relaxed) == 1));
        log[T + tid].store(2, Ordering::Relaxed);
        w.wait();
        assert!(log
            .iter()
            .skip(T)
            .take(T)
            .all(|c| c.load(Ordering::Relaxed) == 2));
        log[2 * T + tid].store(3, Ordering::Relaxed);
        spin.wait();
        assert!(log
            .iter()
            .skip(2 * T)
            .all(|c| c.load(Ordering::Relaxed) == 3));
    });
}

#[test]
fn team_survives_thousands_of_tiny_runs() {
    let team = ThreadTeam::new(4);
    let total = AtomicUsize::new(0);
    for _ in 0..2000 {
        team.run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(total.into_inner(), 8000);
}

#[test]
fn team_panic_recovery_under_repeated_failures() {
    let team = ThreadTeam::new(3);
    for round in 0..20 {
        let failing = round % 3;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == failing {
                    panic!("injected failure {round}");
                }
            });
        }));
        assert!(result.is_err(), "round {round} should propagate the panic");
        // The team must stay functional after every failure.
        let ok = AtomicUsize::new(0);
        team.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.into_inner(), 3, "round {round}");
    }
}

#[test]
fn shared_slice_full_checkerboard_write() {
    // Interleaved (non-contiguous) disjoint ownership: even indices to
    // thread 0, odd to thread 1 — stresses aliasing assumptions harder
    // than block partitions.
    let n = 4096usize;
    let mut data = vec![0u32; n];
    {
        let view = SharedSlice::new(&mut data);
        let team = ThreadTeam::new(2);
        team.run(|tid| {
            for i in (tid..n).step_by(2) {
                // SAFETY: parity partition is disjoint.
                unsafe {
                    *view.slice_mut(i, 1).first_mut().unwrap() = (i * 3 + tid) as u32;
                }
            }
        });
    }
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v, (i * 3 + i % 2) as u32);
    }
}

#[test]
fn barrier_heavy_team_workload_like_the_pipeline() {
    // Shape of the 3.5-D executor: many barrier-separated phases over a
    // shared buffer, each thread writing its row band every phase.
    const T: usize = 4;
    const PHASES: usize = 300;
    let team = ThreadTeam::new(T);
    let barrier = SpinBarrier::new(T);
    let mut buf = vec![0u64; 64];
    let view = SharedSlice::new(&mut buf);
    team.run(|tid| {
        let rows = threefive_grid_rows(64, T, tid);
        for phase in 1..=PHASES {
            // SAFETY: row bands are disjoint per thread.
            let mine = unsafe { view.slice_mut(rows.0, rows.1 - rows.0) };
            for v in mine.iter_mut() {
                *v += phase as u64;
            }
            barrier.wait();
            // All rows must now be at the same phase sum.
            let expect = (phase * (phase + 1) / 2) as u64;
            // SAFETY: no writers during the read phase.
            let all = unsafe { view.slice(0, 64) };
            assert!(all.iter().all(|&v| v == expect), "phase {phase}");
            barrier.wait();
        }
    });
}

/// Minimal stand-in for the grid crate's partitioner (avoids a dev-dep
/// cycle): contiguous even split.
fn threefive_grid_rows(n: usize, parts: usize, k: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let start = k * base + k.min(extra);
    (start, start + base + usize::from(k < extra))
}
