//! A hermetic, dependency-free stand-in for the parts of the `proptest`
//! crate this workspace uses.
//!
//! The build environment for this repository is fully offline, so the real
//! `proptest` cannot be fetched. This shim re-implements the **API subset**
//! the test suites rely on — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, range strategies, tuple strategies,
//! `prop::array::uniformN`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases` — with these simplifications:
//!
//! * Sampling is **deterministic**: every test function derives its PRNG
//!   seed from its own name, so failures are reproducible run to run.
//! * There is **no shrinking**; a failing case reports the sampled inputs
//!   verbatim.
//! * Strategies are simple samplers (`fn sample(&self, rng) -> Value`);
//!   there is no `prop_map`/`prop_filter` combinator algebra beyond what
//!   the workspace needs.
//!
//! Swap the workspace dependency back to the real `proptest` (same import
//! paths) when building in a networked environment.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Error produced by `prop_assert!`-style macros inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!`-block configuration (only `cases` is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic xorshift* PRNG used for sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Derives a seed from a test name (FNV-1a), keeping runs reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A sampling strategy producing values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Boxed strategies remain strategies (needed by `prop_oneof!`).
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Uniform choice among boxed sub-strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union from its options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].sample(rng)
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Fixed-size array strategies (`uniform2`, `uniform4`, ...).
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy producing `[S::Value; N]` by sampling `S` per element.
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }

        macro_rules! uniform_fns {
            ($($name:ident => $n:literal),*) => {$(
                /// Array strategy sampling each element independently.
                pub fn $name<S: Strategy>(s: S) -> UniformArray<S, $n> {
                    UniformArray(s)
                }
            )*};
        }
        uniform_fns!(
            uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform8 => 8,
            uniform16 => 16, uniform32 => 32
        );
    }

    /// Collection strategies (`vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing a `Vec` with length drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: length sampled from `len`, elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case with a formatted message (non-panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($s) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar the workspace uses:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items (doc comments
/// and `cfg` attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {case}: {e}\n  inputs: {}",
                        stringify!($name),
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuples, arrays, oneof, vec, prop_asserts.
        #[test]
        fn macro_surface_works(
            t in (0usize..5, 1u64..9),
            arr in prop::array::uniform4(prop_oneof![0.0f32..1.0, Just(2.0f32)]),
            v in prop::collection::vec(0usize..10, 2..6),
        ) {
            prop_assert!(t.0 < 5);
            prop_assert!(t.1 >= 1 && t.1 < 9);
            prop_assert_eq!(arr.len(), 4);
            for x in arr {
                prop_assert!((0.0f32..1.0).contains(&x) || x == 2.0);
            }
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
