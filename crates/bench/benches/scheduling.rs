//! Scheduling ablation (paper §II/§V-D): the paper's cooperative
//! within-tile parallelization (all threads on every tile, one barrier per
//! Z step) versus tile-level parallelism (each thread owns whole tiles,
//! no barriers, but one ring working-set *per thread*).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threefive_core::exec::{parallel35d_sweep, tile_parallel35d_sweep, Blocking35};
use threefive_core::SevenPoint;
use threefive_grid::{Dim3, DoubleGrid, Grid3};
use threefive_sync::ThreadTeam;

fn grids(n: usize) -> DoubleGrid<f32> {
    DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
        ((x * 13 + y * 7 + z * 3) % 17) as f32 * 0.1
    }))
}

fn bench_scheduling(c: &mut Criterion) {
    let kernel = SevenPoint::<f32>::heat(0.125);
    let n = 96usize;
    let steps = 4usize;
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let team = ThreadTeam::new(threads);
    let b = Blocking35::new(32, 32, 2);

    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    group.bench_function(BenchmarkId::new("row_cooperative", threads), |bch| {
        bch.iter_batched(
            || grids(n),
            |mut g| parallel35d_sweep(&kernel, &mut g, steps, b, &team),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("tile_queue", threads), |bch| {
        bch.iter_batched(
            || grids(n),
            |mut g| tile_parallel35d_sweep(&kernel, &mut g, steps, b, &team),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
