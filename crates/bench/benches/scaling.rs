//! Thread-scaling bench for the parallel 3.5-D executor (the paper's
//! §VII-A "parallel scalability of around 3.6X on 4 cores" claim) plus the
//! SIMD-width ablation via kernel choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threefive_core::exec::{parallel35d_sweep, Blocking35};
use threefive_core::SevenPoint;
use threefive_grid::{Dim3, DoubleGrid, Grid3};
use threefive_sync::ThreadTeam;

fn bench_thread_scaling(c: &mut Criterion) {
    let n = 96usize;
    let steps = 2usize;
    let kernel = SevenPoint::<f32>::heat(0.125);
    let max_threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut group = c.benchmark_group("parallel35d_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    for threads in [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= max_threads.max(2))
    {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let team = ThreadTeam::new(t);
            b.iter_batched(
                || {
                    DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
                        ((x + y + z) % 9) as f32 * 0.2
                    }))
                },
                |mut g| parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(n, n, 2), &team),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// SP (4-lane) vs DP (2-lane) 3.5-D sweep: the paper's observation that
/// DP halves both compute and bandwidth, halving throughput.
fn bench_precision_scaling(c: &mut Criterion) {
    let n = 80usize;
    let steps = 2usize;
    let mut group = c.benchmark_group("parallel35d_precision");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    let team = ThreadTeam::new(1);
    group.bench_function("sp_f32", |b| {
        let kernel = SevenPoint::<f32>::heat(0.125);
        b.iter_batched(
            || {
                DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
                    ((x ^ y ^ z) % 7) as f32
                }))
            },
            |mut g| parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(n, n, 2), &team),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dp_f64", |b| {
        let kernel = SevenPoint::<f64>::heat(0.125);
        b.iter_batched(
            || {
                DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
                    ((x ^ y ^ z) % 7) as f64
                }))
            },
            |mut g| parallel35d_sweep(&kernel, &mut g, steps, Blocking35::new(n, n, 2), &team),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_precision_scaling);
criterion_main!(benches);
