//! Criterion benches for the CPU 7-point-stencil executor ladder
//! (the measured backbone of Figure 4(b)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threefive_core::exec::{
    blocked25d_sweep, blocked35d_sweep, blocked3d_sweep, blocked4d_sweep, reference_sweep,
    simd_sweep, Blocking35,
};
use threefive_core::SevenPoint;
use threefive_grid::{Dim3, DoubleGrid, Grid3};

fn grids(n: usize) -> DoubleGrid<f32> {
    DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
        ((x * 13 + y * 7 + z * 3) % 17) as f32 * 0.1
    }))
}

fn bench_ladder(c: &mut Criterion) {
    let kernel = SevenPoint::<f32>::heat(0.125);
    let n = 96usize;
    let steps = 2usize;
    let mut group = c.benchmark_group("stencil_cpu_ladder");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));

    group.bench_function(BenchmarkId::new("scalar_reference", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| reference_sweep(&kernel, &mut g, steps),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("simd_no_blocking", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| simd_sweep(&kernel, &mut g, steps),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("blocked_3d", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| blocked3d_sweep(&kernel, &mut g, steps, 32),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("blocked_25d", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| blocked25d_sweep(&kernel, &mut g, steps, 96, 96),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("blocked_4d", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| blocked4d_sweep(&kernel, &mut g, steps, 32, 2),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("blocked_35d", n), |b| {
        b.iter_batched(
            || grids(n),
            |mut g| blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(96, 96, 2)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Ablation: how the temporal factor dim_T trades recomputation against
/// bandwidth (DESIGN.md §"quality gates": larger dim_T ⇒ larger κ).
fn bench_dim_t_ablation(c: &mut Criterion) {
    let kernel = SevenPoint::<f32>::heat(0.125);
    let n = 96usize;
    let steps = 4usize;
    let mut group = c.benchmark_group("stencil_dim_t_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    for dim_t in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("dim_t", dim_t), &dim_t, |b, &dt| {
            b.iter_batched(
                || grids(n),
                |mut g| blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(96, 96, dt)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ladder, bench_dim_t_ablation);
criterion_main!(benches);
