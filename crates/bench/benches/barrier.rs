//! Barrier micro-benchmark — the paper's §III-B claim: a custom software
//! barrier beats the pthreads (futex-based `std::sync::Barrier`) one by a
//! large factor, which matters because the 3.5-D executor barriers once
//! per streamed Z plane.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use threefive_sync::{SpinBarrier, TournamentBarrier};

const EPISODES: usize = 200;

fn bench_barriers(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(2, |c| c.get().max(2));
    let mut group = c.benchmark_group("barrier_episode");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("spin", threads), |b| {
        b.iter(|| {
            let barrier = Arc::new(SpinBarrier::new(threads));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        for _ in 0..EPISODES {
                            barrier.wait();
                        }
                    });
                }
            });
        })
    });

    group.bench_function(BenchmarkId::new("tournament", threads), |b| {
        b.iter(|| {
            let barrier = Arc::new(TournamentBarrier::new(threads));
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let mut w = barrier.waiter(tid);
                        for _ in 0..EPISODES {
                            w.wait();
                        }
                    });
                }
            });
        })
    });

    group.bench_function(BenchmarkId::new("std_futex", threads), |b| {
        b.iter(|| {
            let barrier = Arc::new(std::sync::Barrier::new(threads));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        for _ in 0..EPISODES {
                            barrier.wait();
                        }
                    });
                }
            });
        })
    });
    group.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
