//! Criterion benches for the LBM executor ladder (backbone of
//! Figures 4(a) and 5(a)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threefive_grid::Dim3;
use threefive_lbm::scenarios::lid_driven_cavity;
use threefive_lbm::{lbm35d_sweep, lbm_naive_sweep, lbm_temporal_sweep, LbmBlocking, LbmMode};

fn bench_lbm_ladder(c: &mut Criterion) {
    let n = 48usize;
    let steps = 3usize;
    let mut group = c.benchmark_group("lbm_cpu_ladder");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));

    group.bench_function(BenchmarkId::new("scalar_no_blocking", n), |b| {
        b.iter_batched(
            || lid_driven_cavity::<f32>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm_naive_sweep(&mut lat, steps, LbmMode::Scalar, None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("simd_no_blocking", n), |b| {
        b.iter_batched(
            || lid_driven_cavity::<f32>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm_naive_sweep(&mut lat, steps, LbmMode::Simd, None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("temporal_only", n), |b| {
        b.iter_batched(
            || lid_driven_cavity::<f32>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm_temporal_sweep(&mut lat, steps, 3, None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("blocked_35d", n), |b| {
        b.iter_batched(
            || lid_driven_cavity::<f32>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm35d_sweep(&mut lat, steps, LbmBlocking::new(32, 32, 3), None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Ablation: SP vs DP cost per site (the paper's "DP is half of SP").
fn bench_precision(c: &mut Criterion) {
    let n = 40usize;
    let steps = 3usize;
    let mut group = c.benchmark_group("lbm_precision");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    group.bench_function("sp_f32", |b| {
        b.iter_batched(
            || lid_driven_cavity::<f32>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm35d_sweep(&mut lat, steps, LbmBlocking::new(n, n, 3), None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("dp_f64", |b| {
        b.iter_batched(
            || lid_driven_cavity::<f64>(Dim3::cube(n), 1.2, 0.05),
            |mut lat| lbm35d_sweep(&mut lat, steps, LbmBlocking::new(n, n, 3), None),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_lbm_ladder, bench_precision);
criterion_main!(benches);
