//! Ablations of the 3.5-D design choices called out in DESIGN.md:
//!
//! * **tile aspect ratio** — equal-area tiles from X-elongated (friendly
//!   to unit-stride rows and hardware prefetch) to Y-elongated;
//! * **spatial vs temporal emphasis** — same buffer budget spent on a
//!   bigger tile with small dim_T vs a smaller tile with big dim_T.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threefive_core::exec::{blocked35d_sweep, Blocking35};
use threefive_core::SevenPoint;
use threefive_grid::{Dim3, DoubleGrid, Grid3};

fn grids(n: usize) -> DoubleGrid<f32> {
    DoubleGrid::from_initial(Grid3::from_fn(Dim3::cube(n), |x, y, z| {
        ((x * 13 + y * 7 + z * 3) % 17) as f32 * 0.1
    }))
}

fn bench_tile_aspect(c: &mut Criterion) {
    let kernel = SevenPoint::<f32>::heat(0.125);
    let n = 96usize;
    let steps = 4usize;
    let mut group = c.benchmark_group("tile_aspect_ratio");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    // Equal-area (≈ 1024-cell) tiles at different aspect ratios.
    for (tx, ty) in [(96usize, 12usize), (64, 16), (32, 32), (16, 64), (12, 96)] {
        group.bench_with_input(
            BenchmarkId::new("tile", format!("{tx}x{ty}")),
            &(tx, ty),
            |b, &(tx, ty)| {
                b.iter_batched(
                    || grids(n),
                    |mut g| blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(tx, ty, 2)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_space_time_budget(c: &mut Criterion) {
    let kernel = SevenPoint::<f32>::heat(0.125);
    let n = 96usize;
    let steps = 8usize;
    let mut group = c.benchmark_group("space_time_budget");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n * n * steps) as u64));
    // Same approximate buffer budget (Eq. 1): tile² · dim_T ≈ const.
    for (tile, dim_t) in [(88usize, 1usize), (64, 2), (48, 4), (32, 8)] {
        group.bench_with_input(
            BenchmarkId::new("budget", format!("t{tile}_k{dim_t}")),
            &(tile, dim_t),
            |b, &(tile, dim_t)| {
                b.iter_batched(
                    || grids(n),
                    |mut g| {
                        blocked35d_sweep(&kernel, &mut g, steps, Blocking35::new(tile, tile, dim_t))
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tile_aspect, bench_space_time_budget);
criterion_main!(benches);
