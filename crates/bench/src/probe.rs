//! Short timed probes for the autotuner.
//!
//! A probe is one tiny bench run — the same warmup + median machinery as
//! `threefive bench`, but with a caller-chosen (tile, dim_T, threads)
//! candidate and a budget-sized grid/step count. The tuner in
//! `crates/tune` hill-climbs over candidates by comparing probe MUPS;
//! keeping the entry points here means the tuner measures through
//! exactly the code path the real benchmarks use, so a tuned winner's
//! probe numbers and its eventual `threefive bench` numbers come from
//! the same harness.

use threefive_core::exec::ScheduleKind;
use threefive_grid::Dim3;

use crate::{measure_lbm_scheduled, measure_seven_point_scheduled, BenchConfig, Measurement};
use threefive_sync::ThreadTeam;

/// Which kernel a probe exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeWorkload {
    /// 7-point heat stencil.
    Stencil,
    /// D3Q19 lid-driven-cavity LBM.
    Lbm,
}

impl ProbeWorkload {
    /// The kernel name used in `TUNE.json` keys.
    pub fn kernel_name(self) -> &'static str {
        match self {
            Self::Stencil => "7pt",
            Self::Lbm => "lbm",
        }
    }

    /// Parses a `TUNE.json` kernel name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "7pt" => Some(Self::Stencil),
            "lbm" => Some(Self::Lbm),
            _ => None,
        }
    }
}

/// One fully-specified probe: workload, problem size, and the blocking
/// candidate to time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Kernel to time.
    pub workload: ProbeWorkload,
    /// Cubic grid edge.
    pub n: usize,
    /// Time steps per repetition.
    pub steps: usize,
    /// Block edge (dimX = dimY = tile).
    pub tile: usize,
    /// Temporal depth dim_T.
    pub dim_t: usize,
    /// Team size.
    pub threads: usize,
    /// Double precision when true, single otherwise.
    pub dp: bool,
    /// Temporal-blocking schedule the blocked variant runs under.
    pub schedule: ScheduleKind,
}

fn run_variant(
    spec: &ProbeSpec,
    cfg: &BenchConfig,
    variant: &'static str,
) -> Result<Measurement, String> {
    let team = (spec.threads > 1).then(|| ThreadTeam::new(spec.threads));
    match spec.workload {
        ProbeWorkload::Stencil => {
            let dim = Dim3::cube(spec.n);
            if spec.dp {
                measure_seven_point_scheduled::<f64>(
                    cfg,
                    variant,
                    dim,
                    spec.steps,
                    spec.tile,
                    spec.dim_t,
                    team.as_ref(),
                    spec.schedule,
                )
            } else {
                measure_seven_point_scheduled::<f32>(
                    cfg,
                    variant,
                    dim,
                    spec.steps,
                    spec.tile,
                    spec.dim_t,
                    team.as_ref(),
                    spec.schedule,
                )
            }
            .map_err(|e| format!("probe {variant} n={} failed: {e}", spec.n))
        }
        ProbeWorkload::Lbm => if spec.dp {
            measure_lbm_scheduled::<f64>(
                cfg,
                variant,
                spec.n,
                spec.steps,
                spec.tile,
                spec.dim_t,
                team.as_ref(),
                spec.schedule,
            )
        } else {
            measure_lbm_scheduled::<f32>(
                cfg,
                variant,
                spec.n,
                spec.steps,
                spec.tile,
                spec.dim_t,
                team.as_ref(),
                spec.schedule,
            )
        }
        .map_err(|e| format!("probe {variant} n={} failed: {e}", spec.n)),
    }
}

/// Times the 3.5-D blocked variant for `spec`.
pub fn probe_candidate(cfg: &BenchConfig, spec: &ProbeSpec) -> Result<Measurement, String> {
    run_variant(spec, cfg, "3.5D blocking")
}

/// Times the scalar reference for `spec` (blocking fields ignored).
/// This is the floor every persisted tuning winner must beat.
pub fn probe_scalar(cfg: &BenchConfig, spec: &ProbeSpec) -> Result<Measurement, String> {
    let scalar = ProbeSpec {
        tile: spec.n,
        dim_t: 1,
        threads: 1,
        ..*spec
    };
    let variant = match spec.workload {
        ProbeWorkload::Stencil => "scalar",
        ProbeWorkload::Lbm => "scalar no-blocking",
    };
    run_variant(&scalar, cfg, variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: ProbeWorkload) -> ProbeSpec {
        ProbeSpec {
            workload,
            n: 12,
            steps: 2,
            tile: 8,
            dim_t: 2,
            threads: 1,
            dp: false,
            schedule: ScheduleKind::Lag35d,
        }
    }

    #[test]
    fn every_schedule_probes_nonzero_throughput() {
        let cfg = BenchConfig::quick();
        for workload in [ProbeWorkload::Stencil, ProbeWorkload::Lbm] {
            for schedule in ScheduleKind::ALL {
                let s = ProbeSpec {
                    schedule,
                    ..spec(workload)
                };
                let m = probe_candidate(&cfg, &s).unwrap();
                assert!(m.mups > 0.0, "{workload:?} {schedule}");
                assert_eq!(m.schedule, Some(schedule));
            }
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for w in [ProbeWorkload::Stencil, ProbeWorkload::Lbm] {
            assert_eq!(ProbeWorkload::parse(w.kernel_name()), Some(w));
        }
        assert_eq!(ProbeWorkload::parse("27pt"), None);
    }

    #[test]
    fn stencil_probe_measures_nonzero_throughput() {
        let cfg = BenchConfig::quick();
        let m = probe_candidate(&cfg, &spec(ProbeWorkload::Stencil)).unwrap();
        assert!(m.mups > 0.0, "{}", m.mups);
        let s = probe_scalar(&cfg, &spec(ProbeWorkload::Stencil)).unwrap();
        assert!(s.mups > 0.0, "{}", s.mups);
        assert_eq!(s.label, "scalar");
    }

    #[test]
    fn lbm_probe_measures_nonzero_throughput() {
        let cfg = BenchConfig::quick();
        let m = probe_candidate(&cfg, &spec(ProbeWorkload::Lbm)).unwrap();
        assert!(m.mups > 0.0, "{}", m.mups);
        let s = probe_scalar(&cfg, &spec(ProbeWorkload::Lbm)).unwrap();
        assert!(s.mups > 0.0, "{}", s.mups);
        assert_eq!(s.label, "scalar no-blocking");
    }

    #[test]
    fn invalid_candidates_error_instead_of_panicking() {
        let cfg = BenchConfig::quick();
        let mut bad = spec(ProbeWorkload::Stencil);
        bad.dim_t = 0;
        assert!(probe_candidate(&cfg, &bad).is_err());
    }
}
