//! Counter registry and model-vs-measured telemetry.
//!
//! A [`CounterRegistry`] is an ordered name → value map that serializes
//! into the schema-v2 `telemetry` section of a BENCH report. The two
//! builders fill it with the paper's accounting for one measured variant:
//!
//! * **roofline attainment** — the variant's scenario is rebuilt exactly
//!   as `machine::figures` builds it (κ from the planner, base bytes
//!   zeroed when the grid fits the LLC) and evaluated on the paper's
//!   reference [`core_i7`] machine; attainment is measured MUPS over that
//!   prediction. Because the reference machine is fixed, attainment is
//!   comparable across hosts — it answers "how far is this run from the
//!   paper's landscape", not "how efficient is this host".
//! * **κ predicted vs achieved** — the planner's [`kappa_35d`] /
//!   [`kappa_4d`] against `SweepStats::overestimation()`.
//! * **modeled vs simulated DRAM traffic** — the executor's modeled byte
//!   counters next to a `cachesim` replay of the same access pattern
//!   (line fills + write-backs + streamed lines), skipped above
//!   [`CACHESIM_MAX_POINT_STEPS`] where the replay would dominate the
//!   bench run. No trace generator exists for the D3Q19 layout, so LBM
//!   telemetry reports modeled traffic only.
//! * **barrier-wait histogram** — the per-sweep log-4 [`WaitHistogram`]
//!   captured by `Instrument`.

use threefive_cachesim::trace::{blocked35d_trace, naive_sweep_trace, temporal_trace};
use threefive_cachesim::CacheSim;
use threefive_core::planner::{kappa_35d, kappa_4d};
use threefive_grid::Dim3;
use threefive_machine::{
    core_i7, lbm_traffic, predict, roofline::CPU_ALU_EFF, seven_point_traffic, Bound, Machine,
    Precision, Scenario,
};
use threefive_sync::{WaitHistogram, WAIT_HIST_BUCKETS};

use crate::json::Json;
use crate::Measurement;

/// LBM bandwidth efficiency on the CPU (the paper measures 20.5 GB/s of
/// 22 GB/s achievable for the 39-stream access pattern). Mirrors the
/// private constant in `machine::figures`.
const LBM_BW_EFF: f64 = 20.5 / 22.0;

/// Largest `points × steps` product the cachesim replay will simulate;
/// beyond this the replay is skipped and the cachesim counters are
/// absent from the registry.
pub const CACHESIM_MAX_POINT_STEPS: u64 = 1 << 24;

/// An ordered collection of named f64 counters.
///
/// Insertion order is preserved through JSON round-trips (the writer in
/// [`crate::json`] keeps object order), so reports stay diffable.
/// Non-finite values serialize as `null` and read back as NaN.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterRegistry {
    entries: Vec<(String, f64)>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value in place.
    pub fn set(&mut self, name: &str, value: f64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.entries.push((name.to_string(), value)),
        }
    }

    /// Looks up a counter by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Iterates counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to a JSON object in insertion order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(n, v)| (n.clone(), Json::num(*v)))
                .collect(),
        )
    }

    /// Reads a registry back from a JSON object; `null` values become NaN.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let Json::Obj(fields) = v else {
            return Err("counters: expected an object".into());
        };
        let mut reg = Self::new();
        for (name, val) in fields {
            let num = match val {
                Json::Null => f64::NAN,
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("counter '{name}': expected a number or null"))?,
            };
            reg.entries.push((name.clone(), num));
        }
        Ok(reg)
    }
}

/// The telemetry block attached to one bench entry in schema v2.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// Reference machine the roofline counters were evaluated on.
    pub machine: String,
    /// Named counters (attainment, κ, DRAM bytes, …).
    pub counters: CounterRegistry,
    /// Barrier-wait histogram of the last timed repetition, when the
    /// variant ran instrumented.
    pub wait_hist: Option<WaitHistogram>,
}

impl Telemetry {
    /// Serializes the block.
    pub fn to_json(&self) -> Json {
        let hist = match &self.wait_hist {
            Some(h) => Json::Arr(h.counts.iter().map(|&c| Json::num(c as f64)).collect()),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("machine".into(), Json::str(&self.machine)),
            ("counters".into(), self.counters.to_json()),
            ("barrier_wait_hist".into(), hist),
        ])
    }

    /// Reads a block back, rejecting missing fields by name.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let machine = v
            .get("machine")
            .and_then(Json::as_str)
            .ok_or("telemetry: missing string field 'machine'")?
            .to_string();
        let counters = CounterRegistry::from_json(
            v.get("counters")
                .ok_or("telemetry: missing field 'counters'")?,
        )?;
        let wait_hist = match v
            .get("barrier_wait_hist")
            .ok_or("telemetry: missing field 'barrier_wait_hist'")?
        {
            Json::Null => None,
            Json::Arr(items) => {
                if items.len() != WAIT_HIST_BUCKETS {
                    return Err(format!(
                        "telemetry: 'barrier_wait_hist' must have {WAIT_HIST_BUCKETS} buckets, \
                         got {}",
                        items.len()
                    ));
                }
                let mut h = WaitHistogram::default();
                for (i, item) in items.iter().enumerate() {
                    h.counts[i] = item
                        .as_u64()
                        .ok_or("telemetry: 'barrier_wait_hist' entries must be integers")?;
                }
                Some(h)
            }
            _ => return Err("telemetry: 'barrier_wait_hist' must be an array or null".into()),
        };
        Ok(Self {
            machine,
            counters,
            wait_hist,
        })
    }
}

fn kappa_stencil_35d(tile: usize, dim_t: usize, r: usize, nx: usize, ny: usize) -> f64 {
    if tile >= nx && tile >= ny {
        // Whole-plane tiles clamp their ghost regions at the grid
        // boundary: nothing is recomputed, κ = 1 exactly.
        return 1.0;
    }
    let loaded = tile + 2 * r * dim_t;
    kappa_35d(r, dim_t, loaded, loaded)
}

/// Rebuilds the roofline scenario for one stencil bench variant, using
/// the same per-variant byte/op multipliers as `machine::figures`.
pub fn stencil_scenario(
    m: &Machine,
    p: Precision,
    variant: &'static str,
    dim: Dim3,
    tile: usize,
    dim_t: usize,
) -> Scenario {
    let k = seven_point_traffic();
    let r = k.radius;
    let points = dim.nx * dim.ny * dim.nz;
    // Both grids in the LLC → nothing is bandwidth bound (§VII-A).
    let in_cache = 2 * points * p.elem_bytes() <= 2 * m.fast_storage_bytes;
    let base_bytes = if in_cache {
        0.0
    } else {
        k.blocked_bytes_per_update(p)
    };
    let ops = k.ops_per_update as f64;
    let (bytes_per_update, ops_per_update) = match variant {
        // Roofline ops are post-SIMD-division; scalar forfeits the lanes.
        "scalar" => (base_bytes, ops * m.simd_width_sp as f64),
        "temporal only" => {
            // dim_T rings of full XY planes must fit in cache (§VII-B).
            let ring_bytes = dim_t * 4 * dim.nx * dim.ny * k.elem_bytes(p);
            let gain = if ring_bytes <= m.fast_storage_bytes {
                dim_t as f64
            } else {
                1.0
            };
            (base_bytes / gain, ops)
        }
        "4D blocking" => {
            let kappa = kappa_4d(r, dim_t, tile, tile, tile);
            (base_bytes * kappa / dim_t as f64, ops * kappa)
        }
        "3.5D blocking" | "tile 3.5D" => {
            let kappa = kappa_stencil_35d(tile, dim_t, r, dim.nx, dim.ny);
            (base_bytes * kappa / dim_t as f64, ops * kappa)
        }
        // "simd no-blocking", "3D blocking", "spatial only": ideal spatial
        // reuse, no temporal gain, no ghost recomputation.
        _ => (base_bytes, ops),
    };
    Scenario {
        label: variant,
        bytes_per_update,
        ops_per_update,
        alu_eff: CPU_ALU_EFF,
        bw_eff: 1.0,
    }
}

/// Rebuilds the roofline scenario for one LBM bench variant.
pub fn lbm_scenario(
    m: &Machine,
    p: Precision,
    variant: &'static str,
    n: usize,
    tile: usize,
    dim_t: usize,
) -> Scenario {
    let k = lbm_traffic();
    let bytes = k.blocked_bytes_per_update(p);
    let ops = k.ops_per_update as f64;
    let (bytes_per_update, ops_per_update) = match variant {
        "scalar no-blocking" => (bytes, ops * m.simd_width_sp as f64),
        "temporal only" => {
            let ring_bytes = dim_t * 4 * n * n * k.elem_bytes(p);
            let gain = if ring_bytes <= m.fast_storage_bytes {
                dim_t as f64
            } else {
                1.0
            };
            (bytes / gain, ops)
        }
        "3.5D blocking" => {
            let kappa = kappa_stencil_35d(tile, dim_t, k.radius, n, n);
            (bytes * kappa / dim_t as f64, ops * kappa)
        }
        _ => (bytes, ops), // "simd no-blocking"
    };
    Scenario {
        label: variant,
        bytes_per_update,
        ops_per_update,
        alu_eff: CPU_ALU_EFF,
        bw_eff: LBM_BW_EFF,
    }
}

fn roofline_counters(
    reg: &mut CounterRegistry,
    m: &Machine,
    p: Precision,
    s: &Scenario,
    mups: f64,
) {
    let pred = predict(m, p, s);
    reg.set("mups_measured", mups);
    reg.set("mups_roofline", pred.mups);
    reg.set(
        "roofline_attainment_pct",
        if pred.mups > 0.0 {
            100.0 * mups / pred.mups
        } else {
            0.0
        },
    );
    reg.set(
        "roofline_bound_compute",
        match pred.bound {
            Bound::Compute => 1.0,
            Bound::Bandwidth => 0.0,
        },
    );
}

/// Builds the telemetry block for a measured 7-point stencil variant.
pub fn stencil_telemetry(
    p: Precision,
    meas: &Measurement,
    dim: Dim3,
    steps: usize,
    tile: usize,
    dim_t: usize,
) -> Telemetry {
    let m = core_i7();
    let k = seven_point_traffic();
    let mut reg = CounterRegistry::new();
    let scenario = stencil_scenario(&m, p, meas.label, dim, tile, dim_t);
    roofline_counters(&mut reg, &m, p, &scenario, meas.mups);

    let kappa_model = match meas.label {
        "4D blocking" => kappa_4d(k.radius, dim_t, tile, tile, tile),
        "temporal only" | "3.5D blocking" | "tile 3.5D" => {
            kappa_stencil_35d(tile, dim_t, k.radius, dim.nx, dim.ny)
        }
        _ => 1.0,
    };
    reg.set("kappa_model", kappa_model);
    reg.set("kappa_measured", meas.kappa);
    let modeled = meas.stats.dram_bytes_read + meas.stats.dram_bytes_written;
    reg.set("modeled_dram_bytes", modeled as f64);

    let points = (dim.nx * dim.ny * dim.nz) as u64;
    if points.saturating_mul(steps as u64) <= CACHESIM_MAX_POINT_STEPS {
        let mut cache = CacheSim::llc(m.fast_storage_bytes);
        let elem = p.elem_bytes();
        let ss = k.streaming_stores;
        let res = match meas.label {
            "temporal only" => temporal_trace(dim, elem, steps, dim_t, ss, &mut cache),
            "4D blocking" | "3.5D blocking" | "tile 3.5D" => {
                blocked35d_trace(dim, elem, steps, tile, dim_t, ss, &mut cache)
            }
            _ => naive_sweep_trace(dim, elem, steps, ss, &mut cache),
        };
        reg.set(
            "cachesim_dram_bytes",
            res.stats.dram_bytes(res.line_bytes) as f64,
        );
        reg.set("cachesim_hit_rate", res.stats.hit_rate());
    }

    if let Some(share) = meas.barrier_share {
        reg.set("barrier_share", share);
    }
    Telemetry {
        machine: m.name.to_string(),
        counters: reg,
        wait_hist: meas.barrier_hist,
    }
}

/// Builds the telemetry block for a measured LBM variant. The cachesim
/// has no D3Q19 trace generator, so only modeled traffic is reported.
pub fn lbm_telemetry(
    p: Precision,
    meas: &Measurement,
    n: usize,
    tile: usize,
    dim_t: usize,
) -> Telemetry {
    let m = core_i7();
    let mut reg = CounterRegistry::new();
    let scenario = lbm_scenario(&m, p, meas.label, n, tile, dim_t);
    roofline_counters(&mut reg, &m, p, &scenario, meas.mups);
    reg.set("kappa_model", meas.kappa);
    reg.set("kappa_measured", meas.kappa);
    let modeled = meas.stats.dram_bytes_read + meas.stats.dram_bytes_written;
    reg.set("modeled_dram_bytes", modeled as f64);
    if let Some(share) = meas.barrier_share {
        reg.set("barrier_share", share);
    }
    Telemetry {
        machine: m.name.to_string(),
        counters: reg,
        wait_hist: meas.barrier_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn registry_preserves_order_and_round_trips() {
        let mut reg = CounterRegistry::new();
        reg.set("zeta", 1.5);
        reg.set("alpha", 2.0);
        reg.set("zeta", 3.0); // replaced in place, order kept
        reg.set("nan_counter", f64::NAN);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["zeta", "alpha", "nan_counter"]);
        assert_eq!(reg.get("zeta"), Some(3.0));

        let text = reg.to_json().to_string();
        let back = CounterRegistry::from_json(&Json::parse(&text).unwrap()).unwrap();
        let back_names: Vec<&str> = back.iter().map(|(n, _)| n).collect();
        assert_eq!(back_names, names);
        assert!(
            back.get("nan_counter").unwrap().is_nan(),
            "null reads as NaN"
        );
        assert_eq!(back.get("alpha"), Some(2.0));
    }

    #[test]
    fn telemetry_round_trips_with_and_without_histogram() {
        let mut h = WaitHistogram::default();
        h.record(2_000);
        h.record(70_000);
        let mut counters = CounterRegistry::new();
        counters.set("mups_measured", 123.0);
        let t = Telemetry {
            machine: "test machine".into(),
            counters,
            wait_hist: Some(h),
        };
        let back = Telemetry::from_json(&Json::parse(&t.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, t);

        let bare = Telemetry {
            machine: "m".into(),
            counters: CounterRegistry::new(),
            wait_hist: None,
        };
        let back =
            Telemetry::from_json(&Json::parse(&bare.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn telemetry_rejects_missing_and_malformed_fields() {
        let missing = Json::parse(r#"{"machine": "m", "counters": {}}"#).unwrap();
        assert!(Telemetry::from_json(&missing)
            .unwrap_err()
            .contains("barrier_wait_hist"));
        let short = Json::parse(r#"{"machine": "m", "counters": {}, "barrier_wait_hist": [1, 2]}"#)
            .unwrap();
        assert!(Telemetry::from_json(&short)
            .unwrap_err()
            .contains("buckets"));
        let bad_counter = Json::parse(
            r#"{"machine": "m", "counters": {"x": "oops"}, "barrier_wait_hist": null}"#,
        )
        .unwrap();
        assert!(Telemetry::from_json(&bad_counter)
            .unwrap_err()
            .contains("'x'"));
    }

    #[test]
    fn scenarios_mirror_figures_multipliers() {
        let m = core_i7();
        let p = Precision::Sp;
        let dim = Dim3::cube(256);
        // Out of cache: base bytes are the ideal 8 B/update.
        let no_block = stencil_scenario(&m, p, "simd no-blocking", dim, 64, 4);
        assert_eq!(no_block.bytes_per_update, 8.0);
        assert_eq!(no_block.ops_per_update, 16.0);
        // Scalar pays the SIMD width in ops.
        let scalar = stencil_scenario(&m, p, "scalar", dim, 64, 4);
        assert_eq!(scalar.ops_per_update, 16.0 * m.simd_width_sp as f64);
        // 3.5-D divides bytes by dim_T and inflates both sides by κ.
        let dim_t = 4;
        let kappa = kappa_stencil_35d(64, dim_t, 1, 256, 256);
        let blocked = stencil_scenario(&m, p, "3.5D blocking", dim, 64, dim_t);
        assert!((blocked.bytes_per_update - 8.0 * kappa / dim_t as f64).abs() < 1e-12);
        assert!((blocked.ops_per_update - 16.0 * kappa).abs() < 1e-12);
        // In-cache grids have zero base bytes → compute bound.
        let small = stencil_scenario(&m, p, "simd no-blocking", Dim3::cube(64), 64, 4);
        assert_eq!(small.bytes_per_update, 0.0);
    }

    #[test]
    fn stencil_telemetry_reports_attainment_and_cachesim_traffic() {
        let dim = Dim3::cube(32);
        let meas = Measurement::synthetic("3.5D blocking", 100.0);
        let t = stencil_telemetry(Precision::Sp, &meas, dim, 2, 16, 2);
        let roof = t.counters.get("mups_roofline").unwrap();
        assert!(roof > 0.0);
        let att = t.counters.get("roofline_attainment_pct").unwrap();
        assert!((att - 100.0 * 100.0 / roof).abs() < 1e-9);
        // 32³×2 steps is far below the cap → cachesim counters present.
        assert!(t.counters.get("cachesim_dram_bytes").unwrap() > 0.0);
        let hr = t.counters.get("cachesim_hit_rate").unwrap();
        assert!((0.0..=1.0).contains(&hr));
        assert_eq!(t.machine, core_i7().name);
    }

    #[test]
    fn cachesim_replay_is_skipped_above_the_cap() {
        let dim = Dim3::cube(512); // 512³ × 4 steps ≫ 2^24
        let meas = Measurement::synthetic("3.5D blocking", 100.0);
        let t = stencil_telemetry(Precision::Sp, &meas, dim, 4, 64, 4);
        assert!(t.counters.get("cachesim_dram_bytes").is_none());
        assert!(t.counters.get("mups_roofline").is_some());
    }

    #[test]
    fn lbm_telemetry_has_roofline_but_no_cachesim() {
        let meas = Measurement::synthetic("3.5D blocking", 50.0);
        let t = lbm_telemetry(Precision::Sp, &meas, 64, 32, 2);
        assert!(t.counters.get("mups_roofline").is_some());
        assert!(t.counters.get("cachesim_dram_bytes").is_none());
    }
}
