//! Regenerates **Figure 4(c)**: 7-point stencil on the GPU — no-blocking,
//! spatial (shared-memory) and 3.5-D blocking, SP and DP.
//!
//! Two independent reproductions are printed: the analytic roofline for
//! the GTX 285 (`model`) and the SIMT **simulator** actually executing the
//! kernels and counting coalesced transactions (`sim`, SP only — the
//! simulator models the SP datapath).
//!
//! ```text
//! cargo run --release -p threefive-bench --bin fig4c
//! ```

use threefive_gpu_sim::kernels::{
    naive_sweep, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive_gpu_sim::timing::throughput_gtx285;
use threefive_gpu_sim::Device;
use threefive_grid::{Dim3, Grid3};
use threefive_machine::figures::fig4c_rows;
use threefive_machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};

fn main() {
    let model = fig4c_rows();
    println!("\n== Figure 4(c): 7-point stencil on GPU (MUPS) ==");
    println!(
        "{:12} {:28} {:>9} {:>9}",
        "group", "variant", "model", "sim"
    );
    println!("{}", "-".repeat(62));

    // Simulator runs: one representative size (ratios are size-stable; the
    // simulator executes every lattice point functionally, so paper-size
    // 512^3 grids are left to THREEFIVE_FULL runs).
    let n = if threefive_bench::full_run() { 256 } else { 96 };
    let dim = Dim3::new(n, n / 2, 24);
    let dev = Device::gtx285();
    let k = SevenPointGpu {
        alpha: 0.4,
        beta: 0.1,
    };
    let grid = Grid3::from_fn(dim, |x, y, z| ((x + y * 2 + z * 3) % 11) as f32 * 0.2);

    let (_, s_naive) = naive_sweep(&dev, k, &grid, 2);
    let (_, s_spatial) = spatial_sweep(&dev, k, &grid, 2);
    let (_, s_35) = pipelined35_sweep(
        &dev,
        k,
        &grid,
        2,
        Pipe35Config {
            ty_loaded: 12,
            overhead_per_update: 1.0,
        },
    );
    let sims = [
        ("no blocking", throughput_gtx285(&s_naive, GPU_ALU_EFF).mups),
        (
            "spatial (shared mem)",
            throughput_gtx285(&s_spatial, GPU_ALU_EFF).mups,
        ),
        (
            "3.5D blocking",
            throughput_gtx285(&s_35, GPU_ALU_EFF_TUNED).mups,
        ),
    ];

    for group_prefix in ["SP", "DP"] {
        for size in [64usize, 256, 512] {
            let group = format!("{group_prefix} {size}^3");
            for row in model.iter().filter(|r| r.group == group) {
                let sim = if group_prefix == "SP" {
                    sims.iter()
                        .find(|(l, _)| *l == row.variant)
                        .map(|(_, m)| *m)
                } else {
                    None
                };
                let sim_s = sim.map_or("      -".into(), |m| format!("{m:7.0}"));
                println!(
                    "{group:12} {:28} {:>9.0} {:>9}",
                    row.variant, row.mups, sim_s
                );
            }
        }
    }
    println!(
        "\nmodel = GTX 285 roofline; sim = SIMT simulator on a {dim} grid \
         (functional execution + coalescing-counted traffic). Shape: spatial \
         ~2.8X over naive, 3.5-D another ~1.8X for SP; DP is compute bound \
         after spatial blocking, so temporal blocking is skipped (paper §VII-A)."
    );
}
