//! Regenerates **Figure 5(b)**: the GPU 7-point SP optimization breakdown
//! — naive → spatial → 4-D → 3.5-D → +unroll → +multi-update — from both
//! the roofline model and the SIMT simulator.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin fig5b
//! ```

use threefive_bench::full_run;
use threefive_gpu_sim::kernels::{
    naive_sweep, pipelined35_sweep, spatial_sweep, Pipe35Config, SevenPointGpu,
};
use threefive_gpu_sim::timing::throughput_gtx285;
use threefive_gpu_sim::Device;
use threefive_grid::{Dim3, Grid3};
use threefive_machine::figures::fig5b_rows;
use threefive_machine::roofline::{GPU_ALU_EFF, GPU_ALU_EFF_TUNED};

fn main() {
    let model = fig5b_rows();
    println!("\n== Figure 5(b): GPU 7-point SP breakdown (MUPS) ==");
    println!(
        "{:30} {:>9} {:>9} {:>8}",
        "variant", "model", "sim", "paper"
    );
    println!("{}", "-".repeat(60));

    let n = if full_run() { 256 } else { 96 };
    let dim = Dim3::new(n, n / 2, 24);
    let dev = Device::gtx285();
    let k = SevenPointGpu {
        alpha: 0.4,
        beta: 0.1,
    };
    let grid = Grid3::from_fn(dim, |x, y, z| ((x * 3 + y + z * 7) % 13) as f32 * 0.1);

    let (_, s_naive) = naive_sweep(&dev, k, &grid, 2);
    let (_, s_spatial) = spatial_sweep(&dev, k, &grid, 2);
    let base = Pipe35Config {
        ty_loaded: 12,
        overhead_per_update: 6.0,
    };
    let unrolled = Pipe35Config {
        overhead_per_update: 3.0,
        ..base
    };
    let multi = Pipe35Config {
        overhead_per_update: 1.0,
        ..base
    };
    let (_, s_35) = pipelined35_sweep(&dev, k, &grid, 2, base);
    let (_, s_unroll) = pipelined35_sweep(&dev, k, &grid, 2, unrolled);
    let (_, s_multi) = pipelined35_sweep(&dev, k, &grid, 2, multi);

    let sims: [(&str, Option<f64>, f64); 6] = [
        (
            "naive (global memory)",
            Some(throughput_gtx285(&s_naive, GPU_ALU_EFF).mups),
            3300.0,
        ),
        (
            "spatial (shared mem)",
            Some(throughput_gtx285(&s_spatial, GPU_ALU_EFF).mups),
            9234.0,
        ),
        ("4D blocking", None, 9700.0),
        (
            "3.5D blocking",
            Some(throughput_gtx285(&s_35, GPU_ALU_EFF).mups),
            13252.0,
        ),
        (
            "+ loop unrolling",
            Some(throughput_gtx285(&s_unroll, (GPU_ALU_EFF + GPU_ALU_EFF_TUNED) / 2.0).mups),
            14345.0,
        ),
        (
            "+ multi-update per thread",
            Some(throughput_gtx285(&s_multi, GPU_ALU_EFF_TUNED).mups),
            17115.0,
        ),
    ];
    for (label, sim, paper) in sims {
        let model_mups = model
            .iter()
            .find(|r| r.variant == label)
            .map_or(f64::NAN, |r| r.mups);
        let sim_s = sim.map_or("      -".into(), |m| format!("{m:7.0}"));
        println!("{label:30} {model_mups:>9.0} {sim_s:>9} {paper:>8.0}");
    }
    println!(
        "\nsim executes the kernels on a {dim} grid; 4-D is modeled only \
         (the paper itself reports it as a 5% strawman). Shape to check: \
         the big jumps are spatial blocking (bandwidth) and 3.5-D \
         (temporal); the last two bars are per-thread overhead amortization."
    );
}
