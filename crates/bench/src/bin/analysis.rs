//! Regenerates the paper's analytic parameter tables: the §V-A κ
//! comparison (3-D vs 2.5-D blocking), the §VI blocking-parameter choices
//! for every kernel × machine × precision, and the §VI 4-D overhead
//! comparison.
//!
//! ```text
//! cargo run -p threefive-bench --bin analysis
//! ```

use threefive_core::planner::{
    dim_25d_max, dim_3d_max, dim_4d_max, kappa_25d, kappa_35d, kappa_3d, kappa_4d, plan_35d,
};
use threefive_machine::{core_i7, gtx285, lbm_traffic, seven_point_traffic, Precision};

fn main() {
    println!("== §V-A: 3-D vs 2.5-D spatial overestimation (same cache budget) ==\n");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>8} {:>10}",
        "R/dim3D", "dim3D", "κ 3D", "dim2.5D", "κ 2.5D", "reduction"
    );
    let budget = 1_000_000usize; // 𝒞/ℰ giving dim3D = 100
    for r in [10usize, 20] {
        let d3 = dim_3d_max(budget, 1);
        let k3 = kappa_3d(r, d3, d3, d3);
        let d25 = dim_25d_max(budget, 1, r);
        let k25 = kappa_25d(r, d25, d25);
        println!(
            "{:>9}% {:>8} {:>8.2} {:>10} {:>8.2} {:>9.1}x",
            r,
            d3,
            k3,
            d25,
            k25,
            k3 / k25
        );
    }

    println!("\n== §VI: 3.5-D blocking parameters (planner output) ==\n");
    println!(
        "{:34} {:>6} {:>8} {:>8} {:>10}",
        "kernel @ machine", "dim_T", "dim_XY", "kappa", "buffer KB"
    );
    let cases = [
        (
            "7-point SP @ Core i7",
            seven_point_traffic(),
            core_i7(),
            Precision::Sp,
            None,
        ),
        (
            "7-point DP @ Core i7",
            seven_point_traffic(),
            core_i7(),
            Precision::Dp,
            None,
        ),
        // The paper evaluates LBM's Eq. 3 at γ/Γ ≈ 2.9 (§VI-B).
        (
            "LBM SP @ Core i7",
            lbm_traffic(),
            core_i7(),
            Precision::Sp,
            Some(2.9),
        ),
        (
            "LBM DP @ Core i7",
            lbm_traffic(),
            core_i7(),
            Precision::Dp,
            Some(2.97),
        ),
    ];
    for (name, k, m, p, ratio_override) in cases {
        let gamma = ratio_override.map_or(k.gamma(p), |r| r * m.big_gamma(p));
        match plan_35d(
            gamma,
            m.big_gamma(p),
            m.fast_storage_bytes,
            k.elem_bytes(p),
            k.radius,
        ) {
            Ok(plan) => println!(
                "{:34} {:>6} {:>8} {:>8.3} {:>10.0}",
                name,
                plan.dim_t,
                plan.dim_xy,
                plan.kappa,
                plan.buffer_bytes as f64 / 1024.0
            ),
            Err(e) => println!("{name:34} -> {e}"),
        }
    }
    // GPU 7-point: warp-constrained dims (§VI-A GPU).
    println!(
        "{:34} {:>6} {:>8} {:>8.3} {:>10}",
        "7-point SP @ GTX 285 (warp dims)",
        2,
        32,
        kappa_35d(1, 2, 32, 32),
        "regs"
    );
    // GPU LBM: infeasible on 16 KB shared memory (§VI-B).
    let gpu = gtx285();
    match plan_35d(
        lbm_traffic().gamma(Precision::Sp),
        gpu.usable_gamma(Precision::Sp),
        gpu.fast_storage_bytes,
        2 * lbm_traffic().elem_bytes(Precision::Sp), // double-buffered lattice
        1,
    ) {
        Ok(p) => println!("LBM SP @ GTX 285: unexpectedly feasible: {p:?}"),
        Err(e) => println!("{:34} -> {e}", "LBM SP @ GTX 285"),
    }

    println!("\n== §VI: 4-D blocking overhead vs 3.5-D ==\n");
    println!(
        "{:24} {:>8} {:>8} {:>10} {:>10}",
        "kernel", "dim 4D", "κ 4D", "κ 3.5D", "paper 4D"
    );
    let c = core_i7().fast_storage_bytes;
    let rows = [
        ("7-point SP", 4usize, 2usize, 360usize, 1.18),
        ("7-point DP", 8, 2, 256, 1.21),
        ("LBM SP", 80, 3, 64, 2.03),
        ("LBM DP", 160, 3, 44, 2.71),
    ];
    for (name, e, dim_t, d35, paper) in rows {
        let d4 = dim_4d_max(c, e);
        let k4 = kappa_4d(1, dim_t, d4, d4, d4);
        let k35 = kappa_35d(1, dim_t, d35, d35);
        println!(
            "{:24} {:>8} {:>8.2} {:>10.2} {:>10.2}",
            name, d4, k4, k35, paper
        );
    }
}
