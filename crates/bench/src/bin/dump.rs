//! Dumps every figure's model rows as CSV files under `results/`, ready
//! for plotting (gnuplot, matplotlib, spreadsheets).
//!
//! ```text
//! cargo run -p threefive-bench --bin dump [-- <outdir>]
//! ```

use std::fs;
use std::io::Write;
use std::path::Path;

use threefive_machine::figures::{
    comparisons, fig4a_rows, fig4b_rows, fig4c_rows, fig5a_rows, fig5b_rows, FigRow,
};
use threefive_machine::Bound;

fn main() -> std::io::Result<()> {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    fs::create_dir_all(&outdir)?;

    let figures: [(&str, Vec<FigRow>); 5] = [
        ("fig4a_lbm_cpu", fig4a_rows()),
        ("fig4b_7pt_cpu", fig4b_rows()),
        ("fig4c_7pt_gpu", fig4c_rows()),
        ("fig5a_lbm_breakdown", fig5a_rows()),
        ("fig5b_gpu_breakdown", fig5b_rows()),
    ];
    for (name, rows) in figures {
        let path = Path::new(&outdir).join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "group,variant,model_mups,bound")?;
        for r in &rows {
            writeln!(
                f,
                "{},{},{:.1},{}",
                r.group,
                r.variant,
                r.mups,
                match r.bound {
                    Bound::Compute => "compute",
                    Bound::Bandwidth => "bandwidth",
                }
            )?;
        }
        println!("wrote {} ({} rows)", path.display(), rows.len());
    }

    let path = Path::new(&outdir).join("comparisons.csv");
    let mut f = fs::File::create(&path)?;
    writeln!(f, "comparison,paper_speedup,model_speedup")?;
    for c in comparisons() {
        writeln!(
            f,
            "\"{}\",{:.2},{:.2}",
            c.what, c.paper_speedup, c.model_speedup
        )?;
    }
    println!("wrote {}", path.display());
    Ok(())
}
