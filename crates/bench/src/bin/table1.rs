//! Regenerates **Table I** (peak bandwidth, peak compute, bytes/op) and
//! the §IV kernel bytes/op analysis.
//!
//! ```text
//! cargo run -p threefive-bench --bin table1
//! ```

use threefive_machine::{
    core_i7, gtx285, lbm_traffic, seven_point_traffic, twenty_seven_point_traffic, Machine,
    Precision,
};

fn main() {
    println!("== Table I: peak bandwidth, peak compute, bytes/op ==\n");
    println!(
        "{:28} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "platform", "BW GB/s", "SP Gops", "DP Gops", "B/op SP", "B/op DP"
    );
    for m in [core_i7(), gtx285()] {
        println!(
            "{:28} {:>8.0} {:>9.0} {:>9.0} {:>9.2} {:>9.2}",
            m.name,
            m.peak_bw_gbs,
            m.peak_gops_sp,
            m.peak_gops_dp,
            m.big_gamma(Precision::Sp),
            m.big_gamma(Precision::Dp),
        );
    }
    println!(
        "\nGTX 285 usable bytes/op (no SFU, few madds — §III-E): SP {:.2}, DP {:.2}",
        gtx285().usable_gamma(Precision::Sp),
        gtx285().usable_gamma(Precision::Dp),
    );

    println!("\n== §IV kernel analysis: ops/update and bytes/op ==\n");
    println!(
        "{:20} {:>10} {:>12} {:>10} {:>10}",
        "kernel", "ops/update", "blocked B SP", "gamma SP", "gamma DP"
    );
    for k in [
        seven_point_traffic(),
        twenty_seven_point_traffic(),
        lbm_traffic(),
    ] {
        println!(
            "{:20} {:>10} {:>12.0} {:>10.2} {:>10.2}",
            k.name,
            k.ops_per_update,
            k.blocked_bytes_per_update(Precision::Sp),
            k.gamma(Precision::Sp),
            k.gamma(Precision::Dp),
        );
    }

    println!("\n== bandwidth- vs compute-bound matrix (γ > Γ ⇒ bandwidth bound) ==\n");
    let verdict = |m: &Machine, gamma: f64, p: Precision| {
        if gamma > m.big_gamma(p) {
            "bandwidth"
        } else {
            "compute"
        }
    };
    println!(
        "{:20} {:>14} {:>14} {:>14} {:>14}",
        "kernel", "i7 SP", "i7 DP", "GTX285 SP", "GTX285 DP"
    );
    for k in [
        seven_point_traffic(),
        twenty_seven_point_traffic(),
        lbm_traffic(),
    ] {
        let cpu = core_i7();
        let gpu = gtx285();
        println!(
            "{:20} {:>14} {:>14} {:>14} {:>14}",
            k.name,
            verdict(&cpu, k.gamma(Precision::Sp), Precision::Sp),
            verdict(&cpu, k.gamma(Precision::Dp), Precision::Dp),
            verdict(&gpu, k.gamma(Precision::Sp), Precision::Sp),
            verdict(&gpu, k.gamma(Precision::Dp), Precision::Dp),
        );
    }
}
