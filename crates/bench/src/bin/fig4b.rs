//! Regenerates **Figure 4(b)**: 7-point stencil on the CPU — no-blocking,
//! spatial-only and 3.5-D blocking, SP and DP, across grid sizes.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin fig4b
//! THREEFIVE_FULL=1 cargo run --release -p threefive-bench --bin fig4b
//! ```

use threefive_bench::{
    grid_edges, host_threads, measure_seven_point, print_header, print_row, BenchConfig,
};
use threefive_machine::figures::fig4b_rows;
use threefive_sync::ThreadTeam;

fn main() {
    let model = fig4b_rows();
    let team = ThreadTeam::new(host_threads());
    let cfg = BenchConfig::quick();
    print_header("Figure 4(b): 7-point stencil on CPU (MUPS)");
    for (prec, is_sp) in [("SP", true), ("DP", false)] {
        let (tile, dim_t) = if is_sp { (360, 2) } else { (256, 2) };
        for n in grid_edges() {
            let group = format!("{prec} {n}^3");
            let steps = if n >= 256 { 4 } else { 8 };
            for (variant, model_label) in [
                ("simd no-blocking", Some("no blocking")),
                ("spatial only", Some("spatial only (2.5D)")),
                ("3.5D blocking", Some("3.5D blocking")),
            ] {
                let host = if is_sp {
                    measure_seven_point::<f32>(
                        &cfg,
                        variant,
                        threefive_grid::Dim3::cube(n),
                        steps,
                        tile,
                        dim_t,
                        Some(&team),
                    )
                } else {
                    measure_seven_point::<f64>(
                        &cfg,
                        variant,
                        threefive_grid::Dim3::cube(n),
                        steps,
                        tile,
                        dim_t,
                        Some(&team),
                    )
                }
                .expect("valid blocking");
                let model_mups = model_label.and_then(|ml| {
                    let mg = group.replace("128", "256");
                    model
                        .iter()
                        .find(|r| r.group == mg && r.variant == ml)
                        .map(|r| r.mups)
                });
                print_row(&group, variant, model_mups, Some(host.mups));
            }
        }
    }
    println!(
        "\nmodel = roofline for the paper's Core i7; host = this machine \
         ({} threads). Shape: blocking does not help the cache-resident 64^3 \
         case; on large grids 3.5-D converts the bandwidth-bound sweep into \
         a compute-bound one (~1.4-1.5X).",
        host_threads()
    );
}
