//! The paper's §VIII discussion, quantified: as the machine
//! bytes-per-op ratio Γ keeps falling (compute grows faster than
//! bandwidth — Westmere and beyond), 3.5-D blocking needs ever larger
//! temporal factors and proportionally larger caches. Also checks the
//! §VIII Fermi prediction: 48 KB of shared memory makes LBM SP blocking
//! feasible where the GTX 285's 16 KB could not.
//!
//! ```text
//! cargo run -p threefive-bench --bin trend
//! ```

use threefive_core::planner::{kappa_35d, plan_35d, plan_35d_forced};
use threefive_machine::{fermi, gtx285, lbm_traffic, seven_point_traffic, Precision};

fn main() {
    println!("\n== §VIII: the falling-Γ trend (7-point SP, 𝒞 = 4 MB) ==\n");
    println!(
        "{:>10} {:>7} {:>8} {:>8} {:>12} {:>14}",
        "Γ (B/op)", "dim_T", "dim_XY", "kappa", "buffer MB", "eff. γ vs Γ"
    );
    let k = seven_point_traffic();
    let gamma = k.gamma(Precision::Sp); // 0.5
    for big_gamma in [0.29, 0.20, 0.15, 0.10, 0.07, 0.05] {
        match plan_35d(gamma, big_gamma, 4 << 20, 4, 1) {
            Ok(p) => println!(
                "{:>10.2} {:>7} {:>8} {:>8.3} {:>12.2} {:>8.3} ≤ {:>4.2}",
                big_gamma,
                p.dim_t,
                p.dim_xy,
                p.kappa,
                p.buffer_bytes as f64 / (1 << 20) as f64,
                p.effective_gamma,
                big_gamma,
            ),
            Err(e) => println!("{big_gamma:>10.2}  -> {e}"),
        }
    }
    println!(
        "\ndim_T grows as ⌈γ/Γ⌉ while the tile shrinks as 1/√dim_T — κ rises, \
         so future machines need proportionally larger caches (the paper's \
         closing argument)."
    );

    println!("\n== §VIII: LBM SP blocking across GPU generations (dim_T = 2) ==\n");
    let lbm = lbm_traffic();
    for m in [gtx285(), fermi()] {
        // §VI-B asks the minimum question: does even dim_T = 2 fit?
        let result = plan_35d_forced(
            lbm.gamma(Precision::Sp),
            2,
            m.fast_storage_bytes,
            2 * lbm.elem_bytes(Precision::Sp), // double-buffered lattice
            1,
        );
        match result {
            Ok(p) => println!(
                "{:32} feasible: dim_T = {}, tile = {}, kappa = {:.2} (bw gain {:.2}x)",
                m.name,
                p.dim_t,
                p.dim_xy,
                p.kappa,
                p.dim_t as f64 / p.kappa
            ),
            Err(e) => println!("{:32} {e}", m.name),
        }
    }
    println!(
        "\nGTX 285's 16 KB cannot block LBM even at dim_T = 2 (§VI-B); a \
         Fermi-class cache crosses the threshold — the §VIII prediction."
    );

    println!("\n== deeper temporal blocking is not free: κ at fixed tile ==\n");
    println!("{:>7} {:>10} {:>10}", "dim_T", "κ (64²)", "κ (360²)");
    for dim_t in 1..=8 {
        println!(
            "{:>7} {:>10.2} {:>10.2}",
            dim_t,
            kappa_35d(1, dim_t, 64, 64),
            kappa_35d(1, dim_t, 360, 360)
        );
    }
}
