//! Regenerates the **§VII-D comparison**: the paper's headline speedups
//! of 3.5-D blocking over the best unblocked implementations, next to the
//! model's predictions and a host measurement of the same ratio.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin compare
//! ```

use threefive_bench::{full_run, host_threads, measure_lbm, measure_seven_point, BenchConfig};
use threefive_grid::Dim3;
use threefive_machine::figures::comparisons;
use threefive_sync::ThreadTeam;

fn main() {
    println!("\n== §VII-D: 3.5-D speedups — paper vs model vs host ==\n");
    println!(
        "{:52} {:>7} {:>7} {:>7}",
        "comparison", "paper", "model", "host"
    );
    println!("{}", "-".repeat(78));

    let team = ThreadTeam::new(host_threads());
    let cfg = BenchConfig::quick();
    let n = if full_run() { 512 } else { 128 };
    let nl = if full_run() { 256 } else { 96 };

    // Host ratios for the comparisons we can measure directly.
    let host_7pt_sp = {
        let base = measure_seven_point::<f32>(
            &cfg,
            "simd no-blocking",
            Dim3::cube(n),
            4,
            360,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        let b35 = measure_seven_point::<f32>(
            &cfg,
            "3.5D blocking",
            Dim3::cube(n),
            4,
            360,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_7pt_dp = {
        let base = measure_seven_point::<f64>(
            &cfg,
            "simd no-blocking",
            Dim3::cube(n),
            4,
            256,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        let b35 = measure_seven_point::<f64>(
            &cfg,
            "3.5D blocking",
            Dim3::cube(n),
            4,
            256,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_lbm_sp = {
        let base = measure_lbm::<f32>(&cfg, "simd no-blocking", nl, 3, 64, 3, Some(&team))
            .expect("valid blocking");
        let b35 = measure_lbm::<f32>(&cfg, "3.5D blocking", nl, 3, 64, 3, Some(&team))
            .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_lbm_dp = {
        let base = measure_lbm::<f64>(&cfg, "simd no-blocking", nl, 3, 44, 3, Some(&team))
            .expect("valid blocking");
        let b35 = measure_lbm::<f64>(&cfg, "3.5D blocking", nl, 3, 44, 3, Some(&team))
            .expect("valid blocking");
        b35.mups / base.mups
    };

    let hosts = [
        Some(host_7pt_sp),
        Some(host_7pt_dp),
        Some(host_lbm_sp),
        Some(host_lbm_dp),
        None, // GPU comparison: no host GPU — simulator covers it (fig4c)
    ];
    for (c, host) in comparisons().iter().zip(hosts) {
        let host_s = host.map_or("      -".into(), |h| format!("{h:6.2}x"));
        println!(
            "{:52} {:>6.2}x {:>6.2}x {:>7}",
            c.what, c.paper_speedup, c.model_speedup, host_s
        );
    }
    println!(
        "\nHost ratios depend on this machine's cache/bandwidth balance \
         (grids: {n}^3 stencil, {nl}^3 LBM; THREEFIVE_FULL=1 for paper sizes). \
         The model column should track the paper within ~25%."
    );
}
