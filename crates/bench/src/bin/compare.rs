//! Regenerates the **§VII-D comparison**: the paper's headline speedups
//! of 3.5-D blocking over the best unblocked implementations, next to the
//! model's predictions and a host measurement of the same ratio.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin compare
//! ```
//!
//! With `--baseline` and `--current` it instead runs the **regression
//! gate**: the two BENCH reports are diffed entry-by-entry and the
//! process exits nonzero when any baseline entry lost more throughput
//! than the threshold allows (or disappeared entirely):
//!
//! ```text
//! compare --baseline results/BENCH_stencil_baseline.json \
//!         --current BENCH_stencil.json [--min-ratio 0.5] [--cross-host]
//! ```
//!
//! The gate refuses to compare reports from different host fingerprints
//! unless `--cross-host` is given (ratios across machines are noise).

use std::process::ExitCode;

use threefive_bench::gate::{gate_reports, GateThresholds};
use threefive_bench::report::BenchReport;
use threefive_bench::{full_run, host_threads, measure_lbm, measure_seven_point, BenchConfig};
use threefive_grid::Dim3;
use threefive_machine::figures::comparisons;
use threefive_sync::ThreadTeam;

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::validate_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses gate-mode flags; `None` means legacy §VII-D mode.
fn parse_gate_args(args: &[String]) -> Result<Option<(String, String, GateThresholds)>, String> {
    if args.is_empty() {
        return Ok(None);
    }
    let mut baseline = None;
    let mut current = None;
    let mut t = GateThresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--min-ratio" => {
                t.min_mups_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?;
            }
            "--max-barrier-growth" => {
                t.max_barrier_share_increase = value("--max-barrier-growth")?
                    .parse()
                    .map_err(|e| format!("--max-barrier-growth: {e}"))?;
            }
            "--cross-host" => t.require_same_host = false,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    match (baseline, current) {
        (Some(b), Some(c)) => Ok(Some((b, c, t))),
        _ => Err("gate mode needs both --baseline and --current".into()),
    }
}

fn run_gate(baseline_path: &str, current_path: &str, t: &GateThresholds) -> ExitCode {
    let pair = load_report(baseline_path).and_then(|b| Ok((b, load_report(current_path)?)));
    let (baseline, current) = match pair {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match gate_reports(&baseline, &current, t) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== regression gate: {} vs {} (min ratio {:.2}, max barrier growth {:.2}) ==",
        current_path, baseline_path, t.min_mups_ratio, t.max_barrier_share_increase
    );
    for f in &outcome.findings {
        let ratio = f.ratio.map_or("    -".into(), |r| format!("{r:5.2}"));
        let status = match &f.failure {
            Some(why) => format!("FAIL  {why}"),
            None => "ok".into(),
        };
        println!("{ratio}x  {:60} {status}", f.key);
    }
    let failures = outcome.failures().count();
    if failures > 0 {
        eprintln!(
            "gate FAILED: {failures} of {} entries",
            outcome.findings.len()
        );
        ExitCode::FAILURE
    } else {
        println!("gate passed: {} entries", outcome.findings.len());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_gate_args(&args) {
        Ok(Some((baseline, current, t))) => return run_gate(&baseline, &current, &t),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: compare [--baseline FILE --current FILE \
                 [--min-ratio R] [--max-barrier-growth G] [--cross-host]]"
            );
            return ExitCode::FAILURE;
        }
    }
    println!("\n== §VII-D: 3.5-D speedups — paper vs model vs host ==\n");
    println!(
        "{:52} {:>7} {:>7} {:>7}",
        "comparison", "paper", "model", "host"
    );
    println!("{}", "-".repeat(78));

    let team = ThreadTeam::new(host_threads());
    let cfg = BenchConfig::quick();
    let n = if full_run() { 512 } else { 128 };
    let nl = if full_run() { 256 } else { 96 };

    // Host ratios for the comparisons we can measure directly.
    let host_7pt_sp = {
        let base = measure_seven_point::<f32>(
            &cfg,
            "simd no-blocking",
            Dim3::cube(n),
            4,
            360,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        let b35 = measure_seven_point::<f32>(
            &cfg,
            "3.5D blocking",
            Dim3::cube(n),
            4,
            360,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_7pt_dp = {
        let base = measure_seven_point::<f64>(
            &cfg,
            "simd no-blocking",
            Dim3::cube(n),
            4,
            256,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        let b35 = measure_seven_point::<f64>(
            &cfg,
            "3.5D blocking",
            Dim3::cube(n),
            4,
            256,
            2,
            Some(&team),
        )
        .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_lbm_sp = {
        let base = measure_lbm::<f32>(&cfg, "simd no-blocking", nl, 3, 64, 3, Some(&team))
            .expect("valid blocking");
        let b35 = measure_lbm::<f32>(&cfg, "3.5D blocking", nl, 3, 64, 3, Some(&team))
            .expect("valid blocking");
        b35.mups / base.mups
    };
    let host_lbm_dp = {
        let base = measure_lbm::<f64>(&cfg, "simd no-blocking", nl, 3, 44, 3, Some(&team))
            .expect("valid blocking");
        let b35 = measure_lbm::<f64>(&cfg, "3.5D blocking", nl, 3, 44, 3, Some(&team))
            .expect("valid blocking");
        b35.mups / base.mups
    };

    let hosts = [
        Some(host_7pt_sp),
        Some(host_7pt_dp),
        Some(host_lbm_sp),
        Some(host_lbm_dp),
        None, // GPU comparison: no host GPU — simulator covers it (fig4c)
    ];
    for (c, host) in comparisons().iter().zip(hosts) {
        let host_s = host.map_or("      -".into(), |h| format!("{h:6.2}x"));
        println!(
            "{:52} {:>6.2}x {:>6.2}x {:>7}",
            c.what, c.paper_speedup, c.model_speedup, host_s
        );
    }
    println!(
        "\nHost ratios depend on this machine's cache/bandwidth balance \
         (grids: {n}^3 stencil, {nl}^3 LBM; THREEFIVE_FULL=1 for paper sizes). \
         The model column should track the paper within ~25%."
    );
    ExitCode::SUCCESS
}
