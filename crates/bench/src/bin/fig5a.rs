//! Regenerates **Figure 5(a)**: the LBM CPU optimization breakdown —
//! parallel scalar → +SIMD → +spatial → 4-D → 3.5-D → +ILP.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin fig5a
//! ```

use threefive_bench::{full_run, host_threads, measure_lbm, print_header, print_row, BenchConfig};
use threefive_machine::figures::fig5a_rows;
use threefive_sync::ThreadTeam;

fn main() {
    let model = fig5a_rows();
    let team = ThreadTeam::new(host_threads());
    let cfg = BenchConfig::quick();
    let n = if full_run() { 256 } else { 96 };
    let steps = if full_run() { 3 } else { 6 };
    print_header(&format!(
        "Figure 5(a): LBM SP optimization breakdown (model: 256^3; host: {n}^3, MLUPS)"
    ));

    // Host ladder: the executors we can actually toggle. The paper's
    // "+spatial" bar is a no-op for LBM (no spatial reuse), and "+ILP" is
    // a compiler-level knob here, so those rows show model numbers only.
    let host_ladder: [(&str, Option<&'static str>); 6] = [
        ("parallel scalar, no blocking", Some("scalar no-blocking")),
        ("+ SIMD (4-wide SSE)", Some("simd no-blocking")),
        ("+ spatial blocking", None),
        ("4D blocking", None),
        ("3.5D blocking", Some("3.5D blocking")),
        ("+ ILP (unroll, prefetch)", None),
    ];
    for (model_label, host_variant) in host_ladder {
        let model_mups = model
            .iter()
            .find(|r| r.variant == model_label)
            .map(|r| r.mups);
        let host = host_variant.map(|v| {
            measure_lbm::<f32>(&cfg, v, n, steps, 64, 3, Some(&team))
                .expect("valid blocking")
                .mups
        });
        print_row("SP", model_label, model_mups, host);
    }
    println!(
        "\npaper bars: 52 -> 87 -> 87 -> 94 -> 157 -> 171 MLUPS. Shape to check: \
         SIMD alone is capped by bandwidth; spatial blocking buys nothing \
         (no reuse); 4-D's overestimation eats most of its gain; 3.5-D \
         delivers ~2X."
    );
}
