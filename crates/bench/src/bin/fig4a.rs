//! Regenerates **Figure 4(a)**: LBM on the CPU — no-blocking, temporal-only
//! and 3.5-D blocking, SP and DP, across grid sizes. Prints the machine-
//! model bars for the paper's Core i7 next to host measurements.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin fig4a        # reduced sizes
//! THREEFIVE_FULL=1 cargo run --release -p threefive-bench --bin fig4a
//! ```

use threefive_bench::{
    grid_edges, host_threads, measure_lbm, print_header, print_row, BenchConfig,
};
use threefive_machine::figures::fig4a_rows;
use threefive_sync::ThreadTeam;

fn main() {
    let model = fig4a_rows();
    let team = ThreadTeam::new(host_threads());
    let cfg = BenchConfig::quick();
    print_header("Figure 4(a): D3Q19 LBM on CPU (MLUPS)");
    for (prec, is_sp) in [("SP", true), ("DP", false)] {
        for n in grid_edges() {
            let group = format!("{prec} {n}^3");
            // Host: keep the work bounded — a few steps is enough for a
            // stable MLUPS number on streaming kernels.
            let steps = if n >= 256 { 3 } else { 6 };
            for (variant, dim_t) in [
                ("scalar no-blocking", 3usize),
                ("simd no-blocking", 3),
                ("temporal only", 3),
                ("3.5D blocking", 3),
            ] {
                let tile = if is_sp { 64 } else { 44 };
                let host = if is_sp {
                    measure_lbm::<f32>(&cfg, variant, n, steps, tile, dim_t, Some(&team))
                } else {
                    measure_lbm::<f64>(&cfg, variant, n, steps, tile, dim_t, Some(&team))
                }
                .expect("valid blocking");
                // The model ladder labels differ slightly (no scalar bar in
                // Fig 4a); match where possible.
                let model_label = match variant {
                    "scalar no-blocking" => None,
                    "simd no-blocking" => Some("no blocking"),
                    v => Some(v),
                };
                let model_mups = model_label.and_then(|ml| {
                    let mg = group.replace("128", "256"); // reduced-size proxy
                    model
                        .iter()
                        .find(|r| r.group == mg && r.variant == ml)
                        .map(|r| r.mups)
                });
                print_row(&group, variant, model_mups, Some(host.mups));
            }
        }
    }
    println!(
        "\nmodel = roofline for the paper's Core i7 (4C/3.2GHz, 22 GB/s); \
         host = this machine ({} threads). Shapes should match: temporal-only \
         helps only when plane rings fit in cache; 3.5-D wins ~2X.",
        host_threads()
    );
}
