//! Empirical validation of the paper's cache-capacity claims (Eq. 1 and
//! the §VII-A/B residency arguments) using the cache simulator: the
//! executors' exact access patterns are replayed through a set-associative
//! LRU cache and the measured DRAM traffic is compared with the planner's
//! κ/dim_T predictions.
//!
//! ```text
//! cargo run --release -p threefive-bench --bin cache_validation
//! ```

use threefive_cachesim::trace::{blocked35d_trace, naive_sweep_trace, temporal_trace};
use threefive_cachesim::CacheSim;
use threefive_core::planner::kappa_35d;
use threefive_grid::Dim3;

fn main() {
    const E: usize = 4; // f32
    println!("\n== Cache-simulator validation of Eq. 1 / traffic claims ==\n");
    println!(
        "{:44} {:>10} {:>10} {:>9}",
        "scenario", "naive B/pt", "blk B/pt", "gain"
    );
    println!("{}", "-".repeat(78));

    // 1. 3.5-D with resident rings at several dim_T.
    let n = 48usize;
    let tile = 24usize;
    let dim = Dim3::cube(n);
    for dim_t in [2usize, 3, 4] {
        let ring_bytes = (dim_t - 1) * 4 * (tile + 2 * dim_t).pow(2) * E;
        let cache_bytes = (8 * ring_bytes).next_power_of_two();
        let mut cb = CacheSim::llc(cache_bytes);
        let blocked = blocked35d_trace(dim, E, dim_t, tile, dim_t, true, &mut cb);
        let mut cn = CacheSim::llc(cache_bytes);
        let naive = naive_sweep_trace(dim, E, dim_t, true, &mut cn);
        let gain = naive.stats.dram_bytes(64) as f64 / blocked.stats.dram_bytes(64) as f64;
        let kappa = kappa_35d(1, dim_t, tile + 2 * dim_t, tile + 2 * dim_t);
        println!(
            "{:44} {:>10.1} {:>10.1} {:>8.2}x  (predicted {:.2}x)",
            format!("3.5D {n}^3 tile {tile} dim_T={dim_t}, rings fit"),
            naive.dram_bytes_per_point(),
            blocked.dram_bytes_per_point(),
            gain,
            dim_t as f64 / kappa,
        );
    }

    // 2. Violating Eq. 1: cache an order of magnitude under the rings.
    {
        let dim_t = 3usize;
        let ring_bytes = (dim_t - 1) * 4 * n * n * E;
        let cache_bytes = (ring_bytes / 16).next_power_of_two();
        let mut cb = CacheSim::llc(cache_bytes);
        let blocked = blocked35d_trace(dim, E, dim_t, n, dim_t, true, &mut cb);
        let mut cn = CacheSim::llc(cache_bytes);
        let naive = naive_sweep_trace(dim, E, dim_t, true, &mut cn);
        let gain = naive.stats.dram_bytes(64) as f64 / blocked.stats.dram_bytes(64) as f64;
        println!(
            "{:44} {:>10.1} {:>10.1} {:>8.2}x  (Eq. 1 violated)",
            format!("3.5D {n}^3 whole-plane dim_T={dim_t}, rings 16x cache"),
            naive.dram_bytes_per_point(),
            blocked.dram_bytes_per_point(),
            gain,
        );
    }

    // 3. The Figure 4(a) temporal-only crossover.
    println!();
    for (n, label) in [(24usize, "rings fit"), (96, "rings exceed cache")] {
        let dim_t = 3usize;
        let cache_bytes = 64 << 10;
        let mut ct = CacheSim::llc(cache_bytes);
        let temporal = temporal_trace(Dim3::cube(n), E, dim_t, dim_t, true, &mut ct);
        let mut cn = CacheSim::llc(cache_bytes);
        let naive = naive_sweep_trace(Dim3::cube(n), E, dim_t, true, &mut cn);
        let gain = naive.stats.dram_bytes(64) as f64 / temporal.stats.dram_bytes(64) as f64;
        println!(
            "{:44} {:>10.1} {:>10.1} {:>8.2}x",
            format!("temporal-only {n}^3 dim_T={dim_t}, {label}"),
            naive.dram_bytes_per_point(),
            temporal.dram_bytes_per_point(),
            gain,
        );
    }
    println!(
        "\nReading: 'gain' is measured DRAM-traffic reduction through a \
         set-associative LRU cache; 'predicted' is the planner's dim_T/kappa. \
         Temporal-only gains only while whole-plane rings fit (Fig. 4a)."
    );
}
