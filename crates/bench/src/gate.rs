//! The BENCH regression gate: diff two reports, fail on slowdowns.
//!
//! CI keeps a committed baseline report (`results/`) and compares every
//! build's fresh report against it. Entries are matched on the full
//! configuration key (variant × precision × grid × steps × threads); a
//! matched pair regresses when the current MUPS falls below
//! `min_mups_ratio × baseline` or the barrier-wait share grows by more
//! than `max_barrier_share_increase` (absolute). Baseline entries with no
//! counterpart in the current report fail the gate too — losing coverage
//! silently is itself a regression.
//!
//! The default ratio is deliberately generous: baseline and current may
//! run on different CI hosts, so the gate is a tripwire for collapses
//! (an executor falling off its fast path, a barrier storm), not a
//! ±5% performance lock.

use crate::report::{BenchEntry, BenchReport};

/// Thresholds for [`gate_reports`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateThresholds {
    /// Minimum allowed `current.mups / baseline.mups` per entry.
    pub min_mups_ratio: f64,
    /// Maximum allowed absolute increase of `barrier_share`.
    pub max_barrier_share_increase: f64,
    /// Refuse to compare reports whose host fingerprints differ.
    /// Throughput ratios against a different machine's numbers are
    /// meaningless, so this defaults to `true`; pass `--cross-host` to
    /// the `compare` binary to override for tripwire-only gating.
    pub require_same_host: bool,
}

impl Default for GateThresholds {
    fn default() -> Self {
        Self {
            // Half the baseline throughput: loose enough for noisy shared
            // CI runners, tight enough to catch a variant that silently
            // fell back to the scalar path.
            min_mups_ratio: 0.5,
            max_barrier_share_increase: 0.25,
            require_same_host: true,
        }
    }
}

/// Outcome for one matched (or unmatched) baseline entry.
#[derive(Clone, Debug)]
pub struct GateFinding {
    /// Human-readable configuration key.
    pub key: String,
    /// Baseline MUPS.
    pub baseline_mups: f64,
    /// Current MUPS, when the entry was matched.
    pub current_mups: Option<f64>,
    /// `current / baseline` throughput ratio, when matched.
    pub ratio: Option<f64>,
    /// Why the entry failed the gate; `None` when it passed.
    pub failure: Option<String>,
}

/// The gate verdict over a whole report pair.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// One finding per baseline entry, in baseline order.
    pub findings: Vec<GateFinding>,
}

impl GateOutcome {
    /// Whether every baseline entry passed.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.failure.is_none())
    }

    /// The findings that failed.
    pub fn failures(&self) -> impl Iterator<Item = &GateFinding> {
        self.findings.iter().filter(|f| f.failure.is_some())
    }
}

fn entry_key(kind: &str, e: &BenchEntry) -> String {
    format!(
        "{kind} {} [{}] {} {}x{}x{} steps={} threads={}",
        e.variant, e.schedule, e.precision, e.grid[0], e.grid[1], e.grid[2], e.steps, e.threads
    )
}

fn same_config(a: &BenchEntry, b: &BenchEntry) -> bool {
    a.variant == b.variant
        && a.schedule == b.schedule
        && a.precision == b.precision
        && a.grid == b.grid
        && a.steps == b.steps
        && a.threads == b.threads
}

/// Diffs `current` against `baseline` under `t`.
///
/// Returns an error (not a finding) when the reports are not comparable
/// at all — different workload kinds.
pub fn gate_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    t: &GateThresholds,
) -> Result<GateOutcome, String> {
    if baseline.kind != current.kind {
        return Err(format!(
            "cannot gate a '{}' report against a '{}' baseline",
            current.kind, baseline.kind
        ));
    }
    if t.require_same_host && baseline.host.fingerprint != current.host.fingerprint {
        return Err(format!(
            "host fingerprint mismatch: baseline was measured on '{}' but the current \
             report comes from '{}'; throughput ratios across machines are meaningless. \
             Re-run `threefive bench` (and `threefive tune`) on this host to regenerate \
             the baseline, or pass --cross-host to gate as a collapse tripwire only",
            baseline.host.fingerprint, current.host.fingerprint
        ));
    }
    let mut out = GateOutcome::default();
    for base in &baseline.entries {
        let key = entry_key(&baseline.kind, base);
        let Some(cur) = current.entries.iter().find(|c| same_config(base, c)) else {
            out.findings.push(GateFinding {
                key,
                baseline_mups: base.mups,
                current_mups: None,
                ratio: None,
                failure: Some("entry missing from current report".into()),
            });
            continue;
        };
        let ratio = if base.mups > 0.0 {
            cur.mups / base.mups
        } else {
            1.0
        };
        let mut failure = None;
        if ratio < t.min_mups_ratio {
            failure = Some(format!(
                "MUPS ratio {ratio:.3} below threshold {:.3} ({:.1} -> {:.1})",
                t.min_mups_ratio, base.mups, cur.mups
            ));
        } else if let (Some(b), Some(c)) = (base.barrier_share, cur.barrier_share) {
            let grew = c - b;
            if grew > t.max_barrier_share_increase {
                failure = Some(format!(
                    "barrier share grew by {grew:.3} (> {:.3}): {b:.3} -> {c:.3}",
                    t.max_barrier_share_increase
                ));
            }
        }
        out.findings.push(GateFinding {
            key,
            baseline_mups: base.mups,
            current_mups: Some(cur.mups),
            ratio: Some(ratio),
            failure,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(variant: &str, mups: f64, barrier_share: Option<f64>) -> BenchEntry {
        BenchEntry {
            variant: variant.into(),
            schedule: "lag35d".into(),
            precision: "sp".into(),
            grid: [64, 64, 64],
            steps: 4,
            threads: 2,
            warmup: 1,
            reps: 1,
            median_secs: 0.01,
            min_secs: 0.01,
            max_secs: 0.01,
            mups,
            interior_updates: 1_000_000,
            modeled_dram_bytes: 1,
            kappa: 1.0,
            barrier_share,
            telemetry: None,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        let mut r = BenchReport::new("stencil");
        r.entries = entries;
        r
    }

    #[test]
    fn matching_reports_pass() {
        let base = report(vec![entry("scalar", 100.0, None)]);
        let cur = report(vec![entry("scalar", 98.0, None)]);
        let out = gate_reports(&base, &cur, &GateThresholds::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.findings.len(), 1);
        assert!((out.findings[0].ratio.unwrap() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn throughput_collapse_fails() {
        let base = report(vec![entry("3.5D blocking", 100.0, Some(0.05))]);
        let cur = report(vec![entry("3.5D blocking", 40.0, Some(0.05))]);
        let out = gate_reports(&base, &cur, &GateThresholds::default()).unwrap();
        assert!(!out.passed());
        let f = out.failures().next().unwrap();
        assert!(f.failure.as_ref().unwrap().contains("MUPS ratio"));
    }

    #[test]
    fn barrier_share_growth_fails() {
        let base = report(vec![entry("3.5D blocking", 100.0, Some(0.05))]);
        let cur = report(vec![entry("3.5D blocking", 95.0, Some(0.60))]);
        let out = gate_reports(&base, &cur, &GateThresholds::default()).unwrap();
        assert!(!out.passed());
        assert!(out
            .failures()
            .next()
            .unwrap()
            .failure
            .as_ref()
            .unwrap()
            .contains("barrier share"));
    }

    #[test]
    fn missing_entry_fails_and_extra_entries_are_ignored() {
        let base = report(vec![entry("scalar", 100.0, None)]);
        let cur = report(vec![entry("tile 3.5D", 500.0, None)]);
        let out = gate_reports(&base, &cur, &GateThresholds::default()).unwrap();
        assert!(!out.passed());
        assert!(out
            .failures()
            .next()
            .unwrap()
            .failure
            .as_ref()
            .unwrap()
            .contains("missing"));
        // Reversed: baseline fully covered → pass, extras ignored.
        let out = gate_reports(&cur, &cur, &GateThresholds::default()).unwrap();
        assert!(out.passed());
    }

    #[test]
    fn schedule_is_part_of_the_config_key() {
        // The same variant benched under a different schedule is a
        // different configuration: it must not satisfy the baseline.
        let base = report(vec![entry("3.5D blocking", 100.0, None)]);
        let mut wavefront = entry("3.5D blocking", 120.0, None);
        wavefront.schedule = "wavefront".into();
        let cur = report(vec![wavefront]);
        let out = gate_reports(&base, &cur, &GateThresholds::default()).unwrap();
        assert!(!out.passed());
        let f = out.failures().next().unwrap();
        assert!(f.failure.as_ref().unwrap().contains("missing"));
        assert!(f.key.contains("[lag35d]"), "{}", f.key);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut lbm = report(vec![]);
        lbm.kind = "lbm".into();
        let stencil = report(vec![]);
        assert!(gate_reports(&lbm, &stencil, &GateThresholds::default()).is_err());
    }

    #[test]
    fn cross_host_comparison_is_refused_by_default() {
        let base = report(vec![entry("scalar", 100.0, None)]);
        let mut cur = report(vec![entry("scalar", 98.0, None)]);
        cur.host.fingerprint = "other-arch-64t-deadbeef".into();
        let err = gate_reports(&base, &cur, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        assert!(err.contains(&base.host.fingerprint), "{err}");
        assert!(err.contains("other-arch-64t-deadbeef"), "{err}");
        assert!(err.contains("--cross-host"), "{err}");
        // The explicit override still gates.
        let t = GateThresholds {
            require_same_host: false,
            ..GateThresholds::default()
        };
        let out = gate_reports(&base, &cur, &t).unwrap();
        assert!(out.passed());
    }
}
