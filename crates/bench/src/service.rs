//! Schema-versioned machine-readable service load-test output.
//!
//! `threefive loadgen` writes one `SERVICE_load.json` per run so the
//! daemon's saturation behaviour (offered vs completed throughput,
//! latency percentiles, rejection rate, checksum verification) can be
//! recorded across PRs and validated by CI. Same conventions as the
//! BENCH schema ([`crate::report`]): hand-validated, no serde,
//! required-but-nullable fields so a truncated report fails validation
//! with the field named.

use crate::json::Json;
use crate::report::HostInfo;

/// Version stamped into every service report; bump on breaking changes.
/// v2: the shared `host` object gained a required `fingerprint` field.
pub const SERVICE_SCHEMA_VERSION: u64 = 2;

/// Counted job outcomes over one load-generation run. The identity
/// `offered == accepted + rejected` and
/// `accepted == completed + failed + timed_out` both hold for a run
/// whose every request was answered — [`ServiceReport::from_json`]
/// enforces them, so a daemon that silently dropped a job cannot
/// produce a valid report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceTotals {
    /// Solve requests sent.
    pub offered: u64,
    /// Admitted by the daemon.
    pub accepted: u64,
    /// Completed with a checksum.
    pub completed: u64,
    /// Typed admission rejections (QueueFull / GridTooLarge / BadPlan /
    /// ShuttingDown).
    pub rejected: u64,
    /// Admitted but failed (non-deadline reasons).
    pub failed: u64,
    /// Admitted but deadline-expired (including pool exhaustion).
    pub timed_out: u64,
    /// Completed jobs whose checksum was verified against the local
    /// scalar reference.
    pub verified: u64,
    /// Completed jobs whose checksum DID NOT match the reference —
    /// nonzero means cross-tenant corruption and fails validation-aware
    /// consumers immediately.
    pub mismatched: u64,
}

/// Client-observed latency percentiles, milliseconds (admission to final
/// response, including queue wait).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Slowest completed job.
    pub max: f64,
}

impl LatencyMs {
    /// Percentiles of a latency sample (sorted internally). Empty
    /// samples give all-zero percentiles.
    ///
    /// Small-N edges are well-defined, not accidental: with one sample
    /// every percentile (and max) is that sample; with two, p50 is the
    /// lower and p90/p99/max the upper — nearest-rank quantiles are
    /// always actual observations, and `p50 <= p90 <= p99 <= max` holds
    /// for every N. Non-finite samples (NaN, ±∞) are sorted to the end
    /// and excluded instead of panicking the comparator.
    pub fn from_samples(samples: &mut [f64]) -> Self {
        samples.sort_by(|a, b| match (a.is_finite(), b.is_finite()) {
            (true, true) => a.partial_cmp(b).unwrap(),
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => std::cmp::Ordering::Equal,
        });
        let finite = match samples.iter().position(|v| !v.is_finite()) {
            Some(end) => &samples[..end],
            None => &samples[..],
        };
        let pick = |q: f64| -> f64 {
            if finite.is_empty() {
                return 0.0;
            }
            // Nearest-rank: the q-quantile is the ⌈q·N⌉-th order statistic.
            let rank = (q * finite.len() as f64).ceil() as usize;
            finite[rank.clamp(1, finite.len()) - 1]
        };
        Self {
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: finite.last().copied().unwrap_or(0.0),
        }
    }
}

/// A full service load-test report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Always [`SERVICE_SCHEMA_VERSION`] when produced by this build.
    pub schema_version: u64,
    /// The measuring host.
    pub host: HostInfo,
    /// Concurrent tenant connections driving load.
    pub tenants: usize,
    /// Whether chaos (fault injection) was armed during the run.
    pub chaos: bool,
    /// Job outcome counts.
    pub totals: ServiceTotals,
    /// Latency percentiles over completed jobs.
    pub latency_ms: LatencyMs,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_secs: f64,
    /// Completed jobs per second of wall clock.
    pub completed_per_sec: f64,
    /// Offered jobs per second of wall clock.
    pub offered_per_sec: f64,
    /// `rejected / offered` (0 when nothing was offered).
    pub rejection_rate: f64,
}

impl ServiceReport {
    /// Serializes to the JSON tree.
    pub fn to_json(&self) -> Json {
        let t = &self.totals;
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("kind".into(), Json::str("service")),
            ("host".into(), self.host.to_json()),
            ("tenants".into(), Json::Num(self.tenants as f64)),
            ("chaos".into(), Json::Bool(self.chaos)),
            (
                "totals".into(),
                Json::Obj(vec![
                    ("offered".into(), Json::Num(t.offered as f64)),
                    ("accepted".into(), Json::Num(t.accepted as f64)),
                    ("completed".into(), Json::Num(t.completed as f64)),
                    ("rejected".into(), Json::Num(t.rejected as f64)),
                    ("failed".into(), Json::Num(t.failed as f64)),
                    ("timed_out".into(), Json::Num(t.timed_out as f64)),
                    ("verified".into(), Json::Num(t.verified as f64)),
                    ("mismatched".into(), Json::Num(t.mismatched as f64)),
                ]),
            ),
            (
                "latency_ms".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::num(self.latency_ms.p50)),
                    ("p90".into(), Json::num(self.latency_ms.p90)),
                    ("p99".into(), Json::num(self.latency_ms.p99)),
                    ("max".into(), Json::num(self.latency_ms.max)),
                ]),
            ),
            ("wall_secs".into(), Json::num(self.wall_secs)),
            (
                "completed_per_sec".into(),
                Json::num(self.completed_per_sec),
            ),
            ("offered_per_sec".into(), Json::num(self.offered_per_sec)),
            ("rejection_rate".into(), Json::num(self.rejection_rate)),
        ])
    }

    /// Serializes to pretty-printed JSON text (trailing newline
    /// included).
    pub fn to_json_string(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Deserializes and schema-checks a JSON tree, enforcing the
    /// accounting identities (no silently dropped jobs).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = req_u64(v, "schema_version")?;
        if version != SERVICE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads v{SERVICE_SCHEMA_VERSION})"
            ));
        }
        let kind = req_str(v, "kind")?;
        if kind != "service" {
            return Err(format!("'kind' must be \"service\", got \"{kind}\""));
        }
        let host = HostInfo::from_json(v.get("host").ok_or("missing field 'host'")?)?;
        let tv = v.get("totals").ok_or("missing field 'totals'")?;
        let totals = ServiceTotals {
            offered: req_u64(tv, "offered")?,
            accepted: req_u64(tv, "accepted")?,
            completed: req_u64(tv, "completed")?,
            rejected: req_u64(tv, "rejected")?,
            failed: req_u64(tv, "failed")?,
            timed_out: req_u64(tv, "timed_out")?,
            verified: req_u64(tv, "verified")?,
            mismatched: req_u64(tv, "mismatched")?,
        };
        if totals.offered != totals.accepted + totals.rejected {
            return Err(format!(
                "accounting violation: offered ({}) != accepted ({}) + rejected ({}) — \
                 some request got no typed answer",
                totals.offered, totals.accepted, totals.rejected
            ));
        }
        if totals.accepted != totals.completed + totals.failed + totals.timed_out {
            return Err(format!(
                "accounting violation: accepted ({}) != completed ({}) + failed ({}) + \
                 timed_out ({}) — some admitted job got no final response",
                totals.accepted, totals.completed, totals.failed, totals.timed_out
            ));
        }
        let lv = v.get("latency_ms").ok_or("missing field 'latency_ms'")?;
        let latency_ms = LatencyMs {
            p50: req_f64(lv, "p50")?,
            p90: req_f64(lv, "p90")?,
            p99: req_f64(lv, "p99")?,
            max: req_f64(lv, "max")?,
        };
        Ok(Self {
            schema_version: version,
            host,
            tenants: req_u64(v, "tenants")? as usize,
            chaos: match v.get("chaos") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing or non-boolean field 'chaos'".into()),
            },
            totals,
            latency_ms,
            wall_secs: req_f64(v, "wall_secs")?,
            completed_per_sec: req_f64(v, "completed_per_sec")?,
            offered_per_sec: req_f64(v, "offered_per_sec")?,
            rejection_rate: req_f64(v, "rejection_rate")?,
        })
    }

    /// Parses and validates JSON text — the check behind
    /// `threefive loadgen --validate` and the CI `service-smoke` job.
    pub fn validate_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-number field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServiceReport {
        ServiceReport {
            schema_version: SERVICE_SCHEMA_VERSION,
            host: HostInfo::detect(),
            tenants: 8,
            chaos: true,
            totals: ServiceTotals {
                offered: 100,
                accepted: 90,
                completed: 80,
                rejected: 10,
                failed: 4,
                timed_out: 6,
                verified: 80,
                mismatched: 0,
            },
            latency_ms: LatencyMs {
                p50: 12.0,
                p90: 30.5,
                p99: 55.0,
                max: 80.25,
            },
            wall_secs: 2.5,
            completed_per_sec: 32.0,
            offered_per_sec: 40.0,
            rejection_rate: 0.1,
        }
    }

    #[test]
    fn round_trips() {
        let r = report();
        let back = ServiceReport::validate_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn accounting_violations_fail_validation() {
        let mut r = report();
        r.totals.completed = 79; // 90 != 79 + 4 + 6
        let err = ServiceReport::validate_str(&r.to_json_string()).unwrap_err();
        assert!(err.contains("accounting violation"), "{err}");
        let mut r = report();
        r.totals.rejected = 11; // 100 != 90 + 11
        let err = ServiceReport::validate_str(&r.to_json_string()).unwrap_err();
        assert!(err.contains("no typed answer"), "{err}");
    }

    #[test]
    fn missing_fields_are_named() {
        let text = report()
            .to_json_string()
            .replace("\"wall_secs\"", "\"wall\"");
        let err = ServiceReport::validate_str(&text).unwrap_err();
        assert!(err.contains("wall_secs"), "{err}");
    }

    #[test]
    fn wrong_version_and_kind_rejected() {
        let text = report()
            .to_json_string()
            .replace("\"schema_version\": 2", "\"schema_version\": 99");
        assert!(ServiceReport::validate_str(&text).is_err());
        let text = report()
            .to_json_string()
            .replace("\"kind\": \"service\"", "\"kind\": \"stencil\"");
        assert!(ServiceReport::validate_str(&text).is_err());
    }

    #[test]
    fn percentiles_from_samples() {
        let mut samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let l = LatencyMs::from_samples(&mut samples);
        assert_eq!(l.p50, 50.0);
        assert_eq!(l.p90, 90.0);
        assert_eq!(l.p99, 99.0);
        assert_eq!(l.max, 100.0);
        let mut empty = Vec::new();
        let l = LatencyMs::from_samples(&mut empty);
        assert_eq!(l.max, 0.0);
    }

    #[test]
    fn one_and_two_sample_percentiles_are_well_defined() {
        let mut one = vec![7.5];
        let l = LatencyMs::from_samples(&mut one);
        assert_eq!((l.p50, l.p90, l.p99, l.max), (7.5, 7.5, 7.5, 7.5));

        let mut two = vec![10.0, 2.0];
        let l = LatencyMs::from_samples(&mut two);
        assert_eq!(l.p50, 2.0, "p50 of two samples is the lower one");
        assert_eq!((l.p90, l.p99, l.max), (10.0, 10.0, 10.0));
    }

    #[test]
    fn percentiles_are_monotone_for_every_small_n() {
        for n in 1..=12 {
            let mut samples: Vec<f64> = (0..n).map(|v| ((v * 37) % 11) as f64).collect();
            let l = LatencyMs::from_samples(&mut samples);
            assert!(
                l.p50 <= l.p90 && l.p90 <= l.p99 && l.p99 <= l.max,
                "N={n}: {l:?}"
            );
        }
    }

    #[test]
    fn non_finite_samples_are_excluded_not_fatal() {
        let mut samples = vec![3.0, f64::NAN, 1.0, f64::INFINITY, 2.0];
        let l = LatencyMs::from_samples(&mut samples);
        assert_eq!((l.p50, l.max), (2.0, 3.0));
        let mut all_nan = vec![f64::NAN, f64::NAN];
        let l = LatencyMs::from_samples(&mut all_nan);
        assert_eq!((l.p50, l.p90, l.p99, l.max), (0.0, 0.0, 0.0, 0.0));
    }
}
