//! Schema-versioned machine-readable BENCH output.
//!
//! `threefive bench` writes one `BENCH_stencil.json` and one
//! `BENCH_lbm.json` per run so the performance trajectory can be recorded
//! across PRs and diffed by CI. The schema is hand-validated (no serde):
//! [`BenchReport::from_json`] is the single source of truth for what a
//! well-formed report contains, used both by the round-trip tests and by
//! `threefive bench --validate`.
//!
//! **Schema v2** adds a per-entry `telemetry` section (roofline
//! attainment, κ model vs measured, modeled vs cachesim DRAM bytes,
//! barrier-wait histogram — see [`crate::counters`]) and tightens
//! validation: `kappa`, `barrier_share` and `telemetry` must be *present*
//! in every entry (`null` is fine, absence is not), so a truncated or
//! hand-edited report fails `--validate` with the field named instead of
//! silently reading back as NaN.
//!
//! **Schema v3** adds a required `host.fingerprint` — a short stable
//! identifier of the measuring machine (os/arch/cpu-model/thread-count
//! hash). The `compare` regression gate uses it to refuse cross-host
//! comparisons, and `TUNE.json` keys tuned plans by it.
//!
//! **Schema v4** adds a required per-entry `schedule` — the
//! temporal-blocking schedule the engine-backed variants ran under
//! (`"lag35d"`, `"wavefront"`, `"diamond"`; `"none"` for variants with no
//! schedule) — so head-to-head schedule comparisons carry provenance.

use crate::counters::Telemetry;
use crate::json::Json;

/// Version stamped into every report; bump on breaking schema changes.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// Best-effort description of the measuring host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Logical CPUs available to the process.
    pub available_threads: usize,
    /// CPU model string from `/proc/cpuinfo`, or `"unknown"`.
    pub cpu: String,
    /// Stable short identifier of this host (see [`HostInfo::fingerprint_of`]).
    ///
    /// Stored rather than recomputed on load: a report's fingerprint
    /// describes the machine that *produced* it, which is exactly what
    /// the cross-host gate and the tuning database need to compare.
    pub fingerprint: String,
}

impl HostInfo {
    /// Detects the current host.
    pub fn detect() -> Self {
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|s| s.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let os = std::env::consts::OS.to_string();
        let arch = std::env::consts::ARCH.to_string();
        let available_threads = std::thread::available_parallelism().map_or(1, |c| c.get());
        let fingerprint = Self::fingerprint_of(&os, &arch, available_threads, &cpu);
        Self {
            os,
            arch,
            available_threads,
            cpu,
            fingerprint,
        }
    }

    /// Computes the canonical fingerprint for a host description:
    /// `<os>-<arch>-<threads>t-<hash>` where the hash is FNV-1a over all
    /// four fields (so a CPU-model change alone changes the fingerprint
    /// even when os/arch/threads match).
    pub fn fingerprint_of(os: &str, arch: &str, threads: usize, cpu: &str) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [os, arch, cpu, &threads.to_string()] {
            for &b in part.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= 0x7c; // field separator so "ab"+"c" != "a"+"bc"
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{os}-{arch}-{threads}t-{:08x}", (h >> 32) as u32 ^ h as u32)
    }

    /// Serializes to the JSON tree (shared with the service report).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("os".into(), Json::str(&*self.os)),
            ("arch".into(), Json::str(&*self.arch)),
            (
                "available_threads".into(),
                Json::Num(self.available_threads as f64),
            ),
            ("cpu".into(), Json::str(&*self.cpu)),
            ("fingerprint".into(), Json::str(&*self.fingerprint)),
        ])
    }

    /// Deserializes and schema-checks (shared with the service report).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            os: req_str(v, "os")?,
            arch: req_str(v, "arch")?,
            available_threads: req_u64(v, "available_threads")? as usize,
            cpu: req_str(v, "cpu")?,
            fingerprint: req_str(v, "fingerprint")?,
        })
    }
}

/// One measured (variant × precision × grid) row.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Variant label (e.g. `"3.5D blocking"`).
    pub variant: String,
    /// Temporal-blocking schedule name for engine-backed variants
    /// (`"lag35d"`, `"wavefront"`, `"diamond"`), `"none"` otherwise.
    pub schedule: String,
    /// `"sp"` or `"dp"`.
    pub precision: String,
    /// Grid extents `[nx, ny, nz]`.
    pub grid: [usize; 3],
    /// Time steps per repetition.
    pub steps: usize,
    /// Team size used.
    pub threads: usize,
    /// Untimed warmup repetitions (first-touch exclusion).
    pub warmup: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// Median wall-clock seconds over the timed repetitions.
    pub median_secs: f64,
    /// Fastest repetition.
    pub min_secs: f64,
    /// Slowest repetition.
    pub max_secs: f64,
    /// Median million interior-point updates per second.
    pub mups: f64,
    /// Interior updates per repetition (the MUPS numerator).
    pub interior_updates: u64,
    /// Modeled DRAM traffic per repetition, bytes.
    pub modeled_dram_bytes: u64,
    /// Measured κ (stencil: updates per committed point; LBM: modeled).
    pub kappa: f64,
    /// Fraction of in-region time spent at barriers (instrumented
    /// variants only).
    pub barrier_share: Option<f64>,
    /// Model-vs-measured telemetry (schema v2; `null` when the run did
    /// not compute it).
    pub telemetry: Option<Telemetry>,
}

impl BenchEntry {
    /// Relative spread of the timed repetitions: `(max − min) / median`.
    pub fn spread(&self) -> f64 {
        if self.median_secs > 0.0 {
            (self.max_secs - self.min_secs) / self.median_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("variant".into(), Json::str(&*self.variant)),
            ("schedule".into(), Json::str(&*self.schedule)),
            ("precision".into(), Json::str(&*self.precision)),
            (
                "grid".into(),
                Json::Arr(self.grid.iter().map(|&g| Json::Num(g as f64)).collect()),
            ),
            ("steps".into(), Json::Num(self.steps as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("warmup".into(), Json::Num(self.warmup as f64)),
            ("reps".into(), Json::Num(self.reps as f64)),
            ("median_secs".into(), Json::num(self.median_secs)),
            ("min_secs".into(), Json::num(self.min_secs)),
            ("max_secs".into(), Json::num(self.max_secs)),
            ("mups".into(), Json::num(self.mups)),
            (
                "interior_updates".into(),
                Json::Num(self.interior_updates as f64),
            ),
            (
                "modeled_dram_bytes".into(),
                Json::Num(self.modeled_dram_bytes as f64),
            ),
            ("kappa".into(), Json::num(self.kappa)),
            (
                "barrier_share".into(),
                match self.barrier_share {
                    Some(s) => Json::num(s),
                    None => Json::Null,
                },
            ),
            (
                "telemetry".into(),
                match &self.telemetry {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let grid_arr = v
            .get("grid")
            .and_then(Json::as_arr)
            .ok_or("entry missing 'grid' array")?;
        if grid_arr.len() != 3 {
            return Err(format!(
                "'grid' must have 3 extents, got {}",
                grid_arr.len()
            ));
        }
        let mut grid = [0usize; 3];
        for (slot, g) in grid.iter_mut().zip(grid_arr) {
            *slot = g.as_u64().ok_or("'grid' extent must be an integer")? as usize;
        }
        Ok(Self {
            variant: req_str(v, "variant")?,
            schedule: req_str(v, "schedule")?,
            precision: req_str(v, "precision")?,
            grid,
            steps: req_u64(v, "steps")? as usize,
            threads: req_u64(v, "threads")? as usize,
            warmup: req_u64(v, "warmup")? as usize,
            reps: req_u64(v, "reps")? as usize,
            median_secs: req_f64(v, "median_secs")?,
            min_secs: req_f64(v, "min_secs")?,
            max_secs: req_f64(v, "max_secs")?,
            mups: req_f64(v, "mups")?,
            interior_updates: req_u64(v, "interior_updates")?,
            modeled_dram_bytes: req_u64(v, "modeled_dram_bytes")?,
            kappa: req_nullable_f64(v, "kappa")?,
            barrier_share: match req_nullable_f64(v, "barrier_share")? {
                s if s.is_nan() => None,
                s => Some(s),
            },
            telemetry: match v
                .get("telemetry")
                .ok_or("entry missing field 'telemetry' (use null when absent)")?
            {
                Json::Null => None,
                t => Some(Telemetry::from_json(t)?),
            },
        })
    }
}

/// A full BENCH report: schema version, workload kind, host, entries.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA_VERSION`] when produced by this build.
    pub schema_version: u64,
    /// `"stencil"` or `"lbm"`.
    pub kind: String,
    /// The measuring host.
    pub host: HostInfo,
    /// One row per measured variant configuration.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for `kind` on the current host.
    pub fn new(kind: impl Into<String>) -> Self {
        Self {
            schema_version: BENCH_SCHEMA_VERSION,
            kind: kind.into(),
            host: HostInfo::detect(),
            entries: Vec::new(),
        }
    }

    /// Serializes to the JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("kind".into(), Json::str(&*self.kind)),
            ("host".into(), self.host.to_json()),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(BenchEntry::to_json).collect()),
            ),
        ])
    }

    /// Serializes to pretty-printed JSON text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Deserializes and schema-checks a JSON tree.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = req_u64(v, "schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (expected {BENCH_SCHEMA_VERSION}; \
                 v1 reports predate the telemetry section, v2 reports predate the host \
                 fingerprint, v3 reports predate the schedule provenance — regenerate \
                 with `threefive bench`)"
            ));
        }
        let kind = req_str(v, "kind")?;
        if kind != "stencil" && kind != "lbm" {
            return Err(format!("unknown report kind '{kind}'"));
        }
        let host = HostInfo::from_json(v.get("host").ok_or("missing 'host' object")?)?;
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing 'entries' array")?
            .iter()
            .map(BenchEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema_version: version,
            kind,
            host,
            entries,
        })
    }

    /// Parses and schema-checks JSON text — the `--validate` entry point.
    pub fn validate_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

/// Required-but-nullable number: the key must be present (a missing key
/// is a schema error naming the field), while `null` — how the writer
/// encodes NaN/absent — reads back as NaN.
fn req_nullable_f64(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        None => Err(format!(
            "entry missing field '{key}' (use null when absent)"
        )),
        Some(Json::Null) => Ok(f64::NAN),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| format!("field '{key}' must be a number or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;
    use threefive_sync::WaitHistogram;

    fn sample_entry() -> BenchEntry {
        BenchEntry {
            variant: "3.5D blocking".into(),
            schedule: "lag35d".into(),
            precision: "sp".into(),
            grid: [64, 64, 64],
            steps: 4,
            threads: 8,
            warmup: 1,
            reps: 3,
            median_secs: 0.01,
            min_secs: 0.009,
            max_secs: 0.012,
            mups: 95.3,
            interior_updates: 953312,
            modeled_dram_bytes: 123456,
            kappa: 1.18,
            barrier_share: Some(0.07),
            telemetry: None,
        }
    }

    fn sample_telemetry() -> Telemetry {
        let mut counters = CounterRegistry::new();
        counters.set("mups_measured", 95.3);
        counters.set("roofline_attainment_pct", 2.4);
        let mut hist = WaitHistogram::default();
        hist.record(3_000);
        Telemetry {
            machine: "Core i7 (Nehalem, 4C/3.2GHz)".into(),
            counters,
            wait_hist: Some(hist),
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let mut r = BenchReport::new("stencil");
        let mut e1 = sample_entry();
        e1.telemetry = Some(sample_telemetry());
        r.entries.push(e1);
        let mut e2 = sample_entry();
        e2.variant = "scalar".into();
        e2.barrier_share = None;
        e2.kappa = f64::NAN; // writer maps to null, reader to NaN
        r.entries.push(e2);

        let text = r.to_json_string();
        let back = BenchReport::validate_str(&text).expect("schema-valid");
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.kind, "stencil");
        assert_eq!(back.entries[0], r.entries[0]);
        assert_eq!(
            back.entries[0].telemetry.as_ref().unwrap(),
            &sample_telemetry()
        );
        assert_eq!(back.entries[1].barrier_share, None);
        assert_eq!(back.entries[1].telemetry, None);
        assert!(back.entries[1].kappa.is_nan());
        assert_eq!(back.host, r.host);
    }

    #[test]
    fn missing_nullable_fields_are_rejected_by_name() {
        // Dropping a required-but-nullable key must fail with the field
        // named — under v1 a missing 'kappa' silently validated as NaN.
        let mut r = BenchReport::new("stencil");
        r.entries.push(sample_entry());
        for key in ["kappa", "barrier_share", "telemetry"] {
            let Json::Obj(mut fields) = r.entries[0].to_json() else {
                unreachable!()
            };
            fields.retain(|(name, _)| name != key);
            let mut doc = r.to_json();
            if let Json::Obj(top) = &mut doc {
                for (name, val) in top.iter_mut() {
                    if name == "entries" {
                        *val = Json::Arr(vec![Json::Obj(fields.clone())]);
                    }
                }
            }
            let err = BenchReport::from_json(&doc).unwrap_err();
            assert!(err.contains(&format!("'{key}'")), "{key}: {err}");
        }
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = BenchReport::new("lbm");
        r.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchReport::validate_str(&r.to_json_string()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(BenchReport::validate_str("{}").is_err());
        assert!(BenchReport::validate_str("not json").is_err());
        let no_entries = r#"{"schema_version": 4, "kind": "stencil",
            "host": {"os":"l","arch":"x","available_threads":1,"cpu":"c",
                     "fingerprint":"l-x-1t-0"}}"#;
        let err = BenchReport::validate_str(no_entries).unwrap_err();
        assert!(err.contains("entries"), "{err}");
        // A v2-era host object (no fingerprint) names the missing field.
        let no_fp = r#"{"schema_version": 4, "kind": "stencil",
            "host": {"os":"l","arch":"x","available_threads":1,"cpu":"c"},
            "entries": []}"#;
        let err = BenchReport::validate_str(no_fp).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn old_schema_versions_are_rejected_with_guidance() {
        for old in [1u64, 2, 3] {
            let mut r = BenchReport::new("stencil");
            r.schema_version = old;
            let err = BenchReport::validate_str(&r.to_json_string()).unwrap_err();
            assert!(err.contains(&format!("schema_version {old}")), "{err}");
            assert!(err.contains("regenerate"), "{err}");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = HostInfo::fingerprint_of("linux", "x86_64", 8, "Xeon");
        assert_eq!(a, HostInfo::fingerprint_of("linux", "x86_64", 8, "Xeon"));
        assert!(a.starts_with("linux-x86_64-8t-"), "{a}");
        // Every input field participates in the hash.
        assert_ne!(a, HostInfo::fingerprint_of("linux", "x86_64", 8, "EPYC"));
        assert_ne!(a, HostInfo::fingerprint_of("linux", "x86_64", 4, "Xeon"));
        // detect() stamps its own fingerprint consistently.
        let h = HostInfo::detect();
        assert_eq!(
            h.fingerprint,
            HostInfo::fingerprint_of(&h.os, &h.arch, h.available_threads, &h.cpu)
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let r = BenchReport::new("gpu-sim");
        assert!(BenchReport::validate_str(&r.to_json_string()).is_err());
    }

    #[test]
    fn spread_is_relative_to_median() {
        let e = sample_entry();
        assert!((e.spread() - 0.3).abs() < 1e-12);
    }
}
