//! Shared measurement helpers for the figure binaries and benches.
//!
//! Every figure binary prints two kinds of rows side by side:
//!
//! * **model** — the roofline prediction for the paper's machine
//!   (`threefive_machine::figures`), which reproduces the published bars;
//! * **host** — wall-clock measurements of the real executors on the
//!   machine running the benchmark (different absolute numbers, same
//!   qualitative story).
//!
//! Grid sizes default to a laptop-friendly subset; set `THREEFIVE_FULL=1`
//! to run the paper's full 64³/256³/512³ sweep.

use std::time::Instant;

use threefive_core::exec::{
    blocked25d_sweep, blocked35d_sweep, blocked4d_sweep, parallel35d_sweep, reference_sweep,
    simd_sweep, temporal_sweep, Blocking35,
};
use threefive_core::{SevenPoint, StencilKernel};
use threefive_grid::{Dim3, DoubleGrid, Grid3, Real};
use threefive_lbm::{lbm35d_sweep, lbm_naive_sweep, lbm_temporal_sweep, LbmBlocking, LbmMode};
use threefive_sync::ThreadTeam;

/// Whether to run the paper's full grid sizes.
pub fn full_run() -> bool {
    std::env::var("THREEFIVE_FULL").is_ok_and(|v| v != "0")
}

/// Grid edges to measure: {64, 128} by default, {64, 256, 512} with
/// `THREEFIVE_FULL=1` (the paper's sizes).
pub fn grid_edges() -> Vec<usize> {
    if full_run() {
        vec![64, 256, 512]
    } else {
        vec![64, 128]
    }
}

/// Host thread count.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// A measured throughput sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Variant label.
    pub label: &'static str,
    /// Million updates per second.
    pub mups: f64,
}

/// Times `steps` sweeps of the 7-point stencil under the given variant.
pub fn measure_seven_point<T: Real>(
    variant: &'static str,
    dim: Dim3,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> Sample
where
    SevenPoint<T>: StencilKernel<T>,
{
    let kernel = SevenPoint::<T>::heat(T::from_f64(0.125));
    let initial = Grid3::<T>::from_fn(dim, |x, y, z| {
        T::from_f64(((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1)
    });
    let mut grids = DoubleGrid::from_initial(initial);
    let tile = tile.min(dim.nx);
    let t0 = Instant::now();
    match variant {
        "scalar" => {
            reference_sweep(&kernel, &mut grids, steps);
        }
        "simd no-blocking" => {
            simd_sweep(&kernel, &mut grids, steps);
        }
        "spatial only" => {
            blocked25d_sweep(&kernel, &mut grids, steps, tile, tile);
        }
        "temporal only" => {
            temporal_sweep(&kernel, &mut grids, steps, dim_t);
        }
        "4D blocking" => {
            blocked4d_sweep(&kernel, &mut grids, steps, tile.min(48), dim_t);
        }
        "3.5D blocking" => match team {
            Some(team) => {
                parallel35d_sweep(
                    &kernel,
                    &mut grids,
                    steps,
                    Blocking35::new(tile, tile, dim_t),
                    team,
                );
            }
            None => {
                blocked35d_sweep(
                    &kernel,
                    &mut grids,
                    steps,
                    Blocking35::new(tile, tile, dim_t),
                );
            }
        },
        other => panic!("unknown stencil variant {other}"),
    }
    let secs = t0.elapsed().as_secs_f64();
    Sample {
        label: variant,
        mups: (dim.len() * steps) as f64 / secs / 1e6,
    }
}

/// Times `steps` LBM sweeps under the given variant on a lid-driven
/// cavity of edge `n`.
pub fn measure_lbm<T: Real>(
    variant: &'static str,
    n: usize,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> Sample {
    let dim = Dim3::cube(n);
    let mut lat =
        threefive_lbm::scenarios::lid_driven_cavity::<T>(dim, T::from_f64(1.2), T::from_f64(0.05));
    let tile = tile.min(n);
    let t0 = Instant::now();
    match variant {
        "scalar no-blocking" => {
            lbm_naive_sweep(&mut lat, steps, LbmMode::Scalar, team);
        }
        "simd no-blocking" => {
            lbm_naive_sweep(&mut lat, steps, LbmMode::Simd, team);
        }
        "temporal only" => {
            lbm_temporal_sweep(&mut lat, steps, dim_t, team);
        }
        "3.5D blocking" => {
            lbm35d_sweep(&mut lat, steps, LbmBlocking::new(tile, tile, dim_t), team);
        }
        other => panic!("unknown LBM variant {other}"),
    }
    let secs = t0.elapsed().as_secs_f64();
    Sample {
        label: variant,
        mups: (dim.len() * steps) as f64 / secs / 1e6,
    }
}

/// Prints one figure row.
pub fn print_row(group: &str, label: &str, model_mups: Option<f64>, host_mups: Option<f64>) {
    let model = model_mups.map_or("      -".into(), |m| format!("{m:7.0}"));
    let host = host_mups.map_or("      -".into(), |m| format!("{m:7.1}"));
    println!("{group:12} {label:28} {model:>9} {host:>9}");
}

/// Prints the standard figure header.
pub fn print_header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:12} {:28} {:>9} {:>9}",
        "group", "variant", "model", "host"
    );
    println!("{}", "-".repeat(62));
}
