//! Shared measurement helpers for the figure binaries, the `threefive
//! bench` subcommand and the benches.
//!
//! Every figure binary prints two kinds of rows side by side:
//!
//! * **model** — the roofline prediction for the paper's machine
//!   (`threefive_machine::figures`), which reproduces the published bars;
//! * **host** — wall-clock measurements of the real executors on the
//!   machine running the benchmark (different absolute numbers, same
//!   qualitative story).
//!
//! # Measurement methodology
//!
//! Temporal-blocking speedups are notoriously easy to mis-measure
//! (cold-start page faults charge the first sweep with the cost of
//! faulting in every grid page; a single repetition confuses noise with
//! signal; dividing by *all* grid points inflates MUPS with Dirichlet
//! boundary points that are never updated). The harness therefore:
//!
//! * runs `warmup` untimed repetitions first, so first-touch page faults
//!   and frequency ramp-up are excluded from every timed number;
//! * runs `reps` timed repetitions and reports the **median** (and the
//!   min/max spread) rather than a single sample;
//! * computes MUPS from **interior updates** — the points a sweep
//!   actually updates, consistent with `SweepStats::committed_points` —
//!   never from `dim.len()`;
//! * reports the per-thread **barrier-wait share** of the parallel 3.5-D
//!   executors via the zero-cost-when-disabled
//!   [`Instrument`] handle.
//!
//! Grid sizes default to a laptop-friendly subset; set `THREEFIVE_FULL=1`
//! to run the paper's full 64³/256³/512³ sweep.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::time::Instant;

use threefive_core::exec::{
    blocked25d_sweep, blocked3d_sweep, blocked4d_sweep, reference_sweep, simd_sweep,
    tile_parallel35d_sweep, try_parallel35d_sweep, Blocking35, ScheduleKind,
};
use threefive_core::stats::SweepStats;
use threefive_core::{ExecError, SevenPoint, StencilKernel};
use threefive_grid::{Dim3, DoubleGrid, Grid3, Real};
use threefive_lbm::{lbm_naive_sweep, try_lbm35d_sweep, LbmBlocking, LbmError, LbmMode};
use threefive_sync::{Instrument, Observer, ThreadTeam, WaitHistogram};

pub mod counters;
pub mod gate;
pub mod json;
pub mod perfetto;
pub mod probe;
pub mod report;
pub mod service;

/// Whether to run the paper's full grid sizes.
pub fn full_run() -> bool {
    std::env::var("THREEFIVE_FULL").is_ok_and(|v| v != "0")
}

/// Grid edges to measure: {64, 128} by default, {64, 256, 512} with
/// `THREEFIVE_FULL=1` (the paper's sizes).
pub fn grid_edges() -> Vec<usize> {
    if full_run() {
        vec![64, 256, 512]
    } else {
        vec![64, 128]
    }
}

/// Host thread count.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// The stencil variant labels the harness understands, in ladder order.
pub const STENCIL_VARIANTS: &[&str] = &[
    "scalar",
    "simd no-blocking",
    "3D blocking",
    "spatial only",
    "temporal only",
    "4D blocking",
    "3.5D blocking",
    "tile 3.5D",
];

/// The LBM variant labels the harness understands, in ladder order.
pub const LBM_VARIANTS: &[&str] = &[
    "scalar no-blocking",
    "simd no-blocking",
    "temporal only",
    "3.5D blocking",
];

/// Repetition policy for one measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchConfig {
    /// Untimed repetitions run first (first-touch/warmup exclusion).
    pub warmup: usize,
    /// Timed repetitions (at least 1 is always run).
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self { warmup: 1, reps: 3 }
    }
}

impl BenchConfig {
    /// One warmup, one timed repetition — the figure binaries' policy
    /// (they sweep many configurations and only need the shape).
    pub fn quick() -> Self {
        Self { warmup: 1, reps: 1 }
    }
}

/// Runs `sweep` under `cfg`: `cfg.warmup` untimed calls (argument
/// `true`), then `max(cfg.reps, 1)` timed calls (argument `false`).
/// Returns the per-repetition wall-clock seconds and the timed sweeps'
/// results.
pub fn run_reps<R>(cfg: &BenchConfig, mut sweep: impl FnMut(bool) -> R) -> (Vec<f64>, Vec<R>) {
    for _ in 0..cfg.warmup {
        sweep(true);
    }
    let reps = cfg.reps.max(1);
    let mut secs = Vec::with_capacity(reps);
    let mut results = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = sweep(false);
        secs.push(t0.elapsed().as_secs_f64());
        results.push(r);
    }
    (secs, results)
}

/// Median of a non-empty sample (mean of the two central order statistics
/// for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// A measured throughput sample: repetition timings plus the work/traffic
/// accounting needed to report honest MUPS.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Variant label.
    pub label: &'static str,
    /// Wall-clock seconds of each timed repetition.
    pub secs: Vec<f64>,
    /// Interior-point updates performed per repetition — the MUPS
    /// numerator, consistent with `SweepStats::committed_points`.
    pub interior_updates: u64,
    /// Modeled work/traffic counters from the last repetition (zero
    /// update counters for executors that do not report stats, e.g. the
    /// LBM ladder, which models its traffic instead).
    pub stats: SweepStats,
    /// κ: stencil variants report the measured update overestimation;
    /// LBM variants report the planner's modeled κ for their blocking.
    pub kappa: f64,
    /// Barrier-wait share of the last timed repetition (instrumented
    /// parallel variants only).
    pub barrier_share: Option<f64>,
    /// Barrier-wait histogram of the last timed repetition (instrumented
    /// parallel variants only).
    pub barrier_hist: Option<WaitHistogram>,
    /// Temporal-blocking schedule the sweep ran under — `Some` only for
    /// variants backed by the unified engine (the no-blocking and purely
    /// spatial variants have no schedule).
    pub schedule: Option<ScheduleKind>,
    /// Median million interior updates per second.
    pub mups: f64,
}

impl Measurement {
    /// Assembles a measurement from raw parts, deriving the median MUPS.
    /// Public so callers that time a sweep themselves (e.g. the `trace`
    /// subcommand) can feed the telemetry builders in [`crate::counters`].
    pub fn from_parts(
        label: &'static str,
        secs: Vec<f64>,
        interior_updates: u64,
        stats: SweepStats,
        kappa: f64,
        barrier_share: Option<f64>,
        barrier_hist: Option<WaitHistogram>,
    ) -> Self {
        let med = median(&secs);
        Self {
            label,
            interior_updates,
            stats,
            kappa,
            barrier_share,
            barrier_hist,
            schedule: None,
            mups: interior_updates as f64 / med / 1e6,
            secs,
        }
    }

    /// A fabricated measurement for unit tests: one 1-second repetition
    /// at the given MUPS, default stats, κ = 1, no instrumentation.
    #[cfg(test)]
    pub(crate) fn synthetic(label: &'static str, mups: f64) -> Self {
        Self {
            label,
            secs: vec![1.0],
            interior_updates: (mups * 1e6) as u64,
            stats: SweepStats::default(),
            kappa: 1.0,
            barrier_share: None,
            barrier_hist: None,
            schedule: None,
            mups,
        }
    }

    /// Median repetition time in seconds.
    pub fn median_secs(&self) -> f64 {
        median(&self.secs)
    }

    /// Fastest repetition in seconds.
    pub fn min_secs(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest repetition in seconds.
    pub fn max_secs(&self) -> f64 {
        self.secs.iter().copied().fold(0.0, f64::max)
    }
}

/// Times the 7-point stencil under the given variant (one of
/// [`STENCIL_VARIANTS`]) with warmup and repetitions per `cfg`.
///
/// Zero blocking parameters surface as [`ExecError::InvalidBlocking`]
/// instead of panicking, so CLI input can be routed here directly.
///
/// # Panics
/// Panics on an unknown `variant` label (a programmer error — callers
/// select labels from [`STENCIL_VARIANTS`]).
pub fn measure_seven_point<T: Real>(
    cfg: &BenchConfig,
    variant: &'static str,
    dim: Dim3,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> Result<Measurement, ExecError>
where
    SevenPoint<T>: StencilKernel<T>,
{
    measure_seven_point_scheduled::<T>(
        cfg,
        variant,
        dim,
        steps,
        tile,
        dim_t,
        team,
        ScheduleKind::Lag35d,
    )
}

/// [`measure_seven_point`] with an explicit temporal-blocking schedule
/// for the engine-backed variants (`temporal only`, `3.5D blocking`,
/// `tile 3.5D`); the other variants ignore it.
#[allow(clippy::too_many_arguments)]
pub fn measure_seven_point_scheduled<T: Real>(
    cfg: &BenchConfig,
    variant: &'static str,
    dim: Dim3,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
    schedule: ScheduleKind,
) -> Result<Measurement, ExecError>
where
    SevenPoint<T>: StencilKernel<T>,
{
    let kernel = SevenPoint::<T>::heat(T::from_f64(0.125));
    let r = kernel.radius();
    let tile = tile.min(dim.nx).min(dim.ny);
    // Validate user-controlled blocking parameters up front, before any
    // executor can reach a panicking constructor.
    let needs_blocking = !matches!(variant, "scalar" | "simd no-blocking");
    if needs_blocking {
        let checked_dim_t = if matches!(variant, "3D blocking" | "spatial only") {
            1 // purely spatial variants ignore dim_t
        } else {
            dim_t
        };
        Blocking35::try_new(tile, tile, checked_dim_t)?;
    }

    let initial = Grid3::<T>::from_fn(dim, |x, y, z| {
        T::from_f64(((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1)
    });
    let mut grids = DoubleGrid::from_initial(initial);
    let serial_team;
    let team = match team {
        Some(t) => t,
        None => {
            serial_team = ThreadTeam::new(1);
            &serial_team
        }
    };
    let instrumented = matches!(variant, "3.5D blocking");
    let instr = if instrumented {
        Instrument::enabled(team.threads())
    } else {
        Instrument::disabled()
    };
    let obs = Observer::with_instrument(&instr);

    let mut err: Option<ExecError> = None;
    let (secs, stats_per_rep) = run_reps(cfg, |is_warmup| {
        if !is_warmup && instr.is_enabled() {
            // Keep only the current timed repetition in the barrier-share
            // numbers: the final snapshot then reflects the last timed
            // rep, never the warmup's cold-cache behavior.
            instr.reset();
        }
        match variant {
            "scalar" => reference_sweep(&kernel, &mut grids, steps),
            "simd no-blocking" => simd_sweep(&kernel, &mut grids, steps),
            "3D blocking" => blocked3d_sweep(&kernel, &mut grids, steps, tile.min(64)),
            "spatial only" => blocked25d_sweep(&kernel, &mut grids, steps, tile, tile),
            "temporal only" => {
                // Whole-plane tiles: the temporal-only special case.
                let b = Blocking35 {
                    dim_x: dim.nx,
                    dim_y: dim.ny,
                    dim_t,
                    schedule,
                };
                match try_parallel35d_sweep(&kernel, &mut grids, steps, b, team, None, &obs) {
                    Ok(s) => s,
                    Err(e) => {
                        err.get_or_insert(e);
                        SweepStats::default()
                    }
                }
            }
            "4D blocking" => blocked4d_sweep(&kernel, &mut grids, steps, tile.min(48), dim_t),
            "3.5D blocking" => {
                let b = Blocking35 {
                    dim_x: tile,
                    dim_y: tile,
                    dim_t,
                    schedule,
                };
                match try_parallel35d_sweep(&kernel, &mut grids, steps, b, team, None, &obs) {
                    Ok(s) => s,
                    Err(e) => {
                        err.get_or_insert(e);
                        SweepStats::default()
                    }
                }
            }
            "tile 3.5D" => tile_parallel35d_sweep(
                &kernel,
                &mut grids,
                steps,
                Blocking35 {
                    dim_x: tile,
                    dim_y: tile,
                    dim_t,
                    schedule,
                },
                team,
            ),
            other => panic!("unknown stencil variant {other}"),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    let stats = *stats_per_rep.last().expect("at least one repetition");
    let interior = dim.interior_region(r).len() as u64 * steps as u64;
    let timing = instr.timing();
    let barrier_share = instrumented.then(|| timing.barrier_share());
    let barrier_hist = instrumented.then_some(timing.wait_hist);
    let mut m = Measurement::from_parts(
        variant,
        secs,
        interior,
        stats,
        stats.overestimation(),
        barrier_share,
        barrier_hist,
    );
    if matches!(variant, "temporal only" | "3.5D blocking" | "tile 3.5D") {
        m.schedule = Some(schedule);
    }
    Ok(m)
}

/// Times `steps` LBM sweeps under the given variant (one of
/// [`LBM_VARIANTS`]) on a lid-driven cavity of edge `n`, with warmup and
/// repetitions per `cfg`. Zero blocking parameters surface as
/// [`LbmError`] instead of panicking.
///
/// # Panics
/// Panics on an unknown `variant` label.
pub fn measure_lbm<T: Real>(
    cfg: &BenchConfig,
    variant: &'static str,
    n: usize,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> Result<Measurement, LbmError> {
    measure_lbm_scheduled::<T>(
        cfg,
        variant,
        n,
        steps,
        tile,
        dim_t,
        team,
        ScheduleKind::Lag35d,
    )
}

/// [`measure_lbm`] with an explicit temporal-blocking schedule for the
/// engine-backed variants (`temporal only`, `3.5D blocking`); the
/// no-blocking variants ignore it.
#[allow(clippy::too_many_arguments)]
pub fn measure_lbm_scheduled<T: Real>(
    cfg: &BenchConfig,
    variant: &'static str,
    n: usize,
    steps: usize,
    tile: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
    schedule: ScheduleKind,
) -> Result<Measurement, LbmError> {
    /// D3Q19 propagation radius.
    const R: usize = 1;
    let dim = Dim3::cube(n);
    let tile = tile.min(n);
    let blocking = match variant {
        "scalar no-blocking" | "simd no-blocking" => None,
        "temporal only" => {
            Some(LbmBlocking::try_new(n.max(1), n.max(1), dim_t)?.with_schedule(schedule))
        }
        "3.5D blocking" => Some(LbmBlocking::try_new(tile, tile, dim_t)?.with_schedule(schedule)),
        other => panic!("unknown LBM variant {other}"),
    };

    let mut lat =
        threefive_lbm::scenarios::lid_driven_cavity::<T>(dim, T::from_f64(1.2), T::from_f64(0.05));
    let instrumented = blocking.is_some();
    let threads = team.map_or(1, ThreadTeam::threads);
    let instr = if instrumented {
        Instrument::enabled(threads)
    } else {
        Instrument::disabled()
    };
    let obs = Observer::with_instrument(&instr);

    let mut err: Option<LbmError> = None;
    let (secs, _) = run_reps(cfg, |is_warmup| {
        if !is_warmup && instr.is_enabled() {
            instr.reset();
        }
        match (variant, blocking) {
            ("scalar no-blocking", _) => lbm_naive_sweep(&mut lat, steps, LbmMode::Scalar, team),
            ("simd no-blocking", _) => lbm_naive_sweep(&mut lat, steps, LbmMode::Simd, team),
            (_, Some(b)) => match try_lbm35d_sweep(&mut lat, steps, b, team, None, &obs) {
                Ok(updates) => updates,
                Err(e) => {
                    err.get_or_insert(e);
                    0
                }
            },
            _ => unreachable!("blocking validated above"),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    // The lattice executors do not carry SweepStats; model the traffic:
    // each dim_T-chunk streams all 19 distribution planes in and out once
    // (write-allocate folded into the write stream).
    let q = threefive_lbm::model::Q as u64;
    let e = T::BYTES as u64;
    let chunks = match blocking {
        Some(b) => steps.div_ceil(b.dim_t) as u64,
        None => steps as u64,
    };
    let lattice_bytes = dim.len() as u64 * q * e;
    let stats = SweepStats {
        stencil_updates: 0,
        committed_points: 0,
        dram_bytes_read: lattice_bytes * chunks,
        dram_bytes_written: lattice_bytes * chunks,
    };
    // Modeled κ for the blocked variants (the lattice executor does not
    // count ghost recomputation, so there is no measured value).
    let kappa = match blocking {
        Some(b) => {
            let loaded_x = b.dim_x.min(n) + 2 * R * b.dim_t;
            let loaded_y = b.dim_y.min(n) + 2 * R * b.dim_t;
            threefive_core::planner::kappa_35d(R, b.dim_t, loaded_x, loaded_y)
        }
        None => 1.0,
    };
    let interior = dim.interior_region(R).len() as u64 * steps as u64;
    let timing = instr.timing();
    let barrier_share = instrumented.then(|| timing.barrier_share());
    let barrier_hist = instrumented.then_some(timing.wait_hist);
    let mut m = Measurement::from_parts(
        variant,
        secs,
        interior,
        stats,
        kappa,
        barrier_share,
        barrier_hist,
    );
    if blocking.is_some() {
        m.schedule = Some(schedule);
    }
    Ok(m)
}

/// Prints one figure row.
pub fn print_row(group: &str, label: &str, model_mups: Option<f64>, host_mups: Option<f64>) {
    let model = model_mups.map_or("      -".into(), |m| format!("{m:7.0}"));
    let host = host_mups.map_or("      -".into(), |m| format!("{m:7.1}"));
    println!("{group:12} {label:28} {model:>9} {host:>9}");
}

/// Prints the standard figure header.
pub fn print_header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:12} {:28} {:>9} {:>9}",
        "group", "variant", "model", "host"
    );
    println!("{}", "-".repeat(62));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_reps_runs_warmup_untimed_and_reps_timed() {
        let cfg = BenchConfig { warmup: 2, reps: 3 };
        let mut warmups = 0usize;
        let mut timed = 0usize;
        let (secs, results) = run_reps(&cfg, |is_warmup| {
            if is_warmup {
                warmups += 1;
                assert_eq!(timed, 0, "all warmups precede the timed reps");
            } else {
                timed += 1;
            }
            timed
        });
        assert_eq!(warmups, 2, "warmup sweeps happen");
        assert_eq!(timed, 3);
        assert_eq!(secs.len(), 3, "only timed reps are measured");
        assert_eq!(results, vec![1, 2, 3]);
    }

    #[test]
    fn run_reps_always_times_at_least_once() {
        let cfg = BenchConfig { warmup: 0, reps: 0 };
        let (secs, _) = run_reps(&cfg, |_| ());
        assert_eq!(secs.len(), 1);
    }

    #[test]
    fn median_of_odd_and_even_samples() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    fn stencil_mups_counts_interior_updates_only() {
        let n = 12usize;
        let steps = 2usize;
        let cfg = BenchConfig { warmup: 1, reps: 2 };
        let m = measure_seven_point::<f32>(&cfg, "3.5D blocking", Dim3::cube(n), steps, 8, 2, None)
            .unwrap();
        // The denominator basis is interior points × steps, not n³ ×
        // steps: the Dirichlet rim is never updated.
        let interior = (n - 2).pow(3) as u64 * steps as u64;
        assert_eq!(m.interior_updates, interior);
        assert_eq!(m.stats.committed_points, interior);
        let expected_mups = interior as f64 / m.median_secs() / 1e6;
        assert!((m.mups - expected_mups).abs() < 1e-9 * expected_mups.max(1.0));
        assert_eq!(m.secs.len(), 2);
        assert!(m.kappa >= 1.0, "measured κ {}", m.kappa);
        assert!(m.barrier_share.is_some());
    }

    #[test]
    fn zero_dim_t_is_a_typed_error_not_a_panic() {
        let cfg = BenchConfig::quick();
        let err = measure_seven_point::<f32>(&cfg, "3.5D blocking", Dim3::cube(8), 2, 4, 0, None)
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidBlocking { dim_t: 0, .. }));
        let err = measure_seven_point::<f32>(&cfg, "temporal only", Dim3::cube(8), 2, 4, 0, None)
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidBlocking { dim_t: 0, .. }));
        let err = measure_lbm::<f32>(&cfg, "3.5D blocking", 8, 2, 4, 0, None).unwrap_err();
        assert!(matches!(err, LbmError::InvalidBlocking { dim_t: 0, .. }));
    }

    #[test]
    fn lbm_measurement_reports_modeled_traffic_and_kappa() {
        let cfg = BenchConfig::quick();
        let m = measure_lbm::<f32>(&cfg, "3.5D blocking", 10, 2, 6, 2, None).unwrap();
        assert_eq!(m.interior_updates, 8u64.pow(3) * 2);
        assert!(m.kappa > 1.0);
        assert!(m.stats.dram_bytes() > 0);
        assert!(m.barrier_share.is_some());
        let naive = measure_lbm::<f32>(&cfg, "simd no-blocking", 10, 2, 6, 2, None).unwrap();
        assert_eq!(naive.kappa, 1.0);
        assert!(naive.barrier_share.is_none());
        // Blocked traffic model: half the chunks of the naive sweep.
        assert_eq!(naive.stats.dram_bytes(), 2 * m.stats.dram_bytes());
    }

    #[test]
    fn every_listed_variant_measures() {
        let cfg = BenchConfig { warmup: 0, reps: 1 };
        let team = ThreadTeam::new(2);
        for v in STENCIL_VARIANTS {
            let m = measure_seven_point::<f32>(&cfg, v, Dim3::cube(10), 2, 6, 2, Some(&team))
                .unwrap_or_else(|e| panic!("{v}: {e}"));
            assert!(m.mups > 0.0, "{v}");
        }
        for v in LBM_VARIANTS {
            let m = measure_lbm::<f32>(&cfg, v, 8, 1, 4, 1, Some(&team))
                .unwrap_or_else(|e| panic!("{v}: {e}"));
            assert!(m.mups > 0.0, "{v}");
        }
    }
}
