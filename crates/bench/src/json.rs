//! Hand-rolled JSON tree, writer and parser.
//!
//! The container build is offline (no serde), and the BENCH output only
//! needs a small, fully-specified subset of JSON: objects, arrays,
//! strings, finite numbers, booleans and null. Both directions live here
//! so the schema round-trip test and the `threefive bench --validate`
//! check need no external tooling.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs must be mapped to `Null` by the
    /// caller; [`Json::num`] does this).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number, mapping NaN/∞ (which JSON cannot represent) to `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes, which is
    /// all of standard JSON except non-finite numbers).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Json, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad1 = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        // Rust's float Display is shortest-roundtrip decimal, which is
        // valid JSON for every finite value.
        Json::Num(n) => out.push_str(&format!("{n}")),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad1);
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, 0);
        f.write_str(&s)
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer;
                            // reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("name".into(), Json::str("he said \"hi\"\n\\slash")),
            ("nothing".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            (
                "vals".into(),
                Json::Arr(vec![Json::Num(-1.5), Json::Num(1e-7), Json::Num(12345.0)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(2.5), Json::Num(2.5));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\t\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Num(1.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::str("é\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        assert_eq!(Json::Num(4.0).as_u64(), Some(4));
        assert_eq!(Json::Num(4.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
