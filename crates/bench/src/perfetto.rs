//! Chrome trace-event / Perfetto JSON export of a [`TraceSnapshot`].
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! `ui.perfetto.dev` and `chrome://tracing` both load a JSON object with
//! a `traceEvents` array whose entries carry `name`, `ph` (phase), `ts`
//! (microseconds), `pid` and `tid`. We emit complete spans (`ph: "X"`
//! with `dur`) for plane×level and barrier-wait work and instant events
//! (`ph: "i"`) for quarantine/heal/fallback markers, plus `"M"` metadata
//! records naming the process and each team member's track.
//!
//! Everything is built on the crate's own [`Json`] tree — the build is
//! offline, so no serde — and [`validate_chrome_trace`] re-parses what
//! the writer produced, which is the check `threefive trace --validate`
//! and CI run on every exported file.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use threefive_sync::{TraceEventKind, TraceSnapshot};

use crate::json::Json;

/// Process id stamped into every event (one process per export).
pub const TRACE_PID: u64 = 1;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn span_name(kind: &TraceEventKind) -> String {
    match kind {
        TraceEventKind::Plane { z, level } => format!("plane z={z} t'={level}"),
        TraceEventKind::Barrier { step } => format!("barrier s={step}"),
        TraceEventKind::Quarantine { tid } => format!("quarantine tid={tid}"),
        TraceEventKind::Heal { tid } => format!("heal tid={tid}"),
        TraceEventKind::Fallback { from, to } => format!("fallback {from}->{to}"),
    }
}

fn meta_event(name: &str, tid: u64, key: &str, value: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("M")),
        ("ts".into(), Json::Num(0.0)),
        ("pid".into(), Json::Num(TRACE_PID as f64)),
        ("tid".into(), Json::Num(tid as f64)),
        (
            "args".into(),
            Json::Obj(vec![(key.into(), Json::str(value))]),
        ),
    ])
}

/// Converts a snapshot into a Chrome trace-event JSON document.
///
/// `process_name` labels the single process track (e.g.
/// `"threefive 64x64x64 dimT=4"`). Events keep per-thread recording
/// order, so `ts` is monotonic within each `tid`.
pub fn trace_to_chrome_json(snapshot: &TraceSnapshot, process_name: &str) -> Json {
    let mut events = Vec::with_capacity(snapshot.total_events() + snapshot.threads.len() + 1);
    events.push(meta_event("process_name", 0, "name", process_name));
    for (tid, tt) in snapshot.threads.iter().enumerate() {
        events.push(meta_event(
            "thread_name",
            tid as u64,
            "name",
            &format!("team member {tid}"),
        ));
        for e in &tt.events {
            let instant = matches!(
                e.kind,
                TraceEventKind::Quarantine { .. }
                    | TraceEventKind::Heal { .. }
                    | TraceEventKind::Fallback { .. }
            );
            let mut fields = vec![
                ("name".into(), Json::str(span_name(&e.kind))),
                ("cat".into(), Json::str(e.kind.label())),
                ("ph".into(), Json::str(if instant { "i" } else { "X" })),
                ("ts".into(), Json::Num(us(e.start_ns))),
                ("pid".into(), Json::Num(TRACE_PID as f64)),
                ("tid".into(), Json::Num(tid as f64)),
            ];
            if instant {
                // Thread-scoped instant marker.
                fields.push(("s".into(), Json::str("t")));
            } else {
                fields.push(("dur".into(), Json::Num(us(e.duration_ns()))));
            }
            events.push(Json::Obj(fields));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ns")),
    ])
}

/// Summary of a validated trace document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceFileSummary {
    /// Non-metadata events in the file.
    pub events: usize,
    /// Distinct `tid` values seen.
    pub threads: usize,
    /// Complete spans (`ph: "X"`).
    pub spans: usize,
    /// Instant events (`ph: "i"`).
    pub instants: usize,
}

/// Checks that `doc` is a loadable Chrome trace-event document: a
/// `traceEvents` array whose entries all carry `name`, `ph`, `ts`,
/// `pid` and `tid`, with `ts` monotonically non-decreasing per
/// `(pid, tid)` track. Returns counts on success and a named-field
/// error on the first violation.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceFileSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    let mut summary = TraceFileSummary::default();
    let mut last_ts: Vec<(u64, u64, f64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing or non-string field 'name'"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ('{name}'): missing or non-string field 'ph'"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ('{name}'): missing or non-numeric field 'ts'"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ('{name}'): missing or non-integer field 'pid'"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ('{name}'): missing or non-integer field 'tid'"))?;
        if ph == "M" {
            continue; // metadata records carry no timeline position
        }
        match ph {
            "X" => {
                e.get("dur").and_then(Json::as_f64).ok_or_else(|| {
                    format!("event {i} ('{name}'): span missing numeric field 'dur'")
                })?;
                summary.spans += 1;
            }
            "i" => summary.instants += 1,
            other => return Err(format!("event {i} ('{name}'): unsupported phase '{other}'")),
        }
        match last_ts.iter_mut().find(|(p, t, _)| *p == pid && *t == tid) {
            Some((_, _, last)) => {
                if ts < *last {
                    return Err(format!(
                        "event {i} ('{name}'): ts {ts} before {last} on pid {pid} tid {tid} \
                         (per-thread timestamps must be monotonic)"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((pid, tid, ts)),
        }
        summary.events += 1;
    }
    summary.threads = last_ts.len();
    Ok(summary)
}

/// Parses JSON text and validates it as a Chrome trace-event document —
/// the `threefive trace --validate` entry point.
pub fn validate_trace_str(text: &str) -> Result<TraceFileSummary, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    validate_chrome_trace(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_sync::Tracer;

    fn sample_snapshot() -> TraceSnapshot {
        let t = Tracer::enabled(2);
        t.record(0, TraceEventKind::Plane { z: 0, level: 1 }, 100, 300);
        t.record(0, TraceEventKind::Barrier { step: 0 }, 300, 450);
        t.record(0, TraceEventKind::Plane { z: 1, level: 1 }, 450, 700);
        t.instant(1, TraceEventKind::Quarantine { tid: 1 }, 500);
        t.instant(1, TraceEventKind::Fallback { from: 0, to: 1 }, 600);
        t.snapshot()
    }

    #[test]
    fn export_round_trips_and_validates() {
        let doc = trace_to_chrome_json(&sample_snapshot(), "test");
        let text = format!("{doc}\n");
        let summary = validate_trace_str(&text).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 2);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.threads, 2);
    }

    #[test]
    fn exported_events_carry_perfetto_required_keys() {
        let doc = trace_to_chrome_json(&sample_snapshot(), "test");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        for e in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key} in {e}");
            }
        }
        // Timestamps are microseconds: a 200 ns span shows as 0.2 µs.
        let first_span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(first_span.get("ts").unwrap().as_f64(), Some(0.1));
        assert_eq!(first_span.get("dur").unwrap().as_f64(), Some(0.2));
    }

    #[test]
    fn validator_names_the_missing_field() {
        let bad = r#"{"traceEvents": [{"ph": "X", "ts": 1, "pid": 1, "tid": 0}]}"#;
        let err = validate_trace_str(bad).unwrap_err();
        assert!(err.contains("'name'"), "{err}");
        let no_arr = r#"{"foo": 1}"#;
        assert!(validate_trace_str(no_arr)
            .unwrap_err()
            .contains("traceEvents"));
    }

    #[test]
    fn validator_rejects_non_monotonic_thread_timestamps() {
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 2, "dur": 1, "pid": 1, "tid": 0}
        ]}"#;
        let err = validate_trace_str(bad).unwrap_err();
        assert!(err.contains("monotonic"), "{err}");
        // Same timestamps on different tids are fine.
        let ok = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 2, "dur": 1, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_trace_str(ok).is_ok());
    }
}
