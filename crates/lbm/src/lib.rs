//! # threefive-lbm — D3Q19 lattice Boltzmann with 3.5-D blocking
//!
//! The paper's second kernel (§IV-B): a 19-velocity, BGK single-relaxation
//! lattice Boltzmann method over a 3-D lattice, with
//!
//! * **structure-of-arrays** storage — one array per distribution function
//!   so SIMD lanes map to consecutive lattice sites (§IV-B);
//! * a fused **stream–collide ("pull")** update: the new state of a site is
//!   collided from the 19 values streaming *in* from its neighbors, so one
//!   sweep reads 19 values + a flag and writes 19 values per site;
//! * **full-way bounce-back** obstacles and **fixed** (constant
//!   distribution) boundary sites, e.g. a moving lid;
//! * the executor ladder of the paper's Figure 4(a)/5(a): scalar,
//!   SIMD, parallel, temporal-only blocking and full 3.5-D blocking — all
//!   bit-exact with each other because every variant shares one generic
//!   collision kernel evaluated in a fixed association order.
//!
//! The per-site cost matches the paper's accounting: ~220 flops plus
//! 20 reads and 19 writes ⇒ 259 ops, bytes/op 0.88 (SP) / 1.75 (DP).

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod lattice;
pub mod model;
pub mod periodic;
mod pipeline;
pub mod scenarios;
mod step;

pub use lattice::{Lattice, Macroscopic};
pub use periodic::{lbm_periodic_reference, lbm_periodic_sweep, periodic_lattice};
pub use pipeline::{lbm35d_sweep, lbm_temporal_sweep, try_lbm35d_sweep, LbmBlocking, LbmError};
pub use step::{lbm_naive_sweep, LbmMode};
