//! The lattice container: double-buffered distributions, flags, and
//! observables.

use threefive_grid::{AlignedVec, CellFlags, CellKind, Dim3, Real, SoaGrid};

use crate::model::{equilibrium_site, C, Q};

/// Macroscopic state of one lattice site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Macroscopic<T> {
    /// Density ρ = Σᵢ fᵢ.
    pub rho: T,
    /// Velocity u = Σᵢ cᵢ fᵢ / ρ.
    pub u: [T; 3],
}

/// A D3Q19 lattice: two structure-of-arrays distribution grids (source and
/// destination, swapped each step), per-site flags, and the static
/// "simple" mask marking fluid sites with no obstacle neighbor (eligible
/// for branch-free SIMD updates).
pub struct Lattice<T: Real> {
    grids: [SoaGrid<T>; 2],
    src_is_zero: bool,
    flags: CellFlags,
    simple: AlignedVec<u8>,
    /// Relaxation rate ω = 1/τ.
    pub omega: T,
}

impl<T: Real> Lattice<T> {
    /// Creates a lattice at uniform equilibrium (ρ = 1, u = 0) with
    /// all-fluid interior and the given flags.
    ///
    /// # Panics
    /// Panics if `flags` has different dimensions, if `omega` is not in
    /// `(0, 2)` (BGK stability range), or if any *face* site of the lattice
    /// is fluid — streaming would read outside the grid (mark faces
    /// [`CellKind::Obstacle`] or [`CellKind::Fixed`]).
    pub fn new(dim: Dim3, flags: CellFlags, omega: T) -> Self {
        assert_eq!(flags.dim(), dim, "Lattice: flag dimensions mismatch");
        assert!(
            omega.to_f64() > 0.0 && omega.to_f64() < 2.0,
            "Lattice: omega must be in (0, 2)"
        );
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    let face = x == 0
                        || x + 1 == dim.nx
                        || y == 0
                        || y + 1 == dim.ny
                        || z == 0
                        || z + 1 == dim.nz;
                    if face {
                        assert!(
                            flags.get(x, y, z) != CellKind::Fluid,
                            "Lattice: face site ({x},{y},{z}) must not be fluid"
                        );
                    }
                }
            }
        }
        let mut grids = [SoaGrid::zeros(dim, Q), SoaGrid::zeros(dim, Q)];
        let eq = equilibrium_site(T::ONE, [T::ZERO; 3]);
        for g in &mut grids {
            for (i, &v) in eq.iter().enumerate() {
                g.comp_mut(i).fill(v);
            }
        }
        let simple = compute_simple_mask(dim, &flags);
        Self {
            grids,
            src_is_zero: true,
            flags,
            simple,
            omega,
        }
    }

    /// Lattice extents.
    pub fn dim(&self) -> Dim3 {
        self.flags.dim()
    }

    /// Site flags.
    pub fn flags(&self) -> &CellFlags {
        &self.flags
    }

    /// The "simple" mask: 1 for fluid sites with no obstacle among their 18
    /// neighbors (SIMD-eligible), 0 otherwise. Layout order.
    pub fn simple_mask(&self) -> &[u8] {
        &self.simple
    }

    /// Source (current time) distributions.
    pub fn src(&self) -> &SoaGrid<T> {
        &self.grids[if self.src_is_zero { 0 } else { 1 }]
    }

    /// Destination distributions.
    pub fn dst(&self) -> &SoaGrid<T> {
        &self.grids[if self.src_is_zero { 1 } else { 0 }]
    }

    /// Mutable destination distributions.
    pub fn dst_mut(&mut self) -> &mut SoaGrid<T> {
        &mut self.grids[if self.src_is_zero { 1 } else { 0 }]
    }

    /// Source and mutable destination together.
    pub fn pair_mut(&mut self) -> (&SoaGrid<T>, &mut SoaGrid<T>) {
        let (a, b) = self.grids.split_at_mut(1);
        if self.src_is_zero {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        }
    }

    /// Swaps source and destination (O(1)).
    pub fn swap(&mut self) {
        self.src_is_zero = !self.src_is_zero;
    }

    /// Splits the lattice into all the parts one time step needs: flags,
    /// simple mask, source grid, and mutable destination grid.
    pub fn split_step(&mut self) -> (&CellFlags, &[u8], &SoaGrid<T>, &mut SoaGrid<T>) {
        let (a, b) = self.grids.split_at_mut(1);
        let (src, dst) = if self.src_is_zero {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        };
        (&self.flags, &self.simple, src, dst)
    }

    /// Sets one site of the **source** grid to the equilibrium state for
    /// `(rho, u)` (initialisation / fixed boundary values).
    pub fn set_equilibrium(&mut self, x: usize, y: usize, z: usize, rho: T, u: [T; 3]) {
        let f = equilibrium_site(rho, u);
        self.set_site(x, y, z, &f);
    }

    /// Sets one site's raw distributions in **both** buffers (so the value
    /// survives swaps; used for initialisation and halo construction).
    ///
    /// # Panics
    /// Panics if `values.len() != 19`.
    pub fn set_site(&mut self, x: usize, y: usize, z: usize, values: &[T]) {
        let idx = if self.src_is_zero { 0 } else { 1 };
        self.grids[idx].set_site(x, y, z, values);
        // Fixed sites are copied from the source grid by every executor, so
        // mirroring into the other buffer keeps both time parities correct.
        self.grids[1 - idx].set_site(x, y, z, values);
    }

    /// Macroscopic state of one site of the source grid.
    pub fn macroscopic(&self, x: usize, y: usize, z: usize) -> Macroscopic<T> {
        let f = self.src().site(x, y, z);
        let mut rho = T::ZERO;
        for &v in &f {
            rho += v;
        }
        let mut u = [T::ZERO; 3];
        for (i, &v) in f.iter().enumerate() {
            let (cx, cy, cz) = C[i];
            if cx != 0 {
                u[0] += v * T::from_f64(cx as f64);
            }
            if cy != 0 {
                u[1] += v * T::from_f64(cy as f64);
            }
            if cz != 0 {
                u[2] += v * T::from_f64(cz as f64);
            }
        }
        for c in &mut u {
            *c = *c / rho;
        }
        Macroscopic { rho, u }
    }

    /// Kinematic viscosity implied by the relaxation rate:
    /// `ν = (1/ω − 1/2) / 3` in lattice units.
    pub fn viscosity(&self) -> f64 {
        (1.0 / self.omega.to_f64() - 0.5) / 3.0
    }

    /// Reynolds number of a flow with characteristic speed `u` and length
    /// `l` (in lattice units) at this lattice's viscosity.
    pub fn reynolds(&self, u: f64, l: f64) -> f64 {
        u * l / self.viscosity()
    }

    /// Density of every site as a scalar grid (obstacle/fixed sites report
    /// their stored distributions' density).
    pub fn density_field(&self) -> threefive_grid::Grid3<T> {
        let dim = self.dim();
        threefive_grid::Grid3::from_fn(dim, |x, y, z| self.macroscopic(x, y, z).rho)
    }

    /// The three velocity components as scalar grids (zero at non-fluid
    /// sites, whose "velocity" has no physical meaning).
    pub fn velocity_field(&self) -> [threefive_grid::Grid3<T>; 3] {
        let dim = self.dim();
        let comp = |axis: usize| {
            threefive_grid::Grid3::from_fn(dim, |x, y, z| {
                if self.flags.get(x, y, z) == CellKind::Fluid {
                    self.macroscopic(x, y, z).u[axis]
                } else {
                    T::ZERO
                }
            })
        };
        [comp(0), comp(1), comp(2)]
    }

    /// Largest fluid speed on the lattice — the stability telltale (BGK
    /// wants |u| well below the lattice sound speed 1/√3 ≈ 0.577).
    pub fn max_speed(&self) -> f64 {
        let dim = self.dim();
        let mut max = 0.0f64;
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    if self.flags.get(x, y, z) != CellKind::Fluid {
                        continue;
                    }
                    let m = self.macroscopic(x, y, z);
                    let s2 = (m.u[0] * m.u[0] + m.u[1] * m.u[1] + m.u[2] * m.u[2]).to_f64();
                    max = max.max(s2);
                }
            }
        }
        max.sqrt()
    }

    /// Total kinetic energy ½ Σ ρ|u|² over fluid sites.
    pub fn kinetic_energy(&self) -> f64 {
        let dim = self.dim();
        let mut e = 0.0f64;
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    if self.flags.get(x, y, z) != CellKind::Fluid {
                        continue;
                    }
                    let m = self.macroscopic(x, y, z);
                    let u2 = (m.u[0] * m.u[0] + m.u[1] * m.u[1] + m.u[2] * m.u[2]).to_f64();
                    e += 0.5 * m.rho.to_f64() * u2;
                }
            }
        }
        e
    }

    /// Total mass over fluid sites of the source grid (conserved by
    /// collision and bounce-back).
    pub fn fluid_mass(&self) -> f64 {
        let dim = self.dim();
        let src = self.src();
        let mut total = 0.0f64;
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    if self.flags.get(x, y, z) == CellKind::Fluid {
                        for q in 0..Q {
                            total += src.get(q, x, y, z).to_f64();
                        }
                    }
                }
            }
        }
        total
    }
}

/// A fluid site is "simple" when none of its 18 neighbors is an obstacle:
/// its pull update needs no bounce-back branches and can run in SIMD.
fn compute_simple_mask(dim: Dim3, flags: &CellFlags) -> AlignedVec<u8> {
    let mut mask = AlignedVec::<u8>::zeroed(dim.len());
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            for x in 0..dim.nx {
                if flags.get(x, y, z) != CellKind::Fluid {
                    continue;
                }
                let ok = C.iter().skip(1).all(|&(cx, cy, cz)| {
                    let nx = x as i64 - cx as i64;
                    let ny = y as i64 - cy as i64;
                    let nz = z as i64 - cz as i64;
                    // Fluid faces are rejected at construction, so all
                    // neighbors are in bounds.
                    flags.get(nx as usize, ny as usize, nz as usize) != CellKind::Obstacle
                });
                if ok {
                    mask[dim.idx(x, y, z)] = 1;
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn new_lattice_is_uniform_equilibrium() {
        let lat = scenarios::closed_box::<f64>(Dim3::cube(6), 1.25);
        let m = lat.macroscopic(3, 3, 3);
        assert!((m.rho.to_f64() - 1.0).abs() < 1e-12);
        for c in m.u {
            assert!(c.abs().to_f64() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must not be fluid")]
    fn fluid_faces_are_rejected() {
        let d = Dim3::cube(4);
        let flags = CellFlags::all_fluid(d);
        let _ = Lattice::<f32>::new(d, flags, 1.0);
    }

    #[test]
    #[should_panic(expected = "omega must be in")]
    fn unstable_omega_rejected() {
        let d = Dim3::cube(4);
        let mut flags = CellFlags::all_fluid(d);
        paint_walls(&mut flags);
        let _ = Lattice::<f32>::new(d, flags, 2.5);
    }

    fn paint_walls(flags: &mut CellFlags) {
        let d = flags.dim();
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    if x == 0 || x + 1 == d.nx || y == 0 || y + 1 == d.ny || z == 0 || z + 1 == d.nz
                    {
                        flags.set(x, y, z, CellKind::Obstacle);
                    }
                }
            }
        }
    }

    #[test]
    fn simple_mask_excludes_wall_adjacent_sites() {
        let lat = scenarios::closed_box::<f32>(Dim3::cube(6), 1.0);
        let d = lat.dim();
        let mask = lat.simple_mask();
        // Site adjacent to a wall: not simple.
        assert_eq!(mask[d.idx(1, 3, 3)], 0);
        // Central site in a 6³ box: neighbors are 1..4 — (2,2,2) has
        // neighbor (1,..) which touches the wall? No: neighbor (1,2,2) is
        // fluid; only obstacle neighbors disqualify. Walls are at 0 and 5.
        assert_eq!(mask[d.idx(2, 2, 2)], 1);
        assert_eq!(mask[d.idx(3, 3, 3)], 1);
        // Obstacle sites are never simple.
        assert_eq!(mask[d.idx(0, 0, 0)], 0);
    }

    #[test]
    fn set_equilibrium_updates_both_buffers() {
        let mut lat = scenarios::closed_box::<f64>(Dim3::cube(5), 1.0);
        lat.set_equilibrium(2, 2, 2, 1.2, [0.05, 0.0, 0.0]);
        let m = lat.macroscopic(2, 2, 2);
        assert!((m.rho.to_f64() - 1.2).abs() < 1e-12);
        lat.swap();
        let m2 = lat.macroscopic(2, 2, 2);
        assert!((m2.rho.to_f64() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn viscosity_and_reynolds_follow_bgk_formulas() {
        let lat = scenarios::closed_box::<f64>(Dim3::cube(4), 1.0);
        // ω = 1 ⇒ τ = 1 ⇒ ν = (1 − 0.5)/3 = 1/6.
        assert!((lat.viscosity() - 1.0 / 6.0).abs() < 1e-12);
        assert!((lat.reynolds(0.1, 48.0) - 0.1 * 48.0 * 6.0).abs() < 1e-9);
        // ω → 2 drives viscosity to zero (the stability edge).
        let thin = scenarios::closed_box::<f64>(Dim3::cube(4), 1.99);
        assert!(thin.viscosity() < 0.002);
    }

    #[test]
    fn field_extraction_matches_pointwise_macroscopics() {
        let d = Dim3::cube(5);
        let mut lat = scenarios::closed_box::<f64>(d, 1.1);
        lat.set_equilibrium(2, 2, 2, 1.3, [0.05, -0.02, 0.01]);
        let rho = lat.density_field();
        let [ux, uy, uz] = lat.velocity_field();
        assert!((rho.get(2, 2, 2) - 1.3).abs() < 1e-12);
        assert!((ux.get(2, 2, 2) - 0.05).abs() < 1e-12);
        assert!((uy.get(2, 2, 2) + 0.02).abs() < 1e-12);
        assert!((uz.get(2, 2, 2) - 0.01).abs() < 1e-12);
        // Non-fluid sites report zero velocity.
        assert_eq!(ux.get(0, 0, 0), 0.0);
    }

    #[test]
    fn energy_and_speed_observables() {
        let d = Dim3::cube(6);
        let mut lat = scenarios::closed_box::<f64>(d, 1.1);
        assert_eq!(lat.kinetic_energy(), 0.0);
        assert_eq!(lat.max_speed(), 0.0);
        lat.set_equilibrium(3, 3, 3, 1.0, [0.1, 0.0, 0.0]);
        assert!((lat.max_speed() - 0.1).abs() < 1e-12);
        assert!((lat.kinetic_energy() - 0.5 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn fluid_mass_counts_only_fluid_sites() {
        let d = Dim3::cube(5);
        let lat = scenarios::closed_box::<f64>(d, 1.0);
        let fluid_sites = lat.flags().count(CellKind::Fluid);
        assert_eq!(fluid_sites, 27); // 3³ interior
        assert!((lat.fluid_mass() - 27.0).abs() < 1e-9);
    }
}
