//! The D3Q19 velocity set and the BGK collision operator.
//!
//! The collision kernel is generic over [`SimdReal`] and evaluates every
//! floating-point expression in one fixed association order, so the scalar
//! path (`Packed<T, 1>`), the SSE path and the wide portable path produce
//! **bit-identical** results lane for lane — the property the executor
//! equivalence tests rely on.

use threefive_grid::Real;
use threefive_simd::SimdReal;

/// Number of discrete velocities.
pub const Q: usize = 19;

/// The D3Q19 velocity set: rest, 6 axis vectors, 12 face diagonals.
/// Index 0 is rest; `C[i]` and `C[OPP[i]]` are antiparallel.
pub const C: [(i32, i32, i32); Q] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// Index of the antiparallel velocity: `C[OPP[i]] == -C[i]`.
pub const OPP: [usize; Q] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Lattice weights: 1/3 rest, 1/18 axis, 1/36 diagonal.
pub const W: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Operation count per lattice-site update in the paper's convention
/// (§IV-B): ~220 flops + 20 loads (19 distributions + flag) + 19 stores.
pub const OPS_PER_SITE: usize = 259;

/// Bytes/op of the LBM kernel: SP = 0.88, DP = 1.75 (§IV-B, assuming
/// write-allocate traffic for the 19 stores).
pub fn bytes_per_op(elem_bytes: usize) -> f64 {
    // 19 reads + flag ≈ 20 elem reads; 19 writes counted twice
    // (write-allocate fetch + write-back) ⇒ 57 element transfers.
    (57 * elem_bytes) as f64 / OPS_PER_SITE as f64
}

/// The equilibrium distribution for direction `i`:
/// `w_i · ρ · (1 + 3(c_i·u) + 4.5(c_i·u)² − 1.5 u²)`.
///
/// Generic over the lane type; association order is fixed.
#[inline(always)]
pub fn equilibrium<V: SimdReal>(i: usize, rho: V, ux: V, uy: V, uz: V, usq15: V) -> V {
    let s = V::Scalar::from_f64;
    let (cx, cy, cz) = C[i];
    let mut cu = V::zero();
    // Build c·u without multiplying by zero components, in x, y, z order —
    // the same additions every lane and every implementation performs.
    if cx != 0 {
        let t = ux * V::splat(s(cx as f64));
        cu = cu + t;
    }
    if cy != 0 {
        let t = uy * V::splat(s(cy as f64));
        cu = cu + t;
    }
    if cz != 0 {
        let t = uz * V::splat(s(cz as f64));
        cu = cu + t;
    }
    let three_cu = V::splat(s(3.0)) * cu;
    let cu2 = V::splat(s(4.5)) * (cu * cu);
    let poly = ((V::splat(s(1.0)) + three_cu) + cu2) - usq15;
    (V::splat(s(W[i])) * rho) * poly
}

/// In-place BGK collision of a site's 19 incoming distributions:
/// `g_i ← g_i + ω (g_i^eq − g_i)`.
///
/// Returns `(ρ, u_x, u_y, u_z)` of the pre-collision state (useful for
/// observables). All sums run in fixed index order.
#[inline(always)]
pub fn collide<V: SimdReal>(g: &mut [V; Q], omega: V::Scalar) -> (V, V, V, V) {
    let s = V::Scalar::from_f64;
    let mut rho = V::zero();
    for gi in g.iter() {
        rho = rho + *gi;
    }
    let mut mx = V::zero();
    let mut my = V::zero();
    let mut mz = V::zero();
    for (i, gi) in g.iter().enumerate() {
        let (cx, cy, cz) = C[i];
        if cx != 0 {
            mx = mx + *gi * V::splat(s(cx as f64));
        }
        if cy != 0 {
            my = my + *gi * V::splat(s(cy as f64));
        }
        if cz != 0 {
            mz = mz + *gi * V::splat(s(cz as f64));
        }
    }
    let inv_rho = V::splat(s(1.0)) / rho;
    let ux = mx * inv_rho;
    let uy = my * inv_rho;
    let uz = mz * inv_rho;
    let usq15 = V::splat(s(1.5)) * (((ux * ux) + (uy * uy)) + (uz * uz));
    let om = V::splat(omega);
    for (i, gi) in g.iter_mut().enumerate() {
        let eq = equilibrium::<V>(i, rho, ux, uy, uz, usq15);
        *gi = *gi + om * (eq - *gi);
    }
    (rho, ux, uy, uz)
}

/// Scalar equilibrium state for initialisation: the 19 distributions of a
/// site at density `rho` and velocity `u`.
pub fn equilibrium_site<T: Real>(rho: T, u: [T; 3]) -> [T; Q] {
    use threefive_simd::Packed;
    type V1<T> = Packed<T, 1>;
    let usq15 = V1::splat(T::from_f64(1.5))
        * (((V1::splat(u[0]) * V1::splat(u[0])) + (V1::splat(u[1]) * V1::splat(u[1])))
            + (V1::splat(u[2]) * V1::splat(u[2])));
    let mut out = [T::ZERO; Q];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = equilibrium::<V1<T>>(
            i,
            V1::splat(rho),
            V1::splat(u[0]),
            V1::splat(u[1]),
            V1::splat(u[2]),
            usq15,
        )
        .lane(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_simd::Packed;

    type V1 = Packed<f64, 1>;

    #[test]
    fn velocity_set_is_symmetric() {
        for i in 0..Q {
            let (cx, cy, cz) = C[i];
            let (ox, oy, oz) = C[OPP[i]];
            assert_eq!((ox, oy, oz), (-cx, -cy, -cz), "i={i}");
            assert_eq!(OPP[OPP[i]], i);
        }
        // 1 rest + 6 axis + 12 diagonal.
        assert_eq!(C.iter().filter(|c| **c == (0, 0, 0)).count(), 1);
        let axis = C
            .iter()
            .filter(|(x, y, z)| x.abs() + y.abs() + z.abs() == 1)
            .count();
        let diag = C
            .iter()
            .filter(|(x, y, z)| x.abs() + y.abs() + z.abs() == 2)
            .count();
        assert_eq!(axis, 6);
        assert_eq!(diag, 12);
    }

    #[test]
    fn weights_are_normalised_and_isotropic() {
        let sum: f64 = W.iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
        // Second moment isotropy: Σ w_i c_iα c_iβ = (1/3) δ_αβ.
        for a in 0..3 {
            for b in 0..3 {
                let m: f64 = (0..Q)
                    .map(|i| {
                        let c = [C[i].0 as f64, C[i].1 as f64, C[i].2 as f64];
                        W[i] * c[a] * c[b]
                    })
                    .sum();
                let expect = if a == b { 1.0 / 3.0 } else { 0.0 };
                assert!((m - expect).abs() < 1e-15, "a={a} b={b} m={m}");
            }
        }
    }

    #[test]
    fn equilibrium_moments_recover_rho_and_u() {
        let rho = 1.1f64;
        let u = [0.05f64, -0.02, 0.01];
        let f = equilibrium_site(rho, u);
        let got_rho: f64 = f.iter().sum();
        assert!((got_rho - rho).abs() < 1e-12);
        for axis in 0..3 {
            let mom: f64 = (0..Q)
                .map(|i| {
                    let c = [C[i].0 as f64, C[i].1 as f64, C[i].2 as f64];
                    f[i] * c[axis]
                })
                .sum();
            assert!((mom - rho * u[axis]).abs() < 1e-12, "axis {axis}");
        }
    }

    #[test]
    fn equilibrium_is_collision_fixed_point() {
        let mut g: [V1; Q] =
            std::array::from_fn(|i| V1::splat(equilibrium_site(1.0f64, [0.08, 0.03, -0.06])[i]));
        let before: Vec<f64> = g.iter().map(|v| v.lane(0)).collect();
        collide::<V1>(&mut g, 1.25);
        for (i, b) in before.iter().enumerate() {
            assert!((g[i].lane(0) - b).abs() < 1e-14, "i={i}");
        }
    }

    #[test]
    fn collision_conserves_mass_and_momentum() {
        // Random-ish positive distributions.
        let mut g: [V1; Q] =
            std::array::from_fn(|i| V1::splat(W[i] * (1.0 + 0.3 * ((i * 7 % 5) as f64 - 2.0))));
        let mass_before: f64 = g.iter().map(|v| v.lane(0)).sum();
        let mom_before: [f64; 3] = {
            let mut m = [0.0; 3];
            for (i, v) in g.iter().enumerate() {
                m[0] += v.lane(0) * C[i].0 as f64;
                m[1] += v.lane(0) * C[i].1 as f64;
                m[2] += v.lane(0) * C[i].2 as f64;
            }
            m
        };
        collide::<V1>(&mut g, 1.6);
        let mass_after: f64 = g.iter().map(|v| v.lane(0)).sum();
        assert!((mass_after - mass_before).abs() < 1e-14);
        let mut mom_after = [0.0; 3];
        for (i, v) in g.iter().enumerate() {
            mom_after[0] += v.lane(0) * C[i].0 as f64;
            mom_after[1] += v.lane(0) * C[i].1 as f64;
            mom_after[2] += v.lane(0) * C[i].2 as f64;
        }
        for a in 0..3 {
            assert!((mom_after[a] - mom_before[a]).abs() < 1e-14, "axis {a}");
        }
    }

    #[test]
    fn simd_collision_matches_scalar_bit_for_bit() {
        use threefive_simd::NativeF32;
        const L: usize = 4;
        // Four sites with distinct states.
        let site_states: Vec<[f32; Q]> = (0..L)
            .map(|s| {
                let u = [0.02 * s as f32, -0.01 * s as f32, 0.005];
                equilibrium_site(1.0 + 0.05 * s as f32, u)
            })
            .collect();
        // Perturb away from equilibrium so collision does something.
        let perturbed: Vec<[f32; Q]> = site_states
            .iter()
            .map(|f| std::array::from_fn(|i| f[i] * (1.0 + 0.1 * ((i % 3) as f32 - 1.0))))
            .collect();

        // SIMD: lane s = site s.
        let mut gv: [NativeF32; Q] = std::array::from_fn(|i| {
            NativeF32::loadu(&[
                perturbed[0][i],
                perturbed[1][i],
                perturbed[2][i],
                perturbed[3][i],
            ])
        });
        collide::<NativeF32>(&mut gv, 1.3f32);

        // Scalar: one lane at a time.
        for (s, site) in perturbed.iter().enumerate() {
            let mut g1: [Packed<f32, 1>; Q] = std::array::from_fn(|i| Packed::splat(site[i]));
            collide::<Packed<f32, 1>>(&mut g1, 1.3f32);
            for i in 0..Q {
                assert_eq!(gv[i].lane(s), g1[i].lane(0), "site {s} dir {i}");
            }
        }
    }

    #[test]
    fn bytes_per_op_matches_paper() {
        assert!(
            (bytes_per_op(4) - 0.88).abs() < 0.001,
            "{}",
            bytes_per_op(4)
        );
        assert!((bytes_per_op(8) - 1.76).abs() < 0.01, "{}", bytes_per_op(8));
    }
}
