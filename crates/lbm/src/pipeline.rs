//! 3.5-D blocking for the lattice Boltzmann method (paper §VI-B).
//!
//! Since the engine refactor this module no longer carries its own copy
//! of the pipeline: the chunked tile loop, Z-stream schedule, plane
//! rings, barriers and fault handling come from
//! [`threefive_core::exec::engine35`], and this module contributes the
//! D3Q19 workload as a [`PlaneKernel`] impl ([`LbmPlanes`]) plus the
//! public sweep entry points. Running on the engine also puts the LBM
//! under the fault-tolerance layer: [`try_lbm35d_sweep`] honors a
//! watchdog `deadline` and surfaces member panics / poisoned barriers as
//! [`LbmError::Sync`] instead of hanging.
//!
//! Structure (same as the stencil pipeline): XY tiles stream through Z;
//! time level 1 pulls from the source lattice, intermediate levels live in
//! tile-local plane rings (19 distribution planes per ring slot), the last
//! level writes the destination lattice. Every thread owns a band of rows
//! of every sub-plane at every level, with one barrier per outer Z step.
//!
//! Differences from the scalar-stencil pipeline, both induced by the
//! lattice's flag semantics and captured by
//! [`BoundaryPolicy::FaceExtended`]:
//!
//! * valid ranges extend to the grid faces (face sites are non-fluid by
//!   construction and are *copied* from the time-invariant source, which
//!   doubles as the Dirichlet rim);
//! * every committed cell is written each chunk (there is no pre-
//!   initialized destination), so Z-boundary planes are copied into the
//!   destination too.
//!
//! D3Q19 propagation has L∞ radius 1, so `R = 1` throughout; under the
//! default lag schedule rings carry `max(2R+2, 3R+1) = 4` sub-planes per
//! level, matching the paper. [`LbmBlocking::with_schedule`] runs the
//! same kernel under the wavefront or wavefront-diamond schedules
//! instead (see [`threefive_core::exec::schedule`]), which size their
//! own rings.

use std::fmt;
use std::ops::Range;
use std::time::Duration;

use threefive_core::exec::engine35::{
    stream_chunk, Blocking35, BoundaryPolicy, PlaneKernel, Rings, SweepCtx, TileGeom,
};
use threefive_core::exec::ScheduleKind;
use threefive_grid::{CellFlags, Real, SoaGrid};
use threefive_sync::{Observer, SharedSlice, SpinBarrier, SyncError, ThreadTeam};

use crate::model::Q;
use crate::step::{row_update, PullSource};
use crate::Lattice;

/// Propagation radius of D3Q19 (L∞ norm).
const R: usize = 1;

/// 3.5-D blocking parameters for the lattice executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LbmBlocking {
    /// Owned tile extent along X.
    pub dim_x: usize,
    /// Owned tile extent along Y.
    pub dim_y: usize,
    /// Temporal blocking factor.
    pub dim_t: usize,
    /// Which lag/ring/barrier schedule streams the chunk.
    pub schedule: ScheduleKind,
}

impl LbmBlocking {
    /// Creates blocking parameters under the paper's lag schedule.
    ///
    /// # Panics
    /// Panics if any parameter is zero; see
    /// [`try_new`](LbmBlocking::try_new) for the non-panicking variant.
    pub fn new(dim_x: usize, dim_y: usize, dim_t: usize) -> Self {
        match Self::try_new(dim_x, dim_y, dim_t) {
            Ok(b) => b,
            Err(_) => panic!("LbmBlocking: zero parameter"),
        }
    }

    /// Creates blocking parameters, rejecting zero extents with a typed
    /// error instead of panicking — the CLI and bench entry points route
    /// through this so user input cannot reach the `assert!`.
    pub fn try_new(dim_x: usize, dim_y: usize, dim_t: usize) -> Result<Self, LbmError> {
        if dim_x == 0 || dim_y == 0 || dim_t == 0 {
            return Err(LbmError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            });
        }
        Ok(Self {
            dim_x,
            dim_y,
            dim_t,
            schedule: ScheduleKind::Lag35d,
        })
    }

    /// The same blocking under a different temporal schedule.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Typed errors for the lattice executors' fallible entry points.
#[derive(Clone, Debug, PartialEq)]
pub enum LbmError {
    /// A blocking parameter was zero; the 3.5-D geometry is undefined.
    InvalidBlocking {
        /// Requested owned-tile extent along X.
        dim_x: usize,
        /// Requested owned-tile extent along Y.
        dim_y: usize,
        /// Requested temporal factor.
        dim_t: usize,
    },
    /// The parallel substrate failed: a member panicked, the barrier was
    /// poisoned, or a watchdog deadline expired.
    Sync(SyncError),
    /// A distribution value went non-finite (NaN/∞).
    NonFinite {
        /// Distribution component `q` containing the value.
        comp: usize,
        /// Lattice site `(x, y, z)` of the value.
        at: (usize, usize, usize),
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbmError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            } => write!(
                f,
                "invalid LBM 3.5-D blocking {dim_x}x{dim_y} dimT={dim_t}: \
                 every parameter must be positive"
            ),
            LbmError::Sync(e) => write!(f, "LBM parallel sweep failed: {e}"),
            LbmError::NonFinite { comp, at, value } => write!(
                f,
                "non-finite distribution f[{comp}] = {value} at ({}, {}, {})",
                at.0, at.1, at.2
            ),
        }
    }
}

impl std::error::Error for LbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LbmError::Sync(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SyncError> for LbmError {
    fn from(e: SyncError) -> Self {
        LbmError::Sync(e)
    }
}

/// Temporal-only blocking: tile = the whole XY plane (paper's
/// "only temporal blocking" bars, which help only when the plane rings fit
/// in cache).
pub fn lbm_temporal_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> u64 {
    let d = lat.dim();
    lbm35d_sweep(lat, steps, LbmBlocking::new(d.nx, d.ny, dim_t), team)
}

/// Advances the lattice `steps` time steps with 3.5-D blocking.
///
/// Bit-exact with [`lbm_naive_sweep`](crate::lbm_naive_sweep) in SIMD mode
/// for every tiling, temporal factor and team size. Returns the number of
/// site updates.
///
/// # Panics
/// Panics if the parallel substrate fails; see [`try_lbm35d_sweep`] for
/// the non-panicking, watchdogged variant.
pub fn lbm35d_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
) -> u64 {
    match try_lbm35d_sweep(lat, steps, b, team, None, &Observer::disabled()) {
        Ok(updates) => updates,
        Err(e) => panic!("lbm35d_sweep: {e}"),
    }
}

/// Fault-tolerant, observable 3.5-D LBM sweep — the single entry point
/// behind every lattice executor variant.
///
/// Behaves like [`lbm35d_sweep`], but failures inside the parallel
/// region surface as [`LbmError`] instead of panics or hangs, exactly as
/// [`try_parallel35d_sweep`](threefive_core::exec::try_parallel35d_sweep)
/// does for the stencil: a member panic poisons the per-Z-step barrier
/// and drains the team ([`LbmError::Sync`] /
/// [`SyncError::TeamPanicked`]), and `deadline: Some(d)` bounds how long
/// healthy members wait on a stalled one
/// ([`SyncError::BarrierTimeout`]). Observability composes through
/// `obs`: [`Observer::with_instrument`] accumulates per-thread
/// compute/barrier-wait timing, [`Observer::with_tracer`] records one
/// plane span per streamed Z plane × time level and one barrier span per
/// episode, and [`Observer::disabled`] never reads the clock.
///
/// On `Err` the lattice contents are unspecified (a chunk may be
/// partially committed); callers that need rollback must snapshot first,
/// as the facade's `run_lbm_plan` ladder does.
pub fn try_lbm35d_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
    deadline: Option<Duration>,
    obs: &Observer<'_>,
) -> Result<u64, LbmError> {
    LbmBlocking::try_new(b.dim_x, b.dim_y, b.dim_t)?;
    let fallback;
    let team = match team {
        Some(t) => t,
        None => {
            fallback = ThreadTeam::new(1);
            &fallback
        }
    };
    let dim = lat.dim();
    let omega = lat.omega;
    let barrier = SpinBarrier::new(team.threads());
    // The engine's blocking type mirrors the LBM one field-for-field.
    let eb = Blocking35 {
        dim_x: b.dim_x,
        dim_y: b.dim_y,
        dim_t: b.dim_t,
        schedule: b.schedule,
    };
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let (flags, simple, src, dst) = lat.split_step();
        let dst_views: Vec<SharedSlice<'_, T>> =
            dst.comps_mut().into_iter().map(SharedSlice::new).collect();
        let planes = LbmPlanes {
            src,
            dst: &dst_views,
            flags,
            simple,
            omega,
        };
        let ctx = SweepCtx {
            team,
            barrier: &barrier,
            deadline,
            obs,
        };
        stream_chunk(&planes, dim, eb, chunk, &ctx, |_| {})?;
        lat.swap();
        remaining -= chunk;
    }
    Ok(dim.len() as u64 * steps as u64)
}

/// The D3Q19 workload as a [`PlaneKernel`]: level 1 pulls from the source
/// lattice, intermediate levels read/write 19-component plane rings, the
/// final level writes the destination lattice. Non-fluid Z-boundary
/// planes are copied from the time-invariant source — into rings for
/// intermediate levels, into the destination for the final level.
struct LbmPlanes<'a, T: Real> {
    src: &'a SoaGrid<T>,
    dst: &'a [SharedSlice<'a, T>],
    flags: &'a CellFlags,
    simple: &'a [u8],
    omega: T,
}

impl<T: Real> PlaneKernel<T> for LbmPlanes<'_, T> {
    fn radius(&self) -> usize {
        R
    }

    fn boundary(&self) -> BoundaryPolicy {
        BoundaryPolicy::FaceExtended
    }

    fn components(&self) -> usize {
        Q
    }

    fn process_level(
        &self,
        geom: &TileGeom,
        rings: &Rings<'_, T>,
        t: usize,
        z: usize,
        my_rows: &Range<usize>,
    ) {
        let c = geom.levels();
        let dim = geom.dim();
        let (gx0, gy0, lx) = (geom.gx0(), geom.gy0(), geom.lx());
        let is_final = t == c;
        let z_boundary = z < R || z >= dim.nz - R;

        if z_boundary {
            // Non-fluid planes: propagate the time-invariant source values
            // to wherever the consumer will read them.
            if !is_final {
                for row in my_rows.clone() {
                    let y = gy0 + row;
                    let i = dim.idx(gx0, y, z);
                    for q in 0..Q {
                        // SAFETY: this thread owns `row`.
                        let dst = unsafe { rings.row_mut(t - 1, z, q, row, 0, lx) };
                        dst.copy_from_slice(&self.src.comp(q)[i..i + lx]);
                    }
                }
            } else {
                let xs = geom.compute_x(c);
                if xs.is_empty() {
                    return;
                }
                let ys = geom.compute_y(c);
                for row in my_rows.clone() {
                    let y = gy0 + row;
                    if !ys.contains(&y) {
                        continue;
                    }
                    let i = dim.idx(xs.start, y, z);
                    for (q, view) in self.dst.iter().enumerate() {
                        // SAFETY: this thread owns row `y` of the
                        // destination for this tile's X range.
                        let dst = unsafe { view.slice_mut(i, xs.len()) };
                        dst.copy_from_slice(&self.src.comp(q)[i..i + xs.len()]);
                    }
                }
            }
            return;
        }

        let xs = geom.compute_x(t);
        let ys = geom.compute_y(t);
        if xs.is_empty() {
            return;
        }
        let row_lo = ys.start.max(gy0 + my_rows.start);
        let row_hi = ys.end.min(gy0 + my_rows.end);
        let mut out_rows: Vec<&mut [T]> = Vec::with_capacity(Q);
        for y in row_lo..row_hi {
            out_rows.clear();
            if is_final {
                let i = dim.idx(xs.start, y, z);
                for view in self.dst {
                    // SAFETY: this thread owns row `y` of the destination
                    // for this tile's X range.
                    out_rows.push(unsafe { view.slice_mut(i, xs.len()) });
                }
            } else {
                for q in 0..Q {
                    // SAFETY: this thread owns row `y`.
                    out_rows.push(unsafe {
                        rings.row_mut(t - 1, z, q, y - gy0, xs.start - gx0, xs.len())
                    });
                }
            }
            if t == 1 {
                row_update(
                    &self.src,
                    self.src,
                    self.flags,
                    self.simple,
                    self.omega,
                    y,
                    z,
                    xs.clone(),
                    &mut out_rows,
                    true,
                );
            } else {
                let rsrc = RingSrc {
                    rings,
                    ring: t - 2,
                    gx0,
                    gy0,
                    lx,
                };
                row_update(
                    &rsrc,
                    self.src,
                    self.flags,
                    self.simple,
                    self.omega,
                    y,
                    z,
                    xs.clone(),
                    &mut out_rows,
                    true,
                );
            }
        }
    }
}

/// Pull source backed by an engine ring (global-coordinate adapter).
struct RingSrc<'b, 'a, T> {
    rings: &'b Rings<'a, T>,
    ring: usize,
    gx0: usize,
    gy0: usize,
    lx: usize,
}

impl<T: Real> PullSource<T> for RingSrc<'_, '_, T> {
    #[inline(always)]
    fn row(&self, q: usize, x0: usize, y: usize, z: usize, len: usize) -> &[T] {
        // SAFETY: the pipeline only reads planes completed in earlier
        // barrier-separated steps, and ring slots written this step are
        // disjoint from slots read this step.
        let plane = unsafe { self.rings.plane(self.ring, z, q) };
        let off = (y - self.gy0) * self.lx + (x0 - self.gx0);
        &plane[off..off + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::step::{lbm_naive_sweep, LbmMode};
    use threefive_grid::Dim3;
    use threefive_sync::{Instrument, TraceEventKind, Tracer};

    fn assert_lattices_equal<T: Real>(a: &Lattice<T>, b: &Lattice<T>, what: &str) {
        for q in 0..Q {
            assert_eq!(a.src().comp(q), b.src().comp(q), "{what}: comp {q}");
        }
    }

    fn perturb<T: Real>(lat: &mut Lattice<T>) {
        let d = lat.dim();
        for z in 1..d.nz - 1 {
            for y in 1..d.ny - 1 {
                for x in 1..d.nx - 1 {
                    if lat.flags().get(x, y, z) != threefive_grid::CellKind::Fluid {
                        continue;
                    }
                    let rho =
                        T::from_f64(1.0 + 0.02 * (((x * 3 + y * 5 + z * 7) % 9) as f64 - 4.0));
                    let u = [
                        T::from_f64(0.008 * ((x % 3) as f64 - 1.0)),
                        T::from_f64(0.008 * ((y % 3) as f64 - 1.0)),
                        T::from_f64(0.008 * ((z % 3) as f64 - 1.0)),
                    ];
                    lat.set_equilibrium(x, y, z, rho, u);
                }
            }
        }
    }

    #[test]
    fn blocked_matches_naive_across_tilings() {
        let d = Dim3::new(13, 11, 9);
        let mut want = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, 4, LbmMode::Simd, None);
        for (tx, ty, dt) in [
            (6usize, 5usize, 2usize),
            (13, 11, 2),
            (4, 4, 3),
            (13, 11, 1),
            (5, 11, 4),
        ] {
            let mut got = scenarios::closed_box::<f32>(d, 1.3);
            perturb(&mut got);
            lbm35d_sweep(&mut got, 4, LbmBlocking::new(tx, ty, dt), None);
            assert_lattices_equal(&want, &got, &format!("tile {tx}x{ty} dimT={dt}"));
        }
    }

    #[test]
    fn blocked_matches_naive_f64_cavity() {
        let d = Dim3::cube(10);
        let mut want = scenarios::lid_driven_cavity::<f64>(d, 1.1, 0.08);
        lbm_naive_sweep(&mut want, 5, LbmMode::Simd, None);
        let mut got = scenarios::lid_driven_cavity::<f64>(d, 1.1, 0.08);
        lbm35d_sweep(&mut got, 5, LbmBlocking::new(5, 4, 3), None);
        assert_lattices_equal(&want, &got, "cavity");
    }

    #[test]
    fn blocked_matches_naive_with_interior_obstacle() {
        // A sphere in the channel exercises bounce-back inside tiles and
        // across tile seams.
        let d = Dim3::new(18, 10, 10);
        let mut want = scenarios::channel_with_sphere::<f32>(d, 1.0, 0.04, 2.5);
        lbm_naive_sweep(&mut want, 4, LbmMode::Simd, None);
        let mut got = scenarios::channel_with_sphere::<f32>(d, 1.0, 0.04, 2.5);
        lbm35d_sweep(&mut got, 4, LbmBlocking::new(7, 6, 2), None);
        assert_lattices_equal(&want, &got, "channel");
    }

    #[test]
    fn parallel_blocked_matches_for_every_team_size() {
        let d = Dim3::cube(9);
        let mut want = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
        lbm_naive_sweep(&mut want, 3, LbmMode::Simd, None);
        for threads in [1usize, 2, 4, 5] {
            let team = ThreadTeam::new(threads);
            let mut got = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
            lbm35d_sweep(&mut got, 3, LbmBlocking::new(4, 4, 3), Some(&team));
            assert_lattices_equal(&want, &got, &format!("threads {threads}"));
        }
    }

    #[test]
    fn temporal_only_matches_naive() {
        let d = Dim3::cube(8);
        let mut want = scenarios::closed_box::<f64>(d, 1.5);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, 6, LbmMode::Simd, None);
        let mut got = scenarios::closed_box::<f64>(d, 1.5);
        perturb(&mut got);
        lbm_temporal_sweep(&mut got, 6, 3, None);
        assert_lattices_equal(&want, &got, "temporal-only");
    }

    #[test]
    fn steps_not_multiple_of_dim_t() {
        let d = Dim3::cube(8);
        for steps in 1..=5 {
            let mut want = scenarios::closed_box::<f32>(d, 1.2);
            perturb(&mut want);
            lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);
            let mut got = scenarios::closed_box::<f32>(d, 1.2);
            perturb(&mut got);
            lbm35d_sweep(&mut got, steps, LbmBlocking::new(4, 3, 3), None);
            assert_lattices_equal(&want, &got, &format!("steps {steps}"));
        }
    }

    #[test]
    fn invalid_blocking_is_a_typed_error() {
        let d = Dim3::cube(8);
        let mut lat = scenarios::closed_box::<f32>(d, 1.2);
        let b = LbmBlocking {
            dim_x: 4,
            dim_y: 4,
            dim_t: 0,
            schedule: ScheduleKind::Lag35d,
        };
        let err = try_lbm35d_sweep(&mut lat, 2, b, None, None, &Observer::disabled()).unwrap_err();
        assert!(matches!(err, LbmError::InvalidBlocking { dim_t: 0, .. }));
    }

    #[test]
    fn traced_sweep_matches_naive_and_spans_every_plane_level() {
        let d = Dim3::cube(9);
        let (steps, dim_t, threads) = (4usize, 2usize, 2usize);
        let mut want = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);
        let team = ThreadTeam::new(threads);
        let instr = Instrument::enabled(threads);
        let tracer = Tracer::enabled(threads);
        let mut got = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut got);
        try_lbm35d_sweep(
            &mut got,
            steps,
            LbmBlocking::new(d.nx, d.ny, dim_t), // one tile: exact span accounting
            Some(&team),
            None,
            &Observer::new(&instr, &tracer),
        )
        .unwrap();
        assert_lattices_equal(&want, &got, "traced");
        let snap = tracer.snapshot();
        assert_eq!(snap.threads.len(), threads);
        let chunks = steps / dim_t;
        let outer = d.nz + 2 * R * (dim_t - 1);
        for tt in &snap.threads {
            let planes = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Plane { .. }))
                .count();
            assert_eq!(planes, d.nz * dim_t * chunks);
            let barriers = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Barrier { .. }))
                .count();
            assert_eq!(barriers, outer * chunks);
        }
        assert!(instr.timing().total_compute_ns() > 0);
    }

    #[test]
    fn every_schedule_matches_naive() {
        let d = Dim3::new(11, 9, 10);
        let mut want = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
        lbm_naive_sweep(&mut want, 4, LbmMode::Simd, None);
        for schedule in ScheduleKind::ALL {
            for threads in [1usize, 3] {
                let team = ThreadTeam::new(threads);
                let mut got = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
                lbm35d_sweep(
                    &mut got,
                    4,
                    LbmBlocking::new(5, 4, 2).with_schedule(schedule),
                    Some(&team),
                );
                assert_lattices_equal(&want, &got, &format!("{schedule} threads {threads}"));
            }
        }
    }

    #[test]
    fn blocked_conserves_mass() {
        let d = Dim3::cube(10);
        let mut lat = scenarios::closed_box::<f64>(d, 1.4);
        perturb(&mut lat);
        let before = lat.fluid_mass();
        lbm35d_sweep(&mut lat, 12, LbmBlocking::new(5, 5, 3), None);
        let after = lat.fluid_mass();
        assert!((after - before).abs() / before < 1e-12);
    }
}
