//! 3.5-D blocking for the lattice Boltzmann method (paper §VI-B).
//!
//! Same pipeline structure as the stencil executor
//! (`threefive_core::exec::parallel35d_sweep`): XY tiles stream through Z;
//! time level 1 pulls from the source lattice, intermediate levels live in
//! tile-local plane rings (19 distribution planes per ring slot), the last
//! level writes the destination lattice. Every thread owns a band of rows
//! of every sub-plane at every level, with one barrier per outer Z step.
//!
//! Differences from the scalar-stencil pipeline, both induced by the
//! lattice's flag semantics:
//!
//! * valid ranges extend to the grid faces (face sites are non-fluid by
//!   construction and are *copied* from the time-invariant source, which
//!   doubles as the Dirichlet rim);
//! * every committed cell is written each chunk (there is no pre-
//!   initialized destination), so Z-boundary planes are copied into the
//!   destination too.
//!
//! D3Q19 propagation has L∞ radius 1, so `R = 1` throughout; rings carry
//! `max(2R+2, 3R+1) = 4` sub-planes per level, matching the paper.

use std::fmt;

use threefive_grid::partition::even_range;
use threefive_grid::{Dim3, PlaneRing, Real, SoaGrid};
use threefive_sync::{Instrument, SharedSlice, SpinBarrier, ThreadTeam, TraceEventKind, Tracer};

use crate::model::Q;
use crate::step::{row_update, PullSource};
use crate::Lattice;

/// Propagation radius of D3Q19 (L∞ norm).
const R: usize = 1;

/// 3.5-D blocking parameters for the lattice executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LbmBlocking {
    /// Owned tile extent along X.
    pub dim_x: usize,
    /// Owned tile extent along Y.
    pub dim_y: usize,
    /// Temporal blocking factor.
    pub dim_t: usize,
}

impl LbmBlocking {
    /// Creates blocking parameters.
    ///
    /// # Panics
    /// Panics if any parameter is zero; see
    /// [`try_new`](LbmBlocking::try_new) for the non-panicking variant.
    pub fn new(dim_x: usize, dim_y: usize, dim_t: usize) -> Self {
        match Self::try_new(dim_x, dim_y, dim_t) {
            Ok(b) => b,
            Err(_) => panic!("LbmBlocking: zero parameter"),
        }
    }

    /// Creates blocking parameters, rejecting zero extents with a typed
    /// error instead of panicking — the CLI and bench entry points route
    /// through this so user input cannot reach the `assert!`.
    pub fn try_new(dim_x: usize, dim_y: usize, dim_t: usize) -> Result<Self, LbmError> {
        if dim_x == 0 || dim_y == 0 || dim_t == 0 {
            return Err(LbmError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            });
        }
        Ok(Self {
            dim_x,
            dim_y,
            dim_t,
        })
    }
}

/// Typed errors for the lattice executors' fallible entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LbmError {
    /// A blocking parameter was zero; the 3.5-D geometry is undefined.
    InvalidBlocking {
        /// Requested owned-tile extent along X.
        dim_x: usize,
        /// Requested owned-tile extent along Y.
        dim_y: usize,
        /// Requested temporal factor.
        dim_t: usize,
    },
}

impl fmt::Display for LbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbmError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            } => write!(
                f,
                "invalid LBM 3.5-D blocking {dim_x}x{dim_y} dimT={dim_t}: \
                 every parameter must be positive"
            ),
        }
    }
}

impl std::error::Error for LbmError {}

/// Temporal-only blocking: tile = the whole XY plane (paper's
/// "only temporal blocking" bars, which help only when the plane rings fit
/// in cache).
pub fn lbm_temporal_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    dim_t: usize,
    team: Option<&ThreadTeam>,
) -> u64 {
    let d = lat.dim();
    lbm35d_sweep(lat, steps, LbmBlocking::new(d.nx, d.ny, dim_t), team)
}

/// Advances the lattice `steps` time steps with 3.5-D blocking.
///
/// Bit-exact with [`lbm_naive_sweep`](crate::lbm_naive_sweep) in SIMD mode
/// for every tiling, temporal factor and team size. Returns the number of
/// site updates.
pub fn lbm35d_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
) -> u64 {
    lbm35d_sweep_instrumented(lat, steps, b, team, &Instrument::disabled())
}

/// [`lbm35d_sweep`] with per-thread compute/barrier-wait timing.
///
/// Identical results and (with a disabled handle) identical hot loop; an
/// enabled [`Instrument`] accumulates each team member's nanoseconds of
/// compute vs. barrier wait, which the benchmark harness reports as the
/// barrier-wait share.
pub fn lbm35d_sweep_instrumented<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
    instr: &Instrument,
) -> u64 {
    lbm35d_sweep_traced(lat, steps, b, team, instr, &Tracer::disabled())
}

/// [`lbm35d_sweep_instrumented`] with pipeline tracing.
///
/// Each team member records one [`TraceEventKind::Plane`] span per
/// streamed Z plane × time level and one [`TraceEventKind::Barrier`]
/// span per barrier episode into `tracer`, exactly like the stencil
/// pipeline. A disabled tracer never reads the clock and leaves the
/// lattice bit-identical to the untraced fast path.
pub fn lbm35d_sweep_traced<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
    instr: &Instrument,
    tracer: &Tracer,
) -> u64 {
    let fallback;
    let team = match team {
        Some(t) => t,
        None => {
            fallback = ThreadTeam::new(1);
            &fallback
        }
    };
    let dim = lat.dim();
    let omega = lat.omega;
    let barrier = SpinBarrier::new(team.threads());
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let (flags, simple, src, dst) = lat.split_step();
        let dst_views: Vec<SharedSlice<'_, T>> =
            dst.comps_mut().into_iter().map(SharedSlice::new).collect();
        let mut oy = 0usize;
        while oy < dim.ny {
            let oy1 = (oy + b.dim_y).min(dim.ny);
            let mut ox = 0usize;
            while ox < dim.nx {
                let ox1 = (ox + b.dim_x).min(dim.nx);
                let geom = LGeom::new(dim, chunk, ox, ox1, oy, oy1);
                tile_pipeline(
                    src, &dst_views, flags, simple, omega, &geom, team, &barrier, instr, tracer,
                );
                ox = ox1;
            }
            oy = oy1;
        }
        lat.swap();
        remaining -= chunk;
    }
    dim.len() as u64 * steps as u64
}

/// Tile geometry with the lattice's face-extended valid ranges.
struct LGeom {
    dim: Dim3,
    c: usize,
    gx0: usize,
    gx1: usize,
    gy0: usize,
    gy1: usize,
}

impl LGeom {
    fn new(dim: Dim3, c: usize, ox0: usize, ox1: usize, oy0: usize, oy1: usize) -> Self {
        let h = R * c;
        Self {
            dim,
            c,
            gx0: ox0.saturating_sub(h),
            gx1: (ox1 + h).min(dim.nx),
            gy0: oy0.saturating_sub(h),
            gy1: (oy1 + h).min(dim.ny),
        }
    }

    fn lx(&self) -> usize {
        self.gx1 - self.gx0
    }
    fn ly(&self) -> usize {
        self.gy1 - self.gy0
    }

    /// Valid X range at level `t`: shrink `R·t` from tile-interior sides,
    /// extend to the face at grid faces (face sites are copied, not
    /// computed, by the row routine).
    fn valid_x(&self, t: usize) -> std::ops::Range<usize> {
        let lo = if self.gx0 == 0 { 0 } else { self.gx0 + R * t };
        let hi = if self.gx1 == self.dim.nx {
            self.dim.nx
        } else {
            self.gx1.saturating_sub(R * t)
        };
        lo..hi.max(lo)
    }

    /// Valid Y range at level `t`.
    fn valid_y(&self, t: usize) -> std::ops::Range<usize> {
        let lo = if self.gy0 == 0 { 0 } else { self.gy0 + R * t };
        let hi = if self.gy1 == self.dim.ny {
            self.dim.ny
        } else {
            self.gy1.saturating_sub(R * t)
        };
        lo..hi.max(lo)
    }
}

/// Shared view of one intermediate level's ring: each slot stores 19
/// component planes of `lx × ly`, component-major.
struct RingView<'a, T> {
    view: SharedSlice<'a, T>,
    slots: usize,
    lx: usize,
    gx0: usize,
    gy0: usize,
}

impl<'a, T: Real> RingView<'a, T> {
    fn new(ring: &'a mut PlaneRing<T>, geom: &LGeom) -> Self {
        let slots = ring.slots();
        Self {
            view: SharedSlice::new(ring.as_mut_slice()),
            slots,
            lx: geom.lx(),
            gx0: geom.gx0,
            gy0: geom.gy0,
        }
    }

    #[inline]
    fn base(&self, z: usize, q: usize, plane_area: usize) -> usize {
        ((z % self.slots) * Q + q) * plane_area
    }

    #[inline]
    fn plane_area(&self) -> usize {
        self.view.len() / (self.slots * Q)
    }

    /// Mutable row segment (global coords) of component `q`, plane `z`.
    ///
    /// # Safety
    /// The calling thread must own row `y` for this step.
    #[inline]
    // Interior mutability through SharedSlice; exclusivity is the contract.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, q: usize, z: usize, y: usize, x0: usize, len: usize) -> &mut [T] {
        let off = self.base(z, q, self.plane_area()) + (y - self.gy0) * self.lx + (x0 - self.gx0);
        // SAFETY: forwarded contract; bounds checked by SharedSlice.
        unsafe { self.view.slice_mut(off, len) }
    }
}

/// Pull source backed by a ring (global-coordinate adapter).
struct RingSrc<'b, 'a, T> {
    rv: &'b RingView<'a, T>,
}

impl<T: Real> PullSource<T> for RingSrc<'_, '_, T> {
    #[inline(always)]
    fn row(&self, q: usize, x0: usize, y: usize, z: usize, len: usize) -> &[T] {
        let rv = self.rv;
        let off = rv.base(z, q, rv.plane_area()) + (y - rv.gy0) * rv.lx + (x0 - rv.gx0);
        // SAFETY: the pipeline only reads planes completed in earlier
        // barrier-separated steps, and ring slots written this step are
        // disjoint from slots read this step.
        unsafe { rv.view.slice(off, len) }
    }
}

/// Runs the pipeline for one tile × chunk on the team.
#[allow(clippy::too_many_arguments)]
fn tile_pipeline<T: Real>(
    src: &SoaGrid<T>,
    dst_views: &[SharedSlice<'_, T>],
    flags: &threefive_grid::CellFlags,
    simple: &[u8],
    omega: T,
    geom: &LGeom,
    team: &ThreadTeam,
    barrier: &SpinBarrier,
    instr: &Instrument,
    tracer: &Tracer,
) {
    let c = geom.c;
    let (lx, ly) = (geom.lx(), geom.ly());
    let slots = (2 * R + 2).max(3 * R + 1);
    let mut rings: Vec<PlaneRing<T>> = (1..c).map(|_| PlaneRing::new(slots, Q * lx * ly)).collect();
    let ring_views: Vec<RingView<'_, T>> =
        rings.iter_mut().map(|rg| RingView::new(rg, geom)).collect();

    let dim = geom.dim;
    let n_threads = team.threads();
    let outer_steps = dim.nz + 2 * R * (c - 1);

    team.run(|tid| {
        let my_rows = even_range(ly, n_threads, tid);
        let mut out_rows: Vec<&mut [T]> = Vec::with_capacity(Q);
        // `None` when instrumentation is disabled: no clock reads at all.
        let mut compute_start = instr.now();
        for s in 0..outer_steps {
            for t in 1..=c {
                let lag = 2 * R * (t - 1);
                if s < lag {
                    continue;
                }
                let z = s - lag;
                if z >= dim.nz {
                    continue;
                }
                let span0 = tracer.now_ns();
                // Level body as a closure so its early exits still reach
                // the span record below.
                let mut level_body = || {
                    let is_final = t == c;
                    let z_boundary = z < R || z >= dim.nz - R;

                    if z_boundary {
                        // Non-fluid planes: propagate the time-invariant
                        // source values to wherever the consumer will read
                        // them.
                        if !is_final {
                            for row in my_rows.clone() {
                                let y = geom.gy0 + row;
                                for q in 0..Q {
                                    // SAFETY: this thread owns `row`.
                                    let dst =
                                        unsafe { ring_views[t - 1].row_mut(q, z, y, geom.gx0, lx) };
                                    let i = dim.idx(geom.gx0, y, z);
                                    dst.copy_from_slice(&src.comp(q)[i..i + lx]);
                                }
                            }
                        } else {
                            let xs = geom.valid_x(c);
                            if xs.is_empty() {
                                return;
                            }
                            for row in my_rows.clone() {
                                let y = geom.gy0 + row;
                                if !geom.valid_y(c).contains(&y) {
                                    continue;
                                }
                                for (q, view) in dst_views.iter().enumerate() {
                                    let i = dim.idx(xs.start, y, z);
                                    // SAFETY: this thread owns row `y` of the
                                    // destination for this tile's X range.
                                    let dst = unsafe { view.slice_mut(i, xs.len()) };
                                    dst.copy_from_slice(&src.comp(q)[i..i + xs.len()]);
                                }
                            }
                        }
                        return;
                    }

                    let xs = geom.valid_x(t);
                    let ys = geom.valid_y(t);
                    if xs.is_empty() {
                        return;
                    }
                    let row_lo = ys.start.max(geom.gy0 + my_rows.start);
                    let row_hi = ys.end.min(geom.gy0 + my_rows.end);
                    for y in row_lo..row_hi {
                        out_rows.clear();
                        if is_final {
                            for view in dst_views {
                                let i = dim.idx(xs.start, y, z);
                                // SAFETY: this thread owns row `y` of the
                                // destination for this tile's X range.
                                out_rows.push(unsafe { view.slice_mut(i, xs.len()) });
                            }
                        } else {
                            for q in 0..Q {
                                // SAFETY: this thread owns row `y`.
                                out_rows.push(unsafe {
                                    ring_views[t - 1].row_mut(q, z, y, xs.start, xs.len())
                                });
                            }
                        }
                        if t == 1 {
                            row_update(
                                &src,
                                src,
                                flags,
                                simple,
                                omega,
                                y,
                                z,
                                xs.clone(),
                                &mut out_rows,
                                true,
                            );
                        } else {
                            let rsrc = RingSrc {
                                rv: &ring_views[t - 2],
                            };
                            row_update(
                                &rsrc,
                                src,
                                flags,
                                simple,
                                omega,
                                y,
                                z,
                                xs.clone(),
                                &mut out_rows,
                                true,
                            );
                        }
                    }
                };
                level_body();
                if let Some(t0) = span0 {
                    let t1 = tracer.now_ns().unwrap_or(t0);
                    let kind = TraceEventKind::Plane {
                        z: z as u32,
                        level: t as u32,
                    };
                    tracer.record(tid, kind, t0, t1);
                }
            }
            if let Some(t0) = compute_start {
                instr.add_compute_ns(tid, t0.elapsed().as_nanos() as u64);
            }
            let t1 = instr.now();
            let bar0 = tracer.now_ns();
            barrier.wait();
            if let Some(t0) = bar0 {
                let end = tracer.now_ns().unwrap_or(t0);
                tracer.record(tid, TraceEventKind::Barrier { step: s as u32 }, t0, end);
            }
            if let Some(t1) = t1 {
                instr.add_barrier_ns(tid, t1.elapsed().as_nanos() as u64);
            }
            compute_start = instr.now();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::step::{lbm_naive_sweep, LbmMode};

    fn assert_lattices_equal<T: Real>(a: &Lattice<T>, b: &Lattice<T>, what: &str) {
        for q in 0..Q {
            assert_eq!(a.src().comp(q), b.src().comp(q), "{what}: comp {q}");
        }
    }

    fn perturb<T: Real>(lat: &mut Lattice<T>) {
        let d = lat.dim();
        for z in 1..d.nz - 1 {
            for y in 1..d.ny - 1 {
                for x in 1..d.nx - 1 {
                    if lat.flags().get(x, y, z) != threefive_grid::CellKind::Fluid {
                        continue;
                    }
                    let rho =
                        T::from_f64(1.0 + 0.02 * (((x * 3 + y * 5 + z * 7) % 9) as f64 - 4.0));
                    let u = [
                        T::from_f64(0.008 * ((x % 3) as f64 - 1.0)),
                        T::from_f64(0.008 * ((y % 3) as f64 - 1.0)),
                        T::from_f64(0.008 * ((z % 3) as f64 - 1.0)),
                    ];
                    lat.set_equilibrium(x, y, z, rho, u);
                }
            }
        }
    }

    #[test]
    fn blocked_matches_naive_across_tilings() {
        let d = Dim3::new(13, 11, 9);
        let mut want = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, 4, LbmMode::Simd, None);
        for (tx, ty, dt) in [
            (6usize, 5usize, 2usize),
            (13, 11, 2),
            (4, 4, 3),
            (13, 11, 1),
            (5, 11, 4),
        ] {
            let mut got = scenarios::closed_box::<f32>(d, 1.3);
            perturb(&mut got);
            lbm35d_sweep(&mut got, 4, LbmBlocking::new(tx, ty, dt), None);
            assert_lattices_equal(&want, &got, &format!("tile {tx}x{ty} dimT={dt}"));
        }
    }

    #[test]
    fn blocked_matches_naive_f64_cavity() {
        let d = Dim3::cube(10);
        let mut want = scenarios::lid_driven_cavity::<f64>(d, 1.1, 0.08);
        lbm_naive_sweep(&mut want, 5, LbmMode::Simd, None);
        let mut got = scenarios::lid_driven_cavity::<f64>(d, 1.1, 0.08);
        lbm35d_sweep(&mut got, 5, LbmBlocking::new(5, 4, 3), None);
        assert_lattices_equal(&want, &got, "cavity");
    }

    #[test]
    fn blocked_matches_naive_with_interior_obstacle() {
        // A sphere in the channel exercises bounce-back inside tiles and
        // across tile seams.
        let d = Dim3::new(18, 10, 10);
        let mut want = scenarios::channel_with_sphere::<f32>(d, 1.0, 0.04, 2.5);
        lbm_naive_sweep(&mut want, 4, LbmMode::Simd, None);
        let mut got = scenarios::channel_with_sphere::<f32>(d, 1.0, 0.04, 2.5);
        lbm35d_sweep(&mut got, 4, LbmBlocking::new(7, 6, 2), None);
        assert_lattices_equal(&want, &got, "channel");
    }

    #[test]
    fn parallel_blocked_matches_for_every_team_size() {
        let d = Dim3::cube(9);
        let mut want = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
        lbm_naive_sweep(&mut want, 3, LbmMode::Simd, None);
        for threads in [1usize, 2, 4, 5] {
            let team = ThreadTeam::new(threads);
            let mut got = scenarios::lid_driven_cavity::<f32>(d, 1.2, 0.06);
            lbm35d_sweep(&mut got, 3, LbmBlocking::new(4, 4, 3), Some(&team));
            assert_lattices_equal(&want, &got, &format!("threads {threads}"));
        }
    }

    #[test]
    fn temporal_only_matches_naive() {
        let d = Dim3::cube(8);
        let mut want = scenarios::closed_box::<f64>(d, 1.5);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, 6, LbmMode::Simd, None);
        let mut got = scenarios::closed_box::<f64>(d, 1.5);
        perturb(&mut got);
        lbm_temporal_sweep(&mut got, 6, 3, None);
        assert_lattices_equal(&want, &got, "temporal-only");
    }

    #[test]
    fn steps_not_multiple_of_dim_t() {
        let d = Dim3::cube(8);
        for steps in 1..=5 {
            let mut want = scenarios::closed_box::<f32>(d, 1.2);
            perturb(&mut want);
            lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);
            let mut got = scenarios::closed_box::<f32>(d, 1.2);
            perturb(&mut got);
            lbm35d_sweep(&mut got, steps, LbmBlocking::new(4, 3, 3), None);
            assert_lattices_equal(&want, &got, &format!("steps {steps}"));
        }
    }

    #[test]
    fn traced_sweep_matches_naive_and_spans_every_plane_level() {
        let d = Dim3::cube(9);
        let (steps, dim_t, threads) = (4usize, 2usize, 2usize);
        let mut want = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, steps, LbmMode::Simd, None);
        let team = ThreadTeam::new(threads);
        let instr = Instrument::enabled(threads);
        let tracer = Tracer::enabled(threads);
        let mut got = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut got);
        lbm35d_sweep_traced(
            &mut got,
            steps,
            LbmBlocking::new(d.nx, d.ny, dim_t), // one tile: exact span accounting
            Some(&team),
            &instr,
            &tracer,
        );
        assert_lattices_equal(&want, &got, "traced");
        let snap = tracer.snapshot();
        assert_eq!(snap.threads.len(), threads);
        let chunks = steps / dim_t;
        let outer = d.nz + 2 * R * (dim_t - 1);
        for tt in &snap.threads {
            let planes = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Plane { .. }))
                .count();
            assert_eq!(planes, d.nz * dim_t * chunks);
            let barriers = tt
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::Barrier { .. }))
                .count();
            assert_eq!(barriers, outer * chunks);
        }
        assert!(instr.timing().total_compute_ns() > 0);
    }

    #[test]
    fn blocked_conserves_mass() {
        let d = Dim3::cube(10);
        let mut lat = scenarios::closed_box::<f64>(d, 1.4);
        perturb(&mut lat);
        let before = lat.fluid_mass();
        lbm35d_sweep(&mut lat, 12, LbmBlocking::new(5, 5, 3), None);
        let after = lat.fluid_mass();
        assert!((after - before).abs() / before < 1e-12);
    }
}
