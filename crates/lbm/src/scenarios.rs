//! Ready-made flow scenarios for examples, tests and benchmarks.

use threefive_grid::{CellFlags, CellKind, Dim3, Real};

use crate::Lattice;

/// Marks every face site of `flags` as the given kind.
pub fn paint_faces(flags: &mut CellFlags, kind: CellKind) {
    let d = flags.dim();
    for z in 0..d.nz {
        for y in 0..d.ny {
            for x in 0..d.nx {
                if x == 0 || x + 1 == d.nx || y == 0 || y + 1 == d.ny || z == 0 || z + 1 == d.nz {
                    flags.set(x, y, z, kind);
                }
            }
        }
    }
}

/// A closed box: bounce-back walls on all six faces, quiescent fluid
/// inside. The canonical mass-conservation testbed.
pub fn closed_box<T: Real>(dim: Dim3, omega: T) -> Lattice<T> {
    let mut flags = CellFlags::all_fluid(dim);
    paint_faces(&mut flags, CellKind::Obstacle);
    Lattice::new(dim, flags, omega)
}

/// Lid-driven cavity: bounce-back walls on five faces, a *fixed* moving
/// lid at `y = ny−1` imposing the equilibrium of `(ρ=1, u=(u_lid, 0, 0))`.
/// The benchmark workload of the paper's LBM figures.
pub fn lid_driven_cavity<T: Real>(dim: Dim3, omega: T, u_lid: T) -> Lattice<T> {
    let mut flags = CellFlags::all_fluid(dim);
    paint_faces(&mut flags, CellKind::Obstacle);
    for z in 0..dim.nz {
        for x in 0..dim.nx {
            flags.set(x, dim.ny - 1, z, CellKind::Fixed);
        }
    }
    let mut lat = Lattice::new(dim, flags, omega);
    for z in 0..dim.nz {
        for x in 0..dim.nx {
            lat.set_equilibrium(x, dim.ny - 1, z, T::ONE, [u_lid, T::ZERO, T::ZERO]);
        }
    }
    lat
}

/// Channel flow past a spherical obstacle: fixed inlet (x = 0) imposing
/// `u = (u_in, 0, 0)`, fixed outlet (x = nx−1) at rest density, bounce-back
/// side walls and a solid sphere of radius `r_obs` at the channel center.
pub fn channel_with_sphere<T: Real>(dim: Dim3, omega: T, u_in: T, r_obs: f64) -> Lattice<T> {
    let mut flags = CellFlags::all_fluid(dim);
    paint_faces(&mut flags, CellKind::Obstacle);
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            flags.set(0, y, z, CellKind::Fixed);
            flags.set(dim.nx - 1, y, z, CellKind::Fixed);
        }
    }
    let (cx, cy, cz) = (
        dim.nx as f64 / 3.0,
        dim.ny as f64 / 2.0,
        dim.nz as f64 / 2.0,
    );
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            for x in 0..dim.nx {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let dz = z as f64 - cz;
                if (dx * dx + dy * dy + dz * dz).sqrt() <= r_obs {
                    flags.set(x, y, z, CellKind::Obstacle);
                }
            }
        }
    }
    let mut lat = Lattice::new(dim, flags, omega);
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            lat.set_equilibrium(0, y, z, T::ONE, [u_in, T::ZERO, T::ZERO]);
            lat.set_equilibrium(dim.nx - 1, y, z, T::ONE, [u_in, T::ZERO, T::ZERO]);
        }
    }
    lat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cavity_has_fixed_lid_row() {
        let d = Dim3::cube(8);
        let lat = lid_driven_cavity::<f64>(d, 1.2, 0.05);
        for z in 0..d.nz {
            for x in 0..d.nx {
                assert_eq!(lat.flags().get(x, d.ny - 1, z), CellKind::Fixed);
            }
        }
        // Lid sites carry the lid velocity.
        let m = lat.macroscopic(3, d.ny - 1, 3);
        assert!((m.u[0].to_f64() - 0.05).abs() < 1e-12);
        // Interior is quiescent fluid.
        assert_eq!(lat.flags().get(3, 3, 3), CellKind::Fluid);
    }

    #[test]
    fn sphere_blocks_the_channel_center() {
        let d = Dim3::new(24, 12, 12);
        let lat = channel_with_sphere::<f32>(d, 1.0, 0.03, 3.0);
        assert_eq!(lat.flags().get(8, 6, 6), CellKind::Obstacle);
        assert_eq!(lat.flags().get(20, 6, 6), CellKind::Fluid);
        assert_eq!(lat.flags().get(0, 6, 6), CellKind::Fixed);
    }

    #[test]
    fn closed_box_fluid_count() {
        let lat = closed_box::<f32>(Dim3::new(6, 5, 4), 1.0);
        assert_eq!(lat.flags().count(CellKind::Fluid), 4 * 3 * 2);
    }
}
