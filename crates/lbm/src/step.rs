//! The fused stream–collide ("pull") update and the no-blocking executors.
//!
//! One row update is shared by every LBM executor in this crate: the naive
//! scalar sweep, the SIMD sweep, the team-parallel sweep, and both 3.5-D
//! pipeline paths. All of them therefore produce bit-identical lattices.

use std::ops::Range;

use threefive_grid::{CellFlags, CellKind, Real, SoaGrid};
use threefive_simd::{NativeF32, NativeF64, Packed, SimdReal};
use threefive_sync::{SharedSlice, ThreadTeam};

use crate::model::{collide, C, OPP, Q};
use crate::Lattice;

/// Update flavor for the no-blocking executors (the first two bars of the
/// paper's Figure 5(a)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbmMode {
    /// Scalar pull–collide at every site.
    Scalar,
    /// SIMD pull–collide on runs of "simple" sites (fluid, no obstacle
    /// neighbor), scalar elsewhere.
    Simd,
}

/// Where a level's pull reads come from: the global source lattice or a
/// tile-local plane ring. Implementations return rows in **global**
/// coordinates.
pub(crate) trait PullSource<T: Real> {
    /// Slice of component `q` covering global `x ∈ [x0, x0+len)` of row
    /// `(y, z)`.
    fn row(&self, q: usize, x0: usize, y: usize, z: usize, len: usize) -> &[T];

    /// Single value of component `q` at a global site.
    #[inline(always)]
    fn at(&self, q: usize, x: usize, y: usize, z: usize) -> T {
        self.row(q, x, y, z, 1)[0]
    }
}

impl<T: Real> PullSource<T> for &SoaGrid<T> {
    #[inline(always)]
    fn row(&self, q: usize, x0: usize, y: usize, z: usize, len: usize) -> &[T] {
        let i = self.dim().idx(x0, y, z);
        &self.comp(q)[i..i + len]
    }
}

/// Computes one row of destination values: for each global `x ∈ xs` of row
/// `(y, z)`, either pull the 19 neighbor distributions from `src` and
/// collide (fluid sites), or copy the site's values from `fixed_src` (the
/// time-invariant global source lattice) for obstacle/fixed sites.
///
/// `out[q][i]` receives component `q` at `x = xs.start + i`.
///
/// Generic over the SIMD width; `use_simd = false` forces the scalar path
/// (the ladder's baseline bar).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pull_collide_row<T, V, S>(
    src: &S,
    fixed_src: &SoaGrid<T>,
    flags: &CellFlags,
    simple: &[u8],
    omega: T,
    y: usize,
    z: usize,
    xs: Range<usize>,
    out: &mut [&mut [T]],
    use_simd: bool,
) where
    T: Real,
    V: SimdReal<Scalar = T>,
    S: PullSource<T>,
{
    debug_assert_eq!(out.len(), Q);
    let dim = fixed_src.dim();
    let row_base = dim.idx(0, y, z);
    let mut x = xs.start;
    while x < xs.end {
        let rel = x - xs.start;
        // SIMD run: V::LANES consecutive simple sites.
        if use_simd
            && x + V::LANES <= xs.end
            && simple[row_base + x..row_base + x + V::LANES]
                .iter()
                .all(|&m| m == 1)
        {
            let mut g: [V; Q] = [V::zero(); Q];
            for (i, gi) in g.iter_mut().enumerate() {
                let (cx, cy, cz) = C[i];
                let sx = (x as i64 - cx as i64) as usize;
                let sy = (y as i64 - cy as i64) as usize;
                let sz = (z as i64 - cz as i64) as usize;
                *gi = V::loadu(src.row(i, sx, sy, sz, V::LANES));
            }
            collide::<V>(&mut g, omega);
            for (i, gi) in g.iter().enumerate() {
                gi.storeu(&mut out[i][rel..]);
            }
            x += V::LANES;
            continue;
        }

        // Scalar site.
        match flags.get(x, y, z) {
            CellKind::Fluid => {
                type V1<T> = Packed<T, 1>;
                let mut g: [V1<T>; Q] = [V1::zero(); Q];
                for (i, gi) in g.iter_mut().enumerate() {
                    let (cx, cy, cz) = C[i];
                    let sx = (x as i64 - cx as i64) as usize;
                    let sy = (y as i64 - cy as i64) as usize;
                    let sz = (z as i64 - cz as i64) as usize;
                    *gi = if flags.get(sx, sy, sz) == CellKind::Obstacle {
                        // Full-way bounce-back: the population that would
                        // stream in from the wall is the opposite one
                        // leaving this site last step.
                        V1::splat(src.at(OPP[i], x, y, z))
                    } else {
                        V1::splat(src.at(i, sx, sy, sz))
                    };
                }
                collide::<V1<T>>(&mut g, omega);
                for (i, gi) in g.iter().enumerate() {
                    out[i][rel] = gi.lane(0);
                }
            }
            _ => {
                // Obstacle and fixed sites keep their (time-invariant)
                // source values.
                for (i, o) in out.iter_mut().enumerate() {
                    o[rel] = fixed_src.get(i, x, y, z);
                }
            }
        }
        x += 1;
    }
}

/// Advances the lattice `steps` time steps with the no-blocking pull
/// executor. Pass a [`ThreadTeam`] to parallelize over lattice rows (the
/// paper's base "parallelized scalar code"); `None` runs inline.
///
/// Returns the number of site updates performed.
pub fn lbm_naive_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    mode: LbmMode,
    team: Option<&ThreadTeam>,
) -> u64 {
    let fallback;
    let team = match team {
        Some(t) => t,
        None => {
            fallback = ThreadTeam::new(1);
            &fallback
        }
    };
    let dim = lat.dim();
    let omega = lat.omega;
    let use_simd = mode == LbmMode::Simd;
    for _ in 0..steps {
        let (flags, simple_mask, src, dst) = lat.split_step();
        let views: Vec<SharedSlice<'_, T>> =
            dst.comps_mut().into_iter().map(SharedSlice::new).collect();
        let n_threads = team.threads();
        team.run(|tid| {
            let rows = threefive_grid::partition::even_range(dim.ny * dim.nz, n_threads, tid);
            // analyze:allow(hot-path-alloc) once per team dispatch, hoisted out of the row loop
            let mut out_rows: Vec<&mut [T]> = Vec::with_capacity(Q);
            for row in rows {
                let (y, z) = (row % dim.ny, row / dim.ny);
                let base = dim.idx(0, y, z);
                out_rows.clear();
                for v in &views {
                    // SAFETY: each thread owns disjoint (y, z) rows.
                    out_rows.push(unsafe { v.slice_mut(base, dim.nx) });
                }
                row_update(
                    &src,
                    src,
                    flags,
                    simple_mask,
                    omega,
                    y,
                    z,
                    0..dim.nx,
                    &mut out_rows,
                    use_simd,
                );
            }
        });
        lat.swap();
    }
    dim.len() as u64 * steps as u64
}

/// Width-dispatching row update shared by the executors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn row_update<T: Real, S: PullSource<T>>(
    src: &S,
    fixed_src: &SoaGrid<T>,
    flags: &CellFlags,
    simple: &[u8],
    omega: T,
    y: usize,
    z: usize,
    xs: Range<usize>,
    out: &mut [&mut [T]],
    use_simd: bool,
) {
    match T::BYTES {
        4 => pull_collide_row::<T, WidthOf4<T>, S>(
            src, fixed_src, flags, simple, omega, y, z, xs, out, use_simd,
        ),
        _ => pull_collide_row::<T, WidthOf2<T>, S>(
            src, fixed_src, flags, simple, omega, y, z, xs, out, use_simd,
        ),
    }
}

/// 4-lane vector for a generic `T` (matches `NativeF32` for `f32`).
type WidthOf4<T> = Packed<T, 4>;
/// 2-lane vector for a generic `T` (matches `NativeF64` for `f64`).
type WidthOf2<T> = Packed<T, 2>;

// The LBM kernels use the portable `Packed` vectors, which compile to the
// same packed SSE instructions at opt-level 3 and stay bit-exact with the
// scalar `Packed<T, 1>` path lane for lane by construction. The widths
// match the paper's SSE layout (4 SP / 2 DP lanes):
const _: () = assert!(NativeF32::LANES == WidthOf4::<f32>::LANES);
const _: () = assert!(NativeF64::LANES == WidthOf2::<f64>::LANES);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use threefive_grid::Dim3;

    fn perturb<T: Real>(lat: &mut Lattice<T>) {
        // Kick the interior away from equilibrium deterministically.
        let d = lat.dim();
        for z in 1..d.nz - 1 {
            for y in 1..d.ny - 1 {
                for x in 1..d.nx - 1 {
                    let rho =
                        T::from_f64(1.0 + 0.02 * (((x * 3 + y * 5 + z * 7) % 9) as f64 - 4.0));
                    let u = [
                        T::from_f64(0.01 * ((x % 3) as f64 - 1.0)),
                        T::from_f64(0.01 * ((y % 3) as f64 - 1.0)),
                        T::from_f64(0.01 * ((z % 3) as f64 - 1.0)),
                    ];
                    lat.set_equilibrium(x, y, z, rho, u);
                }
            }
        }
    }

    #[test]
    fn simd_sweep_is_bit_exact_with_scalar_f32() {
        let d = Dim3::new(14, 9, 8);
        let mut a = scenarios::closed_box::<f32>(d, 1.3);
        let mut b = scenarios::closed_box::<f32>(d, 1.3);
        perturb(&mut a);
        perturb(&mut b);
        lbm_naive_sweep(&mut a, 5, LbmMode::Scalar, None);
        lbm_naive_sweep(&mut b, 5, LbmMode::Simd, None);
        for q in 0..Q {
            assert_eq!(a.src().comp(q), b.src().comp(q), "comp {q}");
        }
    }

    #[test]
    fn simd_sweep_is_bit_exact_with_scalar_f64() {
        let d = Dim3::cube(9);
        let mut a = scenarios::lid_driven_cavity::<f64>(d, 1.2, 0.05);
        let mut b = scenarios::lid_driven_cavity::<f64>(d, 1.2, 0.05);
        lbm_naive_sweep(&mut a, 4, LbmMode::Scalar, None);
        lbm_naive_sweep(&mut b, 4, LbmMode::Simd, None);
        for q in 0..Q {
            assert_eq!(a.src().comp(q), b.src().comp(q), "comp {q}");
        }
    }

    #[test]
    fn parallel_sweep_is_bit_exact_with_serial() {
        let d = Dim3::new(10, 8, 7);
        let mut want = scenarios::closed_box::<f32>(d, 1.1);
        perturb(&mut want);
        lbm_naive_sweep(&mut want, 3, LbmMode::Simd, None);
        for threads in [2usize, 3, 5] {
            let team = ThreadTeam::new(threads);
            let mut got = scenarios::closed_box::<f32>(d, 1.1);
            perturb(&mut got);
            lbm_naive_sweep(&mut got, 3, LbmMode::Simd, Some(&team));
            for q in 0..Q {
                assert_eq!(
                    want.src().comp(q),
                    got.src().comp(q),
                    "threads {threads} comp {q}"
                );
            }
        }
    }

    #[test]
    fn closed_box_conserves_mass() {
        let d = Dim3::cube(10);
        let mut lat = scenarios::closed_box::<f64>(d, 1.4);
        perturb(&mut lat);
        let before = lat.fluid_mass();
        lbm_naive_sweep(&mut lat, 20, LbmMode::Simd, None);
        let after = lat.fluid_mass();
        assert!(
            (after - before).abs() / before < 1e-12,
            "mass drifted: {before} -> {after}"
        );
    }

    #[test]
    fn quiescent_box_stays_quiescent() {
        let d = Dim3::cube(8);
        let mut lat = scenarios::closed_box::<f64>(d, 1.0);
        lbm_naive_sweep(&mut lat, 10, LbmMode::Scalar, None);
        let m = lat.macroscopic(4, 4, 4);
        assert!((m.rho.to_f64() - 1.0).abs() < 1e-12);
        for c in m.u {
            assert!(c.abs().to_f64() < 1e-12);
        }
    }

    #[test]
    fn cavity_flow_develops_circulation() {
        let d = Dim3::cube(12);
        let mut lat = scenarios::lid_driven_cavity::<f64>(d, 1.0, 0.1);
        lbm_naive_sweep(&mut lat, 60, LbmMode::Simd, None);
        // Fluid just below the lid is dragged in +x.
        let near_lid = lat.macroscopic(6, d.ny - 3, 6);
        assert!(near_lid.u[0] > 1e-4, "u_x near lid = {}", near_lid.u[0]);
        // Return flow near the floor runs in −x.
        let near_floor = lat.macroscopic(6, 2, 6);
        assert!(
            near_floor.u[0] < 0.0,
            "u_x near floor = {}",
            near_floor.u[0]
        );
    }

    #[test]
    fn update_count_is_sites_times_steps() {
        let d = Dim3::cube(6);
        let mut lat = scenarios::closed_box::<f32>(d, 1.0);
        let n = lbm_naive_sweep(&mut lat, 7, LbmMode::Scalar, None);
        assert_eq!(n, 216 * 7);
    }
}
