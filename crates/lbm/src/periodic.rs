//! Fully periodic lattices.
//!
//! The bounce-back/fixed machinery requires non-fluid faces; periodic
//! flows (shear waves, Taylor–Green vortices, homogeneous turbulence)
//! need distributions to wrap instead. As with the scalar stencils
//! (`threefive_core::exec::periodic`), periodicity is obtained by the
//! **wrap-extended-domain** identity: each chunk copies the lattice into
//! a halo-extended lattice (`h = dim_T` wrapped layers, extension faces
//! marked [`CellKind::Fixed`] so step 1 stays exact), runs the ordinary
//! 3.5-D executor, and harvests the center.
//!
//! Marking the extension faces `Fixed` (copied, never collided) rather
//! than `Obstacle` matters: fluid cells adjacent to the face then pull
//! correct wrapped time-`T` values at step 1, so staleness only begins
//! propagating at step 2 and reaches depth `dim_T − 1 < h` by the time
//! the chunk ends — the harvest region is untouched.

use threefive_grid::{CellFlags, CellKind, Dim3, Real};

use crate::model::{collide, C, Q};
use crate::{Lattice, LbmBlocking};
use threefive_simd::{Packed, SimdReal};
use threefive_sync::ThreadTeam;

/// Builds an all-fluid periodic lattice at uniform equilibrium. Unlike
/// [`Lattice::new`], faces may be fluid — but only the periodic executors
/// in this module may advance it.
pub fn periodic_lattice<T: Real>(dim: Dim3, omega: T) -> Lattice<T> {
    // Construct with Fixed faces to satisfy the constructor's invariant;
    // the periodic executors rebuild halos each chunk, so the face flags
    // of the *stored* lattice are irrelevant to the dynamics.
    let mut flags = CellFlags::all_fluid(dim);
    crate::scenarios::paint_faces(&mut flags, CellKind::Fixed);
    Lattice::new(dim, flags, omega)
}

/// Advances a periodic lattice `steps` time steps using the 3.5-D blocked
/// executor on wrap-extended copies. Bit-exact with
/// [`lbm_periodic_reference`].
pub fn lbm_periodic_sweep<T: Real>(
    lat: &mut Lattice<T>,
    steps: usize,
    b: LbmBlocking,
    team: Option<&ThreadTeam>,
) -> u64 {
    let dim = lat.dim();
    let omega = lat.omega;
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(b.dim_t);
        let h = chunk;
        // Build the wrap-extended lattice: all-fluid interior, Fixed faces.
        let ext_dim = Dim3::new(dim.nx + 2 * h, dim.ny + 2 * h, dim.nz + 2 * h);
        let mut ext_flags = CellFlags::all_fluid(ext_dim);
        crate::scenarios::paint_faces(&mut ext_flags, CellKind::Fixed);
        let mut ext = Lattice::new(ext_dim, ext_flags, omega);
        let m = |v: usize, n: usize| (v + n * h.div_ceil(n) - h) % n;
        let src = lat.src();
        let mut site = vec![T::ZERO; Q];
        for z in 0..ext_dim.nz {
            for y in 0..ext_dim.ny {
                for x in 0..ext_dim.nx {
                    let (sx, sy, sz) = (m(x, dim.nx), m(y, dim.ny), m(z, dim.nz));
                    for (q, slot) in site.iter_mut().enumerate() {
                        *slot = src.get(q, sx, sy, sz);
                    }
                    ext.set_site(x, y, z, &site);
                }
            }
        }
        // Advance the extension with the ordinary blocked executor.
        crate::lbm35d_sweep(
            &mut ext,
            chunk,
            LbmBlocking::new(b.dim_x, b.dim_y, chunk),
            team,
        );
        // Harvest the center.
        let result_sites: Vec<Vec<T>> = {
            let res = ext.src();
            let mut all = Vec::with_capacity(dim.len());
            for z in 0..dim.nz {
                for y in 0..dim.ny {
                    for x in 0..dim.nx {
                        all.push(res.site(x + h, y + h, z + h));
                    }
                }
            }
            all
        };
        let mut it = result_sites.into_iter();
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    lat.set_site(x, y, z, &it.next().expect("site count"));
                }
            }
        }
        remaining -= chunk;
    }
    dim.len() as u64 * steps as u64
}

/// Scalar reference for periodic lattices: modular-index pull + collide,
/// one site at a time. Assumes an all-fluid lattice (no obstacles).
pub fn lbm_periodic_reference<T: Real>(lat: &mut Lattice<T>, steps: usize) -> u64 {
    type V1<T> = Packed<T, 1>;
    let dim = lat.dim();
    let omega = lat.omega;
    for _ in 0..steps {
        let (_flags, _simple, src, dst) = lat.split_step();
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    let mut g: [V1<T>; Q] = [V1::zero(); Q];
                    for (i, gi) in g.iter_mut().enumerate() {
                        let (cx, cy, cz) = C[i];
                        let sx = (x + dim.nx).wrapping_add_signed(-(cx as isize)) % dim.nx;
                        let sy = (y + dim.ny).wrapping_add_signed(-(cy as isize)) % dim.ny;
                        let sz = (z + dim.nz).wrapping_add_signed(-(cz as isize)) % dim.nz;
                        *gi = V1::splat(src.get(i, sx, sy, sz));
                    }
                    collide::<V1<T>>(&mut g, omega);
                    let vals: Vec<T> = g.iter().map(|v| v.lane(0)).collect();
                    dst.set_site(x, y, z, &vals);
                }
            }
        }
        lat.swap();
    }
    dim.len() as u64 * steps as u64
}

/// Initialises a periodic shear wave `u_x(y) = u0·sin(2πy/N_y)` at unit
/// density — the canonical viscosity-measurement flow: the amplitude
/// decays as `exp(−ν k² t)` with `k = 2π/N_y`.
pub fn init_shear_wave<T: Real>(lat: &mut Lattice<T>, u0: f64) {
    let dim = lat.dim();
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            for x in 0..dim.nx {
                let ux = u0 * (2.0 * std::f64::consts::PI * y as f64 / dim.ny as f64).sin();
                lat.set_equilibrium(x, y, z, T::ONE, [T::from_f64(ux), T::ZERO, T::ZERO]);
            }
        }
    }
}

/// Amplitude of the shear wave: max |u_x| over the lattice.
pub fn shear_amplitude<T: Real>(lat: &Lattice<T>) -> f64 {
    let dim = lat.dim();
    let mut max = 0.0f64;
    for z in 0..dim.nz {
        for y in 0..dim.ny {
            for x in 0..dim.nx {
                max = max.max(lat.macroscopic(x, y, z).u[0].to_f64().abs());
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perturbed(dim: Dim3, omega: f64) -> Lattice<f64> {
        let mut lat = periodic_lattice::<f64>(dim, omega);
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    let rho = 1.0 + 0.01 * (((x * 3 + y * 5 + z * 7) % 9) as f64 - 4.0);
                    let u = [
                        0.01 * ((x % 3) as f64 - 1.0),
                        0.01 * ((y % 3) as f64 - 1.0),
                        0.008 * ((z % 2) as f64 - 0.5),
                    ];
                    lat.set_equilibrium(x, y, z, rho, u);
                }
            }
        }
        lat
    }

    #[test]
    fn periodic_blocked_matches_periodic_reference() {
        let dim = Dim3::new(10, 8, 6);
        for steps in [1usize, 2, 3, 5] {
            let mut want = perturbed(dim, 1.3);
            lbm_periodic_reference(&mut want, steps);
            for (tile, dim_t) in [(4usize, 2usize), (10, 3), (5, 1)] {
                let mut got = perturbed(dim, 1.3);
                lbm_periodic_sweep(&mut got, steps, LbmBlocking::new(tile, tile, dim_t), None);
                for q in 0..Q {
                    assert_eq!(
                        want.src().comp(q),
                        got.src().comp(q),
                        "steps={steps} tile={tile} dimT={dim_t} comp={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_conserves_mass_and_momentum_exactly() {
        let dim = Dim3::cube(8);
        let mut lat = perturbed(dim, 1.1);
        let mass0: f64 = lat.src().total();
        lbm_periodic_sweep(&mut lat, 8, LbmBlocking::new(4, 4, 2), None);
        let mass1: f64 = lat.src().total();
        assert!(
            (mass1 - mass0).abs() / mass0 < 1e-12,
            "periodic mass drift {mass0} -> {mass1}"
        );
    }

    #[test]
    fn shear_wave_decay_measures_the_bgk_viscosity() {
        // The flagship physics validation: the decay rate of a periodic
        // shear wave recovers ν = (1/ω − 1/2)/3 quantitatively.
        let n = 24usize;
        let dim = Dim3::new(8, n, 4);
        let omega = 1.0f64;
        let mut lat = periodic_lattice::<f64>(dim, omega);
        init_shear_wave(&mut lat, 0.01);
        let a0 = shear_amplitude(&lat);
        let steps = 200usize;
        lbm_periodic_sweep(&mut lat, steps, LbmBlocking::new(8, 12, 2), None);
        let a1 = shear_amplitude(&lat);
        let k = 2.0 * std::f64::consts::PI / n as f64;
        let nu_measured = -(a1 / a0).ln() / (k * k * steps as f64);
        let nu_theory = lat.viscosity();
        let rel = (nu_measured - nu_theory).abs() / nu_theory;
        assert!(
            rel < 0.05,
            "viscosity: measured {nu_measured:.5} vs theory {nu_theory:.5} ({rel:.3} relative error)"
        );
    }

    #[test]
    fn uniform_periodic_flow_is_translation_invariant() {
        // A uniform-velocity field in a periodic box is an exact steady
        // state (Galilean invariance of the discrete dynamics).
        let dim = Dim3::cube(6);
        let mut lat = periodic_lattice::<f64>(dim, 1.2);
        for z in 0..dim.nz {
            for y in 0..dim.ny {
                for x in 0..dim.nx {
                    lat.set_equilibrium(x, y, z, 1.0, [0.03, -0.02, 0.01]);
                }
            }
        }
        lbm_periodic_sweep(&mut lat, 6, LbmBlocking::new(3, 3, 3), None);
        let m = lat.macroscopic(3, 3, 3);
        assert!((m.u[0] - 0.03).abs() < 1e-12);
        assert!((m.u[1] + 0.02).abs() < 1e-12);
        assert!((m.u[2] - 0.01).abs() < 1e-12);
        assert!((m.rho - 1.0).abs() < 1e-12);
    }
}
