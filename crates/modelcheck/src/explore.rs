//! Bounded exhaustive schedule exploration: restart-based DFS over the
//! decision tree with sleep-set partial-order reduction and an optional
//! preemption bound.
//!
//! Each execution is replayed from scratch along a decision prefix
//! (`sched::run_one` is deterministic given the prefix), so no state
//! snapshotting is needed. Sleep sets (Godefroid) prune interleavings
//! that only commute independent operations — after fully exploring a
//! decision `d` at a node, `d` "sleeps" for the node's remaining
//! alternatives and stays asleep down other branches until a conflicting
//! operation executes. The preemption bound (CHESS-style) optionally
//! caps how many times a schedule switches away from a still-runnable
//! thread; most real concurrency bugs need very few preemptions.

use crate::sched::{run_one, Decision, Failure, Model, OpKind, RunOutcome};

/// Exploration budgets for one model.
#[derive(Clone, Copy, Debug)]
pub struct Budgets {
    /// Maximum number of schedules (executions) to run.
    pub max_schedules: usize,
    /// Maximum decisions per execution (truncation guard).
    pub max_steps: usize,
    /// Maximum preemptions per schedule; `None` = unbounded.
    ///
    /// The default is 3: exploration is exhaustive *within the bound*
    /// (CHESS-style), which keeps every model in the catalog tractable —
    /// unbounded, the spin-barrier models exceed 200k schedules — while
    /// empirically (and per the CHESS results) real concurrency bugs
    /// need very few preemptions; every seeded mutant is caught at
    /// bound 2 already.
    pub max_preemptions: Option<usize>,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            max_schedules: 200_000,
            max_steps: 5_000,
            max_preemptions: Some(3),
        }
    }
}

/// A failing schedule, ready to serialize as a replay trace.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The decision sequence that reproduces the failure.
    pub decisions: Vec<Decision>,
    /// Human-readable description of the op each decision ran.
    pub op_desc: Vec<String>,
    /// What went wrong.
    pub failure: Failure,
}

/// Result of exploring one model.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Executions run.
    pub schedules: usize,
    /// Total decisions executed across all schedules.
    pub steps_total: usize,
    /// True when the decision tree was exhausted within the schedule
    /// budget and no execution hit the step cap. (Schedules skipped by
    /// the preemption bound are reported via `bounded`, not here:
    /// within-bound exploration was still exhaustive.)
    pub complete: bool,
    /// True when the preemption bound pruned at least one schedule.
    pub bounded: bool,
    /// The first failing schedule found, if any.
    pub counterexample: Option<Counterexample>,
}

struct Node {
    enabled: Vec<(Decision, OpKind)>,
    /// Decisions fully explored here or inherited-asleep; skipped.
    sleep: Vec<(Decision, OpKind)>,
    chosen: Decision,
    chosen_op: OpKind,
    /// Preemptions accumulated on the path *before* this node's choice.
    preemptions_before: usize,
}

/// Two decisions at the same node commute unless this returns true.
/// Conservative (extra conflicts cost schedules, never soundness).
fn conflicts(a: &(Decision, OpKind), b: &(Decision, OpKind)) -> bool {
    if a.0.tid == b.0.tid {
        // Same thread: program order is always dependent.
        return true;
    }
    use OpKind::*;
    let cv_of = |op: &OpKind| match op {
        CondWait { cv, .. } | CondNotifyOne { cv } | CondNotifyAll { cv } => Some(*cv),
        _ => None,
    };
    let mutex_of = |op: &OpKind| match op {
        MutexLock { m } | MutexUnlock { m } | Reacquire { m, .. } | CondWait { m, .. } => Some(*m),
        _ => None,
    };
    let loc_write = |op: &OpKind| match op {
        Load { loc, .. } => Some((*loc, false)),
        Store { loc, .. } | RmwAdd { loc, .. } => Some((*loc, true)),
        _ => None,
    };
    match (&a.1, &b.1) {
        // Thread startup and deadline latches touch per-thread state
        // only: independent of everything on other threads.
        (Start, _) | (_, Start) => false,
        (DeadlineCheck { .. }, _) | (_, DeadlineCheck { .. }) => false,
        // Spin parking wakes on any write.
        (Yield, other) | (other, Yield) => matches!(other, Store { .. } | RmwAdd { .. }),
        _ => {
            if let (Some((l1, w1)), Some((l2, w2))) = (loc_write(&a.1), loc_write(&b.1)) {
                return l1 == l2 && (w1 || w2);
            }
            if let (Some(m1), Some(m2)) = (mutex_of(&a.1), mutex_of(&b.1)) {
                if m1 == m2 {
                    return true;
                }
            }
            if let (Some(c1), Some(c2)) = (cv_of(&a.1), cv_of(&b.1)) {
                if c1 == c2 {
                    return true;
                }
            }
            // Mixed categories (atomic vs mutex vs cv on distinct
            // objects): independent.
            if loc_write(&a.1).is_some() != loc_write(&b.1).is_some() {
                return false;
            }
            if mutex_of(&a.1).is_some() || mutex_of(&b.1).is_some() {
                return false;
            }
            if cv_of(&a.1).is_some() || cv_of(&b.1).is_some() {
                return false;
            }
            false
        }
    }
}

fn is_preemption(
    path: &[Node],
    at: usize,
    candidate: &Decision,
    enabled: &[(Decision, OpKind)],
) -> bool {
    if at == 0 {
        return false;
    }
    let prev_tid = path[at - 1].chosen.tid;
    candidate.tid != prev_tid && enabled.iter().any(|(d, _)| d.tid == prev_tid)
}

/// Explores `model`'s schedules depth-first until the tree is exhausted
/// or a budget trips. Returns the first counterexample found, if any.
pub fn explore(model: &dyn Model, budgets: &Budgets) -> CheckResult {
    let mut path: Vec<Node> = Vec::new();
    let mut schedules = 0usize;
    let mut steps_total = 0usize;
    let mut complete = true;
    let mut bounded = false;

    loop {
        if schedules >= budgets.max_schedules {
            complete = false;
            break;
        }
        let prefix: Vec<Decision> = path.iter().map(|n| n.chosen).collect();
        let outcome: RunOutcome = run_one(model, &prefix, None, budgets.max_steps);
        schedules += 1;
        steps_total += outcome.steps;
        if outcome.truncated {
            complete = false;
        }
        if let Some(failure) = outcome.failure {
            return CheckResult {
                schedules,
                steps_total,
                complete,
                bounded,
                counterexample: Some(Counterexample {
                    decisions: outcome.decisions,
                    op_desc: outcome.op_desc,
                    failure,
                }),
            };
        }

        // Extend the path with the nodes this run created beyond the
        // replayed prefix, inheriting sleep sets downward.
        for i in path.len()..outcome.decisions.len() {
            let enabled = outcome.enabled[i].clone();
            let chosen = outcome.decisions[i];
            let chosen_op = outcome.ops[i].clone();
            let (sleep, preemptions_before) = if i == 0 {
                (Vec::new(), 0)
            } else {
                let parent = &path[i - 1];
                let parent_choice = (parent.chosen, parent.chosen_op.clone());
                let sleep: Vec<(Decision, OpKind)> = parent
                    .sleep
                    .iter()
                    .filter(|s| !conflicts(s, &parent_choice))
                    .cloned()
                    .collect();
                let pre = parent.preemptions_before
                    + usize::from(is_preemption(&path, i, &chosen, &enabled));
                (sleep, pre)
            };
            path.push(Node {
                enabled,
                sleep,
                chosen,
                chosen_op,
                preemptions_before,
            });
        }

        // Backtrack: deepest node with an untried, non-sleeping,
        // within-bound alternative.
        loop {
            let Some(top) = path.last() else {
                return CheckResult {
                    schedules,
                    steps_total,
                    complete,
                    bounded,
                    counterexample: None,
                };
            };
            let depth = path.len() - 1;
            let mut sleep = top.sleep.clone();
            sleep.push((top.chosen, top.chosen_op.clone()));
            let mut next: Option<(Decision, OpKind)> = None;
            for (d, op) in &top.enabled {
                if sleep.iter().any(|(s, _)| s == d) {
                    continue;
                }
                let preempts = top.preemptions_before
                    + usize::from(is_preemption(&path, depth, d, &top.enabled));
                if let Some(bound) = budgets.max_preemptions {
                    if preempts > bound {
                        bounded = true;
                        continue;
                    }
                }
                next = Some((*d, op.clone()));
                break;
            }
            match next {
                Some((d, op)) => {
                    let top = path.last_mut().unwrap();
                    top.sleep = sleep;
                    top.chosen = d;
                    top.chosen_op = op;
                    // Recompute preemptions for the new choice happens on
                    // the next extension pass (children rebuilt).
                    break;
                }
                None => {
                    path.pop();
                }
            }
        }
    }

    CheckResult {
        schedules,
        steps_total,
        complete,
        bounded,
        counterexample: None,
    }
}
