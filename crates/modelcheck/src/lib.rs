//! Deterministic concurrency model checker for the hand-rolled sync
//! layer (DESIGN.md §16).
//!
//! The sync layer (`crates/sync`, `crates/serve`) is generic over a
//! [`SyncFamily`](threefive_sync::shim::SyncFamily): production code
//! monomorphizes to plain `std` atomics/mutexes at zero cost, while this
//! crate plugs in [`family::ModelFamily`], which routes every atomic
//! load/store, mutex acquisition, condvar wait/notify and deadline check
//! through a central controller. The controller serializes the real OS
//! threads of a scenario and, at each scheduling point, picks which
//! thread runs next and which value a load observes — so the explorer in
//! [`explore`] can enumerate *every* interleaving (and every
//! weak-memory-visible value) of the real `SpinBarrier::checked_wait`,
//! `TeamPool` checkout/checkin/quarantine/heal and `AdmissionQueue`
//! push/pop/close code, unmodified.
//!
//! Layout:
//!
//! * [`sched`] — the execution controller: decision points, weak-memory
//!   store histories with vector clocks, deadlock detection, panic
//!   capture, deterministic replay of a decision prefix.
//! * [`family`] — the instrumented `SyncFamily` implementation.
//! * [`explore`] — bounded-exhaustive DFS with sleep-set partial-order
//!   reduction and an optional preemption bound.
//! * [`models`] — the scenario catalog over the real code.
//! * [`mutants`] — seeded-bug copies; every mutant must be caught.
//! * [`trace`] — schema-validated JSON replay traces.
//! * [`driver`] — suite/mutant runners and `--replay`.

pub mod driver;
pub mod explore;
pub mod family;
pub mod models;
pub mod mutants;
pub mod sched;
pub mod trace;

pub use driver::{replay, run_mutants, run_suite, ModelOutcome, MutantOutcome, ReplayOutcome};
pub use explore::{Budgets, CheckResult, Counterexample};
pub use sched::{Decision, Failure, Model, Scenario, TimeMode};
pub use trace::{Trace, TRACE_KIND, TRACE_SCHEMA_VERSION};
