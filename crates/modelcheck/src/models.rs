//! The model catalog: concurrency scenarios over the *real* sync-layer
//! code, instantiated with the checker's [`ModelFamily`].
//!
//! Each scenario is written against a small SUT (system-under-test)
//! trait — [`BarrierSut`] / [`PoolSut`] / [`QueueSut`] — implemented by
//! the real generic types (`SpinBarrier<ModelFamily>`,
//! `TeamPool<ModelFamily, ModelTeam>`, `AdmissionQueue<ModelFamily>`)
//! *and* by the seeded-bug copies in `mutants`. The same scenario that
//! proves the real code clean must produce a counterexample against
//! every mutant; that is the checker's own regression suite.

use std::cell::RefCell;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use threefive_serve::{AdmissionQueue, JobSpec, Popped, QueuedJob, Workload};
use threefive_sync::shim::{AtomicBoolShim, AtomicUsizeShim, Ordering};
use threefive_sync::{SpinBarrier, SyncError, TeamPool, TeamUnit};

use crate::family::{MAtomicBool, MAtomicUsize, ModelFamily};
use crate::sched::{Model, Scenario, TimeMode};

/// The real barrier under the model family.
pub type RealBarrier = SpinBarrier<ModelFamily>;
/// The real pool under the model family, holding scripted teams.
pub type RealPool = TeamPool<ModelFamily, ModelTeam>;
/// The real admission queue under the model family.
pub type RealQueue = AdmissionQueue<ModelFamily>;

// ---------------------------------------------------------------------
// SUT traits
// ---------------------------------------------------------------------

/// Barrier operations a scenario needs.
pub trait BarrierSut: Send + Sync + 'static {
    fn new(n: usize) -> Self;
    fn checked_wait(&self, deadline: Option<Duration>) -> Result<bool, SyncError>;
    fn poison(&self);
    fn is_poisoned(&self) -> bool;
}

impl BarrierSut for RealBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier::new_in(n)
    }
    fn checked_wait(&self, deadline: Option<Duration>) -> Result<bool, SyncError> {
        SpinBarrier::checked_wait(self, deadline)
    }
    fn poison(&self) {
        SpinBarrier::poison(self)
    }
    fn is_poisoned(&self) -> bool {
        SpinBarrier::is_poisoned(self)
    }
}

/// Snapshot of a pool's accounting, taken by the finale check.
#[derive(Clone, Copy, Debug)]
pub struct PoolCounts {
    pub idle: usize,
    pub leased: usize,
    pub quarantined: usize,
    pub capacity: usize,
    pub isolations: usize,
    pub heals: usize,
}

/// Pool operations a scenario needs. `checkout_checkin` performs one
/// full lease cycle (checkout with a 1 s model deadline, optionally mark
/// suspect, check in) and reports whether a team was obtained.
pub trait PoolSut: Send + Sync + 'static {
    fn new(teams: usize) -> Self;
    fn checkout_checkin(&self, suspect: bool) -> bool;
    fn counts(&self) -> PoolCounts;
}

impl PoolSut for RealPool {
    fn new(teams: usize) -> Self {
        TeamPool::new_in(teams, 1)
    }
    fn checkout_checkin(&self, suspect: bool) -> bool {
        match self.checkout(Duration::from_secs(1)) {
            Some(mut lease) => {
                if suspect {
                    lease.mark_suspect();
                }
                true
            }
            None => false,
        }
    }
    fn counts(&self) -> PoolCounts {
        PoolCounts {
            idle: self.idle(),
            leased: self.leased(),
            quarantined: self.quarantined(),
            capacity: self.capacity(),
            isolations: self.isolation_count(),
            heals: self.heal_count(),
        }
    }
}

/// Result of one queue pop, stripped to what scenarios compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopOutcome {
    Job(u64),
    Empty,
    Closed,
}

/// Queue operations a scenario needs. `push` reports admission success.
pub trait QueueSut: Send + Sync + 'static {
    fn new(capacity: usize) -> Self;
    fn push(&self, id: u64, priority: u8) -> bool;
    fn pop(&self) -> PopOutcome;
    fn close(&self);
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds a minimal valid job for queue models.
pub fn model_job(id: u64, priority: u8) -> QueuedJob {
    QueuedJob {
        id,
        spec: JobSpec {
            workload: Workload::Stencil,
            n: 8,
            steps: 2,
            dim_t: 2,
            tile: 8,
            deadline: Duration::from_secs(1),
            priority,
        },
        admitted_at: Instant::now(),
        reply_to: 0,
    }
}

impl QueueSut for RealQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue::new_in(capacity)
    }
    fn push(&self, id: u64, priority: u8) -> bool {
        AdmissionQueue::push(self, model_job(id, priority)).is_ok()
    }
    fn pop(&self) -> PopOutcome {
        match AdmissionQueue::pop(self, Duration::from_secs(1)) {
            Popped::Job(j) => PopOutcome::Job(j.id),
            Popped::Empty => PopOutcome::Empty,
            Popped::Closed => PopOutcome::Closed,
        }
    }
    fn close(&self) {
        AdmissionQueue::close(self)
    }
    fn len(&self) -> usize {
        AdmissionQueue::len(self)
    }
}

// ---------------------------------------------------------------------
// Scripted team
// ---------------------------------------------------------------------

thread_local! {
    /// Wedge flags of the teams created by the execution being built on
    /// this thread. `Scenario::build` runs inline on the controller
    /// thread, so a thread-local keeps concurrently exploring tests
    /// (each on its own controller thread) isolated from each other.
    static TEAM_REGISTRY: RefCell<Vec<Arc<MAtomicBool>>> = const { RefCell::new(Vec::new()) };
}

/// Drops all registered wedge handles; call at the top of every
/// pool-scenario build so indices restart at zero.
pub fn clear_team_registry() {
    TEAM_REGISTRY.with(|r| r.borrow_mut().clear());
}

/// Wedge handle of the `i`-th team created since the last
/// [`clear_team_registry`].
pub fn team_wedge(i: usize) -> Arc<MAtomicBool> {
    TEAM_REGISTRY.with(|r| Arc::clone(&r.borrow()[i]))
}

/// A scripted [`TeamUnit`] whose health is one model atomic: the
/// explored schedule (via [`team_wedge`] stores) decides when the team
/// looks wedged, exactly the nondeterminism a real straggler produces.
pub struct ModelTeam {
    wedged: Arc<MAtomicBool>,
}

impl TeamUnit for ModelTeam {
    fn create(_threads: usize) -> Self {
        let wedged = Arc::new(MAtomicBool::named(false, "team.wedged"));
        TEAM_REGISTRY.with(|r| r.borrow_mut().push(Arc::clone(&wedged)));
        ModelTeam { wedged }
    }
    fn is_quarantined(&self) -> bool {
        // ORDERING: Acquire mirrors ThreadTeam's watchdog flag read.
        self.wedged.load(Ordering::Acquire)
    }
    fn probe(&self, _deadline: Duration) -> bool {
        // ORDERING: Acquire — the probe must observe the straggler's
        // drain (the wedge store) before declaring the team healthy.
        !self.wedged.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Scenario helpers
// ---------------------------------------------------------------------

type Log<T> = Arc<StdMutex<Vec<T>>>;

fn new_log<T>() -> Log<T> {
    Arc::new(StdMutex::new(Vec::new()))
}

fn push<T>(log: &Log<T>, v: T) {
    log.lock().unwrap().push(v);
}

/// A barrier wait collapsed to what properties compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitRes {
    Leader,
    Follower,
    Poisoned,
    Timeout,
}

fn wait_res(r: Result<bool, SyncError>) -> WaitRes {
    match r {
        Ok(true) => WaitRes::Leader,
        Ok(false) => WaitRes::Follower,
        Err(SyncError::BarrierPoisoned) => WaitRes::Poisoned,
        Err(SyncError::BarrierTimeout { .. }) => WaitRes::Timeout,
        Err(e) => panic!("barrier returned unexpected error {e:?}"),
    }
}

// ---------------------------------------------------------------------
// Barrier scenarios
// ---------------------------------------------------------------------

/// `threads` participants run `rounds` back-to-back episodes. Property:
/// every wait succeeds and each round elects exactly one leader.
/// Deadlocks (e.g. a dropped count reset stranding round two) surface
/// via the scheduler's deadlock detection.
pub fn barrier_rounds<B: BarrierSut>(threads: usize, rounds: usize) -> Scenario {
    let barrier = Arc::new(B::new(threads));
    let results: Log<(usize, usize, WaitRes)> = new_log();
    let bodies = (0..threads)
        .map(|tid| {
            let barrier = Arc::clone(&barrier);
            let results = Arc::clone(&results);
            Box::new(move || {
                for round in 0..rounds {
                    let r = wait_res(barrier.checked_wait(None));
                    push(&results, (tid, round, r));
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    Scenario {
        threads: bodies,
        check: Box::new(move || {
            let results = results.lock().unwrap();
            for round in 0..rounds {
                let this_round: Vec<WaitRes> = results
                    .iter()
                    .filter(|(_, r, _)| *r == round)
                    .map(|&(_, _, res)| res)
                    .collect();
                if this_round.len() != threads {
                    return Err(format!(
                        "round {round}: {} of {threads} waits completed",
                        this_round.len()
                    ));
                }
                let leaders = this_round.iter().filter(|r| **r == WaitRes::Leader).count();
                if leaders != 1 {
                    return Err(format!("round {round}: {leaders} leaders, want 1"));
                }
                if this_round
                    .iter()
                    .any(|r| matches!(r, WaitRes::Poisoned | WaitRes::Timeout))
                {
                    return Err(format!(
                        "round {round}: healthy wait failed: {this_round:?}"
                    ));
                }
            }
            Ok(())
        }),
    }
}

/// The barrier's publication contract: a plain `Relaxed` store made
/// before the barrier must be visible to every thread after it. This is
/// exactly the guarantee the Release/Acquire generation handoff exists
/// to provide — weaken it (see the `relaxed-gen-publish` mutant) and the
/// model's weak-memory simulation finds the stale read.
pub fn barrier_publish<B: BarrierSut>() -> Scenario {
    let barrier = Arc::new(B::new(2));
    let payload = Arc::new(MAtomicUsize::named(0, "payload"));
    let seen: Log<usize> = new_log();
    let waits: Log<WaitRes> = new_log();
    let t0 = {
        let barrier = Arc::clone(&barrier);
        let payload = Arc::clone(&payload);
        let waits = Arc::clone(&waits);
        Box::new(move || {
            payload.store(1, Ordering::Relaxed);
            push(&waits, wait_res(barrier.checked_wait(None)));
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let barrier = Arc::clone(&barrier);
        let payload = Arc::clone(&payload);
        let seen = Arc::clone(&seen);
        let waits = Arc::clone(&waits);
        Box::new(move || {
            push(&waits, wait_res(barrier.checked_wait(None)));
            push(&seen, payload.load(Ordering::Relaxed));
        }) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![t0, t1],
        check: Box::new(move || {
            let waits = waits.lock().unwrap();
            if waits
                .iter()
                .any(|r| matches!(r, WaitRes::Poisoned | WaitRes::Timeout))
            {
                return Err(format!("healthy barrier failed: {waits:?}"));
            }
            match seen.lock().unwrap().as_slice() {
                [1] => Ok(()),
                other => Err(format!(
                    "pre-barrier store not published across the barrier: saw {other:?}"
                )),
            }
        }),
    }
}

/// Poison between generations: both threads complete round one, thread 1
/// then poisons before round two. Property: both round-two waits drain
/// with `BarrierPoisoned` — never `Ok`, never a hang.
pub fn barrier_poison_mid<B: BarrierSut>() -> Scenario {
    let barrier = Arc::new(B::new(2));
    let r1: Log<(usize, WaitRes)> = new_log();
    let r2: Log<(usize, WaitRes)> = new_log();
    let t0 = {
        let barrier = Arc::clone(&barrier);
        let (r1, r2) = (Arc::clone(&r1), Arc::clone(&r2));
        Box::new(move || {
            push(&r1, (0, wait_res(barrier.checked_wait(None))));
            push(&r2, (0, wait_res(barrier.checked_wait(None))));
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let barrier = Arc::clone(&barrier);
        let (r1, r2) = (Arc::clone(&r1), Arc::clone(&r2));
        Box::new(move || {
            push(&r1, (1, wait_res(barrier.checked_wait(None))));
            barrier.poison();
            push(&r2, (1, wait_res(barrier.checked_wait(None))));
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Arc::clone(&barrier);
    Scenario {
        threads: vec![t0, t1],
        check: Box::new(move || {
            let r1 = r1.lock().unwrap();
            let r2 = r2.lock().unwrap();
            // The poisoner's first wait precedes the poison: must be Ok.
            let t1_r1 = r1.iter().find(|(t, _)| *t == 1).map(|&(_, r)| r);
            if !matches!(t1_r1, Some(WaitRes::Leader | WaitRes::Follower)) {
                return Err(format!("t1 round 1 was {t1_r1:?}, want Ok"));
            }
            // Round one elects at most one leader (t0 may instead observe
            // the in-flight poison while draining).
            let leaders1 = r1.iter().filter(|(_, r)| *r == WaitRes::Leader).count();
            if leaders1 > 1 {
                return Err(format!("round 1: {leaders1} leaders"));
            }
            // Both round-two waits must observe the poison.
            for (t, r) in r2.iter() {
                if *r != WaitRes::Poisoned {
                    return Err(format!("t{t} round 2 was {r:?}, want Poisoned"));
                }
            }
            if r2.len() != 2 {
                return Err(format!("{} of 2 round-2 waits completed", r2.len()));
            }
            if !finale.is_poisoned() {
                return Err("barrier lost its poison mark".into());
            }
            Ok(())
        }),
    }
}

/// Poison racing the only other arrival: thread 0 waits, thread 1
/// poisons *instead of* arriving, then waits. Property: both waits drain
/// with `BarrierPoisoned` — in particular t0, which may already be
/// spinning inside the episode when the poison lands.
pub fn barrier_last_arriver<B: BarrierSut>() -> Scenario {
    let barrier = Arc::new(B::new(2));
    let results: Log<(usize, WaitRes)> = new_log();
    let t0 = {
        let barrier = Arc::clone(&barrier);
        let results = Arc::clone(&results);
        Box::new(move || {
            push(&results, (0, wait_res(barrier.checked_wait(None))));
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let barrier = Arc::clone(&barrier);
        let results = Arc::clone(&results);
        Box::new(move || {
            barrier.poison();
            push(&results, (1, wait_res(barrier.checked_wait(None))));
        }) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![t0, t1],
        check: Box::new(move || {
            let results = results.lock().unwrap();
            if results.len() != 2 {
                return Err(format!("{} of 2 waits completed", results.len()));
            }
            for (t, r) in results.iter() {
                if *r != WaitRes::Poisoned {
                    return Err(format!("t{t} drained with {r:?}, want Poisoned"));
                }
            }
            Ok(())
        }),
    }
}

/// Deadline racing arrival (nondeterministic time): both threads wait
/// with a deadline; each check may declare the deadline expired.
/// Property: at most one leader, every error implies the barrier ended
/// poisoned (a timeout poisons so the other side drains), and no state
/// hangs — the scheduler flags any stranded spinner as a deadlock.
pub fn barrier_deadline_race<B: BarrierSut>() -> Scenario {
    let barrier = Arc::new(B::new(2));
    let results: Log<(usize, WaitRes)> = new_log();
    let bodies = (0..2)
        .map(|tid| {
            let barrier = Arc::clone(&barrier);
            let results = Arc::clone(&results);
            Box::new(move || {
                let r = wait_res(barrier.checked_wait(Some(Duration::from_millis(50))));
                push(&results, (tid, r));
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let finale = Arc::clone(&barrier);
    Scenario {
        threads: bodies,
        check: Box::new(move || {
            let results = results.lock().unwrap();
            if results.len() != 2 {
                return Err(format!("{} of 2 waits completed", results.len()));
            }
            let leaders = results
                .iter()
                .filter(|(_, r)| *r == WaitRes::Leader)
                .count();
            if leaders > 1 {
                return Err(format!("{leaders} leaders in one episode"));
            }
            let errs = results
                .iter()
                .filter(|(_, r)| matches!(r, WaitRes::Poisoned | WaitRes::Timeout))
                .count();
            if errs > 0 && !finale.is_poisoned() {
                return Err("a wait drained with an error but the barrier is not poisoned".into());
            }
            if errs == 0 && leaders != 1 {
                return Err(format!("both waits Ok but {leaders} leaders"));
            }
            Ok(())
        }),
    }
}

// ---------------------------------------------------------------------
// Pool scenarios
// ---------------------------------------------------------------------

/// Two tenants contend for a single healthy team. Property: both lease
/// cycles succeed (model time never expires, so checkout must block
/// until the checkin notify — a dropped notify is a deadlock) and the
/// pool's accounting returns to one idle team.
pub fn pool_contended<P: PoolSut>() -> Scenario {
    clear_team_registry();
    let pool = Arc::new(P::new(1));
    let got: Log<bool> = new_log();
    let bodies = (0..2)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let got = Arc::clone(&got);
            Box::new(move || {
                let ok = pool.checkout_checkin(false);
                push(&got, ok);
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let finale = Arc::clone(&pool);
    Scenario {
        threads: bodies,
        check: Box::new(move || {
            let got = got.lock().unwrap();
            if got.iter().filter(|ok| **ok).count() != 2 {
                return Err(format!("lease cycles {got:?}, want [true, true]"));
            }
            check_pool_counts(&finale.counts(), 0)
        }),
    }
}

/// Quarantine/heal under a racing straggler drain: the single team
/// starts wedged; tenant 0 runs a suspect lease cycle (checkin probes
/// and may quarantine), tenant 1 drains the straggler and then leases.
/// Property: accounting converges — no leaked or duplicated team, every
/// isolation matched by a heal once the wedge clears.
pub fn pool_quarantine_heal<P: PoolSut>() -> Scenario {
    clear_team_registry();
    let pool = Arc::new(P::new(1));
    let wedge = team_wedge(0);
    // The straggler from a previous job is still wedged inside the team.
    wedge.store(true, Ordering::Release);
    let t0 = {
        let pool = Arc::clone(&pool);
        Box::new(move || {
            // The suspect path: this tenant's job failed; checkin decides
            // between recycle and quarantine based on the probe.
            let _ = pool.checkout_checkin(true);
        }) as Box<dyn FnOnce() + Send>
    };
    let t1 = {
        let pool = Arc::clone(&pool);
        Box::new(move || {
            // The straggler drains at an arbitrary point...
            wedge.store(false, Ordering::Release);
            // ...and a later checkout must be able to reclaim the team.
            let _ = pool.checkout_checkin(false);
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Arc::clone(&pool);
    Scenario {
        threads: vec![t0, t1],
        check: Box::new(move || {
            let c = finale.counts();
            if c.isolations > 1 {
                return Err(format!(
                    "{} isolations from one suspect checkin",
                    c.isolations
                ));
            }
            check_pool_counts(&c, c.isolations)
        }),
    }
}

/// Shared finale assertions: the team population invariant
/// `idle + quarantined + leased == capacity`, full recovery (the wedge
/// is clear by finale time, so `idle()`'s reclaim must have healed every
/// quarantined team), and heal/isolation bookkeeping.
fn check_pool_counts(c: &PoolCounts, want_isolations: usize) -> Result<(), String> {
    if c.idle + c.quarantined + c.leased != c.capacity {
        return Err(format!(
            "team population broken: idle {} + quarantined {} + leased {} != capacity {}",
            c.idle, c.quarantined, c.leased, c.capacity
        ));
    }
    if c.leased != 0 {
        return Err(format!(
            "{} teams still leased after all tenants left",
            c.leased
        ));
    }
    if c.quarantined != 0 {
        return Err(format!(
            "{} teams stuck in quarantine after the straggler drained",
            c.quarantined
        ));
    }
    if c.idle != c.capacity {
        return Err(format!("idle {} != capacity {}", c.idle, c.capacity));
    }
    if c.isolations != want_isolations {
        return Err(format!(
            "isolations {} != expected {}",
            c.isolations, want_isolations
        ));
    }
    if c.heals != c.isolations {
        return Err(format!(
            "heals {} != isolations {}: a quarantined team never healed",
            c.heals, c.isolations
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Queue scenarios
// ---------------------------------------------------------------------

/// Single producer, single consumer, no close: the producer pushes two
/// jobs, the consumer pops two. Model time never expires, so the
/// consumer's only way out of an empty queue is the producer's
/// notify — dropping it (the `skip-notify-push` mutant) is a deadlock.
/// Property: FIFO order and an empty queue at the end.
pub fn queue_spsc<Q: QueueSut>() -> Scenario {
    let queue = Arc::new(Q::new(2));
    let pushed: Log<bool> = new_log();
    let popped: Log<PopOutcome> = new_log();
    let producer = {
        let queue = Arc::clone(&queue);
        let pushed = Arc::clone(&pushed);
        Box::new(move || {
            push(&pushed, queue.push(1, 0));
            push(&pushed, queue.push(2, 0));
        }) as Box<dyn FnOnce() + Send>
    };
    let consumer = {
        let queue = Arc::clone(&queue);
        let popped = Arc::clone(&popped);
        Box::new(move || {
            push(&popped, queue.pop());
            push(&popped, queue.pop());
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Arc::clone(&queue);
    Scenario {
        threads: vec![producer, consumer],
        check: Box::new(move || {
            let pushed = pushed.lock().unwrap();
            if pushed.as_slice() != [true, true] {
                return Err(format!("pushes rejected: {pushed:?}"));
            }
            let popped = popped.lock().unwrap();
            if popped.as_slice() != [PopOutcome::Job(1), PopOutcome::Job(2)] {
                return Err(format!("pops {popped:?}, want FIFO [Job(1), Job(2)]"));
            }
            if finale.len() != 0 {
                return Err(format!("{} jobs left in a drained queue", finale.len()));
            }
            Ok(())
        }),
    }
}

/// Close-side wakeup: the producer pushes one job then closes while the
/// consumer pops until `Closed`. Property: the consumer sees exactly the
/// job then `Closed` — close must both let queued work drain and wake a
/// parked popper.
pub fn queue_close_drain<Q: QueueSut>() -> Scenario {
    let queue = Arc::new(Q::new(2));
    let popped: Log<PopOutcome> = new_log();
    let producer = {
        let queue = Arc::clone(&queue);
        Box::new(move || {
            let ok = queue.push(1, 0);
            assert!(ok, "push into empty open queue rejected");
            queue.close();
        }) as Box<dyn FnOnce() + Send>
    };
    let consumer = {
        let queue = Arc::clone(&queue);
        let popped = Arc::clone(&popped);
        Box::new(move || {
            // Bounded loop: a correct queue yields Closed in ≤ 2 pops.
            for _ in 0..3 {
                let r = queue.pop();
                push(&popped, r);
                if r != PopOutcome::Job(1) {
                    break;
                }
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![producer, consumer],
        check: Box::new(move || {
            let popped = popped.lock().unwrap();
            if popped.as_slice() != [PopOutcome::Job(1), PopOutcome::Closed] {
                return Err(format!("pops {popped:?}, want [Job(1), Closed]"));
            }
            Ok(())
        }),
    }
}

/// Priority drain racing close: two jobs (low then high priority) are
/// queued before the threads start; a consumer pops both while another
/// thread closes the queue at an arbitrary point. Property: the high
/// class pops first and close never eats a queued job.
pub fn queue_priority_close<Q: QueueSut>() -> Scenario {
    let queue = Arc::new(Q::new(4));
    assert!(queue.push(1, 0), "setup push rejected");
    assert!(queue.push(2, 2), "setup push rejected");
    let popped: Log<PopOutcome> = new_log();
    let consumer = {
        let queue = Arc::clone(&queue);
        let popped = Arc::clone(&popped);
        Box::new(move || {
            push(&popped, queue.pop());
            push(&popped, queue.pop());
        }) as Box<dyn FnOnce() + Send>
    };
    let closer = {
        let queue = Arc::clone(&queue);
        Box::new(move || queue.close()) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![consumer, closer],
        check: Box::new(move || {
            let popped = popped.lock().unwrap();
            if popped.as_slice() != [PopOutcome::Job(2), PopOutcome::Job(1)] {
                return Err(format!(
                    "pops {popped:?}, want priority order [Job(2), Job(1)]"
                ));
            }
            Ok(())
        }),
    }
}

// ---------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------

/// A named, time-moded scenario constructor.
pub struct ScenarioModel {
    pub name: &'static str,
    pub mode: TimeMode,
    pub build: fn() -> Scenario,
}

impl Model for ScenarioModel {
    fn name(&self) -> &'static str {
        self.name
    }
    fn time_mode(&self) -> TimeMode {
        self.mode
    }
    fn build(&self) -> Scenario {
        (self.build)()
    }
}

/// Every model over the real sync-layer code, in report order.
pub fn all_models() -> Vec<ScenarioModel> {
    vec![
        ScenarioModel {
            name: "barrier-wait-2x2",
            mode: TimeMode::Never,
            build: || barrier_rounds::<RealBarrier>(2, 2),
        },
        ScenarioModel {
            name: "barrier-wait-3x2",
            mode: TimeMode::Never,
            build: || barrier_rounds::<RealBarrier>(3, 2),
        },
        ScenarioModel {
            name: "barrier-publish",
            mode: TimeMode::Never,
            build: barrier_publish::<RealBarrier>,
        },
        ScenarioModel {
            name: "barrier-poison-mid",
            mode: TimeMode::Never,
            build: barrier_poison_mid::<RealBarrier>,
        },
        ScenarioModel {
            name: "barrier-last-arriver",
            mode: TimeMode::Never,
            build: barrier_last_arriver::<RealBarrier>,
        },
        ScenarioModel {
            name: "barrier-deadline-race",
            mode: TimeMode::Nondet,
            build: barrier_deadline_race::<RealBarrier>,
        },
        ScenarioModel {
            name: "pool-contended",
            mode: TimeMode::Never,
            build: pool_contended::<RealPool>,
        },
        ScenarioModel {
            name: "pool-quarantine-heal",
            mode: TimeMode::Nondet,
            build: pool_quarantine_heal::<RealPool>,
        },
        ScenarioModel {
            name: "queue-spsc",
            mode: TimeMode::Never,
            build: queue_spsc::<RealQueue>,
        },
        ScenarioModel {
            name: "queue-close-drain",
            mode: TimeMode::Never,
            build: queue_close_drain::<RealQueue>,
        },
        ScenarioModel {
            name: "queue-priority-close",
            mode: TimeMode::Never,
            build: queue_priority_close::<RealQueue>,
        },
    ]
}
