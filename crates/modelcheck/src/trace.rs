//! Replayable counterexample traces: schema-validated JSON in the same
//! hand-rolled `bench::json` discipline as BENCH/ANALYZE.
//!
//! A trace records the complete decision sequence of one failing
//! schedule plus the op each decision executed (for divergence checking
//! on replay) and the failure it produced. `threefive analyze
//! --model-check` writes one file per counterexample; `--replay FILE`
//! re-executes the schedule step-for-step against the current code.

use threefive_bench::json::Json;

use crate::explore::Counterexample;
use crate::sched::{Decision, TimeMode};

/// Trace schema version; bump on any incompatible layout change.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Document kind tag.
pub const TRACE_KIND: &str = "MODELCHECK_TRACE";

/// A parsed (or freshly built) replay trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Model name the schedule belongs to.
    pub model: String,
    /// Seeded mutation, `None` for the real code.
    pub mutation: Option<String>,
    /// Time mode the model ran under.
    pub time_mode: TimeMode,
    /// The decision sequence.
    pub decisions: Vec<Decision>,
    /// Human-readable op per decision (validated on replay).
    pub op_desc: Vec<String>,
    /// Failure kind tag (`deadlock` / `panic` / `property` /
    /// `divergence`).
    pub failure_kind: String,
    /// Failure message.
    pub failure_message: String,
}

impl Trace {
    /// Builds a trace from an exploration counterexample.
    pub fn from_counterexample(
        model: &str,
        mutation: Option<&str>,
        time_mode: TimeMode,
        cex: &Counterexample,
    ) -> Trace {
        Trace {
            model: model.to_string(),
            mutation: mutation.map(str::to_string),
            time_mode,
            decisions: cex.decisions.clone(),
            op_desc: cex.op_desc.clone(),
            failure_kind: cex.failure.kind().to_string(),
            failure_message: cex.failure.message(),
        }
    }

    /// Serializes to the JSON tree.
    pub fn to_json(&self) -> Json {
        let decisions = self
            .decisions
            .iter()
            .zip(&self.op_desc)
            .enumerate()
            .map(|(step, (d, op))| {
                Json::Obj(vec![
                    ("step".into(), Json::num(step as f64)),
                    ("tid".into(), Json::num(d.tid as f64)),
                    ("variant".into(), Json::num(f64::from(d.variant))),
                    ("timeout".into(), Json::Bool(d.timeout)),
                    ("op".into(), Json::str(op.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::num(TRACE_SCHEMA_VERSION as f64),
            ),
            ("kind".into(), Json::str(TRACE_KIND)),
            ("model".into(), Json::str(self.model.clone())),
            (
                "mutation".into(),
                match &self.mutation {
                    Some(m) => Json::str(m.clone()),
                    None => Json::Null,
                },
            ),
            (
                "time_mode".into(),
                Json::str(match self.time_mode {
                    TimeMode::Never => "never",
                    TimeMode::Nondet => "nondet",
                }),
            ),
            ("decisions".into(), Json::Arr(decisions)),
            (
                "failure".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::str(self.failure_kind.clone())),
                    ("message".into(), Json::str(self.failure_message.clone())),
                ]),
            ),
        ])
    }

    /// Serializes to text, self-validating first (the same discipline as
    /// BENCH/ANALYZE reports: a trace that does not round-trip is a bug).
    pub fn to_text(&self) -> String {
        let text = self.to_json().to_string();
        debug_assert!(
            Trace::parse(&text).is_ok(),
            "emitted trace failed self-validation"
        );
        text
    }

    /// Parses and schema-validates a trace document.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let json = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "trace schema_version {version} != supported {TRACE_SCHEMA_VERSION}"
            ));
        }
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing kind")?;
        if kind != TRACE_KIND {
            return Err(format!("kind `{kind}` is not `{TRACE_KIND}`"));
        }
        let model = json
            .get("model")
            .and_then(Json::as_str)
            .ok_or("missing model")?
            .to_string();
        let mutation = match json.get("mutation") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("mutation must be a string or null")?
                    .to_string(),
            ),
        };
        let time_mode = match json
            .get("time_mode")
            .and_then(Json::as_str)
            .ok_or("missing time_mode")?
        {
            "never" => TimeMode::Never,
            "nondet" => TimeMode::Nondet,
            other => return Err(format!("unknown time_mode `{other}`")),
        };
        let raw = json
            .get("decisions")
            .and_then(Json::as_arr)
            .ok_or("missing decisions array")?;
        let mut decisions = Vec::with_capacity(raw.len());
        let mut op_desc = Vec::with_capacity(raw.len());
        for (i, entry) in raw.iter().enumerate() {
            let tid = entry
                .get("tid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("decision {i}: missing tid"))?
                as usize;
            let variant = entry
                .get("variant")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("decision {i}: missing variant"))?
                as u32;
            let timeout = entry
                .get("timeout")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("decision {i}: missing timeout"))?;
            let op = entry
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("decision {i}: missing op"))?
                .to_string();
            decisions.push(Decision {
                tid,
                variant,
                timeout,
            });
            op_desc.push(op);
        }
        let failure = json.get("failure").ok_or("missing failure")?;
        let failure_kind = failure
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("failure: missing kind")?
            .to_string();
        let failure_message = failure
            .get("message")
            .and_then(Json::as_str)
            .ok_or("failure: missing message")?
            .to_string();
        Ok(Trace {
            model,
            mutation,
            time_mode,
            decisions,
            op_desc,
            failure_kind,
            failure_message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Failure;

    fn sample() -> Trace {
        Trace::from_counterexample(
            "barrier-wait-2x2",
            Some("drop-poison-check"),
            TimeMode::Never,
            &Counterexample {
                decisions: vec![
                    Decision {
                        tid: 0,
                        variant: 0,
                        timeout: false,
                    },
                    Decision {
                        tid: 1,
                        variant: 2,
                        timeout: true,
                    },
                ],
                op_desc: vec!["start".into(), "cond-wait cv0 m0".into()],
                failure: Failure::Deadlock {
                    detail: "deadlock: t0 spinning".into(),
                },
            },
        )
    }

    #[test]
    fn trace_round_trips() {
        let t = sample();
        let text = t.to_text();
        let back = Trace::parse(&text).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn bad_schema_version_rejected() {
        let Json::Obj(mut fields) = sample().to_json() else {
            unreachable!()
        };
        for (k, v) in fields.iter_mut() {
            if k == "schema_version" {
                *v = Json::num(99.0);
            }
        }
        let err = Trace::parse(&Json::Obj(fields).to_string()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_failure_rejected() {
        let json = sample().to_json();
        let Json::Obj(fields) = json else {
            unreachable!()
        };
        let stripped: Vec<_> = fields.into_iter().filter(|(k, _)| k != "failure").collect();
        let err = Trace::parse(&Json::Obj(stripped).to_string()).unwrap_err();
        assert!(err.contains("failure"), "{err}");
    }
}
