//! The checker-instrumented [`SyncFamily`]: every primitive routes its
//! operations through the execution controller in `sched`.
//!
//! The real OS threads of an execution are fully serialized — the
//! controller runs exactly one logical thread between any two
//! scheduling points — so the *data* protected by a model mutex needs
//! no real lock. It lives in an `UnsafeCell`, with exclusivity
//! guaranteed by the model-level mutex ownership the controller
//! enforces (the same construction loom uses).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::time::Duration;

use threefive_sync::shim::{
    AtomicBoolShim, AtomicUsizeShim, CondvarShim, GuardOf, MutexShim, Ordering, SyncFamily,
};

use crate::sched::{ExecHandle, MemOrd, OpKind};

thread_local! {
    static EXECUTION: RefCell<Option<ExecHandle>> = const { RefCell::new(None) };
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Installs (or clears) the execution handle for the calling OS thread.
pub(crate) fn install(h: Option<ExecHandle>) {
    EXECUTION.with(|e| *e.borrow_mut() = h);
}

/// Sets the logical thread id for the calling OS thread.
pub(crate) fn set_tid(tid: usize) {
    TID.with(|t| t.set(tid));
}

fn with_exec<R>(f: impl FnOnce(&ExecHandle, usize) -> R) -> R {
    EXECUTION.with(|e| {
        let borrow = e.borrow();
        let h = borrow
            .as_ref()
            .expect("threefive-modelcheck: ModelFamily primitive used outside a model execution");
        f(h, TID.with(|t| t.get()))
    })
}

fn op(kind: OpKind) -> (u64, bool, bool) {
    with_exec(|h, tid| h.op(tid, kind))
}

/// The model-checked sync family; plug into any primitive generic over
/// [`SyncFamily`].
pub struct ModelFamily;

/// Model `AtomicUsize`: the value lives in the controller's store
/// history, this is just the location id.
pub struct MAtomicUsize {
    id: usize,
}

impl AtomicUsizeShim for MAtomicUsize {
    fn new(v: usize) -> Self {
        Self::named(v, "atomic-usize")
    }
    fn named(v: usize, name: &'static str) -> Self {
        let id = with_exec(|h, _| h.register_loc(name, v as u64));
        MAtomicUsize { id }
    }
    fn load(&self, order: Ordering) -> usize {
        let (v, _, _) = op(OpKind::Load {
            loc: self.id,
            ord: MemOrd::from_std(order),
        });
        v as usize
    }
    fn store(&self, v: usize, order: Ordering) {
        op(OpKind::Store {
            loc: self.id,
            val: v as u64,
            ord: MemOrd::from_std(order),
        });
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        let (old, _, _) = op(OpKind::RmwAdd {
            loc: self.id,
            delta: v as u64,
            ord: MemOrd::from_std(order),
        });
        old as usize
    }
}

/// Model `AtomicBool` (0/1 in the store history).
pub struct MAtomicBool {
    id: usize,
}

impl AtomicBoolShim for MAtomicBool {
    fn new(v: bool) -> Self {
        Self::named(v, "atomic-bool")
    }
    fn named(v: bool, name: &'static str) -> Self {
        let id = with_exec(|h, _| h.register_loc(name, u64::from(v)));
        MAtomicBool { id }
    }
    fn load(&self, order: Ordering) -> bool {
        let (v, _, _) = op(OpKind::Load {
            loc: self.id,
            ord: MemOrd::from_std(order),
        });
        v != 0
    }
    fn store(&self, v: bool, order: Ordering) {
        op(OpKind::Store {
            loc: self.id,
            val: u64::from(v),
            ord: MemOrd::from_std(order),
        });
    }
}

/// Model mutex: ownership is controller state; the protected data sits
/// in an `UnsafeCell` guarded by that ownership.
pub struct MMutex<T> {
    id: usize,
    cell: UnsafeCell<T>,
}

// SAFETY: all access to `cell` goes through `MGuard`, which is only
// constructed while the controller has granted this thread the
// model-level mutex; the controller serializes execution, so at most
// one thread can hold a live guard (forced teardown of an already
// failed execution is single-threaded unwind while every other thread
// stays parked).
unsafe impl<T: Send> Send for MMutex<T> {}
// SAFETY: see above — `&MMutex` only exposes `cell` through the
// controller-granted guard.
unsafe impl<T: Send> Sync for MMutex<T> {}

/// RAII guard for [`MMutex`]; releases the model mutex on drop.
pub struct MGuard<'a, T> {
    mx: &'a MMutex<T>,
    /// Set when a condvar wait consumed the guard: drop must not issue
    /// a second unlock op (the wait released the mutex atomically).
    defused: bool,
}

impl<T> std::ops::Deref for MGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while this thread holds the
        // model-level mutex (see `MMutex` Send/Sync notes).
        unsafe { &*self.mx.cell.get() }
    }
}

impl<T> std::ops::DerefMut for MGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive model-level ownership.
        unsafe { &mut *self.mx.cell.get() }
    }
}

impl<T> Drop for MGuard<'_, T> {
    fn drop(&mut self) {
        if !self.defused {
            op(OpKind::MutexUnlock { m: self.mx.id });
        }
    }
}

impl<T: Send> MutexShim<T> for MMutex<T> {
    type Guard<'a>
        = MGuard<'a, T>
    where
        T: 'a;
    fn new(value: T) -> Self {
        let id = with_exec(|h, _| h.register_mutex());
        MMutex {
            id,
            cell: UnsafeCell::new(value),
        }
    }
    fn lock(&self) -> MGuard<'_, T> {
        op(OpKind::MutexLock { m: self.id });
        MGuard {
            mx: self,
            defused: false,
        }
    }
}

/// Model condvar: waiter bookkeeping is controller state; notifies with
/// no waiters are (correctly) lost.
pub struct MCondvar {
    id: usize,
}

impl CondvarShim for MCondvar {
    type Family = ModelFamily;
    fn new() -> Self {
        let id = with_exec(|h, _| h.register_condvar());
        MCondvar { id }
    }
    fn notify_one(&self) {
        op(OpKind::CondNotifyOne { cv: self.id });
    }
    fn notify_all(&self) {
        op(OpKind::CondNotifyAll { cv: self.id });
    }
    fn wait_timeout<'a, T: Send>(
        &self,
        guard: GuardOf<'a, ModelFamily, T>,
        _timeout: Duration,
    ) -> (GuardOf<'a, ModelFamily, T>, bool) {
        let mx = guard.mx;
        let mut guard = guard;
        // The CondWait op releases the mutex atomically inside the
        // controller; the guard must not unlock again.
        guard.defused = true;
        drop(guard);
        let (_, timed_out, _) = op(OpKind::CondWait {
            cv: self.id,
            m: mx.id,
        });
        // The grant implies the controller reacquired the mutex for us.
        (MGuard { mx, defused: false }, timed_out)
    }
}

/// Armed model deadline (an id into the controller's latch table).
#[derive(Clone, Copy)]
pub struct MDeadline {
    id: usize,
}

impl SyncFamily for ModelFamily {
    type AtomicUsize = MAtomicUsize;
    type AtomicBool = MAtomicBool;
    type Mutex<T: Send> = MMutex<T>;
    type Condvar = MCondvar;
    type Deadline = MDeadline;

    /// Every spin iteration yields (a schedule point) under the model.
    const SPIN_YIELD_LIMIT: u32 = 0;

    fn spin_hint() {}
    fn yield_now() {
        op(OpKind::Yield);
    }
    fn deadline(_timeout: Duration) -> MDeadline {
        let id = with_exec(|h, _| h.register_deadline());
        MDeadline { id }
    }
    fn expired(deadline: MDeadline) -> bool {
        let (_, _, expired) = op(OpKind::DeadlineCheck { d: deadline.id });
        expired
    }
    fn remaining(deadline: MDeadline) -> Option<Duration> {
        let (_, _, expired) = op(OpKind::DeadlineCheck { d: deadline.id });
        // The concrete duration is only ever used as a wait bound, which
        // the model ignores.
        (!expired).then(|| Duration::from_secs(3600))
    }
}
