//! Deterministic execution engine: one logical step at a time.
//!
//! A model execution runs each logical thread as a real OS thread, but
//! only one ever makes progress: every shim operation (atomic access,
//! mutex lock/unlock, condvar wait/notify, spin yield, deadline check)
//! is submitted to a central controller, which executes exactly one
//! pending operation per step against an explicit memory model and then
//! wakes the chosen thread. All nondeterminism — which thread steps,
//! which store a weak load observes, whether a timeout fires, which
//! condvar waiter a notify picks — is a [`Decision`] made centrally, so
//! an execution is fully determined by its decision sequence and can be
//! replayed bit-for-bit from a recorded prefix (DESIGN.md §16).
//!
//! ## Weak memory
//!
//! Atomic locations keep their full store history with vector-clock
//! metadata. A load's *readable set* contains every store not yet
//! obsoleted for the reading thread by happens-before or read-read
//! coherence; `Relaxed` loads never acquire the writer's clock, while
//! `Acquire`/`SeqCst` loads of `Release`d stores do. This is what lets
//! the checker distinguish a justified `Relaxed` from a reordering bug
//! the line-level lint can only count. Two documented approximations:
//! `SeqCst` is modeled as acquire/release plus latest-store-only reads
//! (no global SC order construction), and a bounded-staleness fairness
//! rule forces a re-read of the same location to advance past a stale
//! store after one repeat, so spin loops terminate (eventual visibility,
//! which real hardware provides).

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Which thread steps and which variant of its pending operation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Logical thread id.
    pub tid: usize,
    /// Variant index: the readable-store index for loads, the waiter
    /// index for `notify_one`, 0/1 for deadline not-expired/expired,
    /// 0 otherwise.
    pub variant: u32,
    /// `true` when this decision fires a condvar-wait timeout on a
    /// blocked thread instead of granting its pending operation.
    pub timeout: bool,
}

/// How the model treats time ([`crate::family::ModelFamily`] deadlines
/// and condvar-wait timeouts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeMode {
    /// Deadlines never expire and waits never time out. Lost wakeups
    /// become deadlocks the scheduler detects — the strictest setting,
    /// usable whenever the modeled protocol does not rely on timeout
    /// polling for progress.
    Never,
    /// Every deadline check and every blocked wait may nondeterministically
    /// time out (latching per deadline). Needed for protocols whose
    /// progress legitimately relies on timeout retry (pool heal polling).
    Nondet,
}

/// Memory-ordering strength as the model distinguishes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOrd {
    /// `Ordering::Relaxed`: no clock transfer.
    Relaxed,
    /// `Ordering::Acquire` (loads / RMW read half).
    Acquire,
    /// `Ordering::Release` (stores / RMW write half).
    Release,
    /// `Ordering::AcqRel` (RMW both halves).
    AcqRel,
    /// `Ordering::SeqCst`: acquire/release plus latest-store-only reads.
    SeqCst,
}

impl MemOrd {
    /// Whether a load with this ordering acquires the store's clock.
    fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }
    /// Whether a store with this ordering publishes the writer's clock.
    fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
    /// Converts from the std ordering (shim call sites pass it through).
    pub fn from_std(o: std::sync::atomic::Ordering) -> Self {
        use std::sync::atomic::Ordering as O;
        match o {
            O::Relaxed => MemOrd::Relaxed,
            O::Acquire => MemOrd::Acquire,
            O::Release => MemOrd::Release,
            O::AcqRel => MemOrd::AcqRel,
            _ => MemOrd::SeqCst,
        }
    }
}

impl fmt::Display for MemOrd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOrd::Relaxed => "relaxed",
            MemOrd::Acquire => "acquire",
            MemOrd::Release => "release",
            MemOrd::AcqRel => "acqrel",
            MemOrd::SeqCst => "seqcst",
        };
        f.write_str(s)
    }
}

/// One shim operation as submitted to the controller.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Implicit first operation of every logical thread; makes spawn
    /// order schedulable and independent of OS startup timing.
    Start,
    /// Atomic load.
    Load {
        /// Location id.
        loc: usize,
        /// Ordering.
        ord: MemOrd,
    },
    /// Atomic store.
    Store {
        /// Location id.
        loc: usize,
        /// Value written.
        val: u64,
        /// Ordering.
        ord: MemOrd,
    },
    /// Atomic fetch-add (reads latest store: RMWs are mo-atomic).
    RmwAdd {
        /// Location id.
        loc: usize,
        /// Addend.
        delta: u64,
        /// Ordering.
        ord: MemOrd,
    },
    /// Mutex acquisition; enabled only while the mutex is free.
    MutexLock {
        /// Mutex id.
        m: usize,
    },
    /// Mutex release.
    MutexUnlock {
        /// Mutex id.
        m: usize,
    },
    /// Condvar wait entry: atomically releases the mutex and parks.
    CondWait {
        /// Condvar id.
        cv: usize,
        /// Mutex id released while waiting.
        m: usize,
    },
    /// Wake one waiter (the variant picks which); no-op when none wait.
    CondNotifyOne {
        /// Condvar id.
        cv: usize,
    },
    /// Wake every waiter; no-op when none wait.
    CondNotifyAll {
        /// Condvar id.
        cv: usize,
    },
    /// Spin-loop yield: parks until any store/RMW bumps the global
    /// write version (spin-wait fairness; all-spinning = livelock,
    /// reported as deadlock).
    Yield,
    /// Deadline poll: variant 1 latches the deadline expired
    /// (only offered under [`TimeMode::Nondet`]).
    DeadlineCheck {
        /// Deadline id.
        d: usize,
    },
    /// Internal continuation: a notified/timed-out waiter reacquiring
    /// its mutex. Enabled only while the mutex is free.
    Reacquire {
        /// Mutex id.
        m: usize,
        /// Whether the wait reported a timeout.
        timed_out: bool,
    },
}

impl OpKind {
    /// Short stable description used in schedule traces and replay
    /// validation.
    pub fn describe(&self, ctl: &Ctl) -> String {
        match self {
            OpKind::Start => "start".into(),
            OpKind::Load { loc, ord } => format!("load {} {}", ctl.memory.locs[*loc].name, ord),
            OpKind::Store { loc, val, ord } => {
                format!("store {} {} {}", ctl.memory.locs[*loc].name, val, ord)
            }
            OpKind::RmwAdd { loc, delta, ord } => {
                format!("rmw-add {} {} {}", ctl.memory.locs[*loc].name, delta, ord)
            }
            OpKind::MutexLock { m } => format!("lock m{m}"),
            OpKind::MutexUnlock { m } => format!("unlock m{m}"),
            OpKind::CondWait { cv, m } => format!("cond-wait cv{cv} m{m}"),
            OpKind::CondNotifyOne { cv } => format!("notify-one cv{cv}"),
            OpKind::CondNotifyAll { cv } => format!("notify-all cv{cv}"),
            OpKind::Yield => "yield".into(),
            OpKind::DeadlineCheck { d } => format!("deadline d{d}"),
            OpKind::Reacquire { m, timed_out } => format!("reacquire m{m} timeout={timed_out}"),
        }
    }
}

/// Why an execution failed.
#[derive(Clone, Debug, PartialEq)]
pub enum Failure {
    /// No thread can make progress and not all are done (covers lost
    /// wakeups in [`TimeMode::Never`] and all-threads-spinning livelock).
    Deadlock {
        /// Human-readable per-thread blocked states.
        detail: String,
    },
    /// A logical thread panicked (assertion inside the modeled code).
    Panic {
        /// Logical thread id.
        tid: usize,
        /// Panic payload rendered to text.
        message: String,
    },
    /// The model's end-of-execution property check failed.
    Property {
        /// The property violation.
        message: String,
    },
    /// A replayed schedule no longer matches the code (op mismatch or
    /// prescribed decision not enabled).
    Divergence {
        /// Step at which replay diverged.
        step: usize,
        /// What differed.
        detail: String,
    },
}

impl Failure {
    /// Stable kind tag for JSON traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Deadlock { .. } => "deadlock",
            Failure::Panic { .. } => "panic",
            Failure::Property { .. } => "property",
            Failure::Divergence { .. } => "divergence",
        }
    }

    /// Human-readable message.
    pub fn message(&self) -> String {
        match self {
            Failure::Deadlock { detail } => detail.clone(),
            Failure::Panic { tid, message } => format!("thread {tid}: {message}"),
            Failure::Property { message } => message.clone(),
            Failure::Divergence { step, detail } => format!("step {step}: {detail}"),
        }
    }
}

/// Vector clock over logical threads.
#[derive(Clone, Debug, Default, PartialEq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }
    fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(*v);
        }
    }
}

/// Writer id of the initial store of every location (visible to all).
const ROOT_WRITER: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Store {
    val: u64,
    writer: usize,
    /// Writer's own clock component at store time (coherence stamp).
    stamp: u64,
    /// Release clock carried to acquiring readers; `None` for relaxed
    /// stores.
    clock: Option<VClock>,
}

struct Loc {
    name: &'static str,
    /// Modification order; index == mo position.
    stores: Vec<Store>,
}

struct MutexState {
    owner: Option<usize>,
    clock: VClock,
}

struct CondvarState {
    waiters: Vec<usize>,
}

/// How many times a deadline may nondeterministically report
/// "not expired" before the model forces it to expire. Real time always
/// advances, so a timeout-retry loop cannot poll forever; this bound is
/// what makes Nondet-mode decision trees finite (DESIGN.md §16).
const MAX_DEADLINE_POLLS: u32 = 2;

#[derive(Clone, Copy)]
struct DeadlineSt {
    expired: bool,
    polls: u32,
}

struct Memory {
    locs: Vec<Loc>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    deadlines: Vec<DeadlineSt>,
    write_version: u64,
}

/// Where a logical thread currently stands.
#[derive(Clone, Debug, PartialEq)]
enum TState {
    /// Spawned but has not yet submitted its `Start` op.
    Starting,
    /// Submitted an op; waiting for the controller to grant it.
    Pending(OpKind),
    /// Granted; executing user code between ops.
    Running,
    /// Parked inside a condvar wait.
    CvWaiting {
        cv: usize,
        m: usize,
    },
    /// Parked in a spin yield until the write version advances.
    SpinWaiting {
        seen: u64,
    },
    Done,
}

/// What a granted thread receives back from the controller.
#[derive(Clone, Copy, Debug)]
enum Grant {
    Proceed {
        load_val: u64,
        timed_out: bool,
        expired: bool,
    },
    Abort,
}

struct Slot {
    state: TState,
    grant: Option<Grant>,
    clock: VClock,
    /// Read-read coherence + bounded-staleness fairness: per location,
    /// the last mo read and how often the same mo repeated.
    last_read: HashMap<usize, (usize, u32)>,
    /// Locations this thread has loaded since its last yield — the
    /// "spin read set" a park decision is judged against.
    spin_reads: Vec<usize>,
    panic_msg: Option<String>,
}

/// Shared controller state (public only for `OpKind::describe`).
pub struct Ctl {
    memory: Memory,
    threads: Vec<Slot>,
    /// Build/finale inline mode: ops apply immediately, deterministically.
    inline: bool,
    aborting: bool,
    steps: usize,
}

/// Payload of the panic used to unwind aborted logical threads.
pub struct ModelAbort;

struct Shared {
    ctl: Mutex<Ctl>,
    cv: Condvar,
    mode: TimeMode,
}

/// Handle to the running execution; the model-family shim types hold one
/// through a thread-local (see `family`).
#[derive(Clone)]
pub struct ExecHandle {
    shared: Arc<Shared>,
}

/// Registration results are plain ids; shim types store them.
impl ExecHandle {
    /// Registers an atomic location with its initial value.
    pub fn register_loc(&self, name: &'static str, init: u64) -> usize {
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.memory.locs.push(Loc {
            name,
            stores: vec![Store {
                val: init,
                writer: ROOT_WRITER,
                stamp: 0,
                clock: None,
            }],
        });
        ctl.memory.locs.len() - 1
    }

    /// Registers a mutex.
    pub fn register_mutex(&self) -> usize {
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.memory.mutexes.push(MutexState {
            owner: None,
            clock: VClock::default(),
        });
        ctl.memory.mutexes.len() - 1
    }

    /// Registers a condvar.
    pub fn register_condvar(&self) -> usize {
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.memory.condvars.push(CondvarState {
            waiters: Vec::new(),
        });
        ctl.memory.condvars.len() - 1
    }

    /// Registers (arms) a deadline; starts unexpired.
    pub fn register_deadline(&self) -> usize {
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.memory.deadlines.push(DeadlineSt {
            expired: false,
            polls: 0,
        });
        ctl.memory.deadlines.len() - 1
    }

    /// Submits `op` for the calling logical thread `tid` and blocks until
    /// the controller grants it. Returns the grant payload.
    ///
    /// In inline mode (model build, finale property check, and any op
    /// issued while unwinding) the op applies immediately with
    /// deterministic latest-value semantics instead of scheduling.
    pub fn op(&self, tid: usize, op: OpKind) -> (u64, bool, bool) {
        let mut ctl = self.shared.ctl.lock().unwrap();
        if ctl.inline || std::thread::panicking() {
            let forced = std::thread::panicking();
            return Ctl::apply_inline(&mut ctl, op, forced);
        }
        if ctl.aborting {
            drop(ctl);
            std::panic::panic_any(ModelAbort);
        }
        ctl.threads[tid].state = TState::Pending(op);
        self.shared.cv.notify_all();
        loop {
            if let Some(grant) = ctl.threads[tid].grant.take() {
                ctl.threads[tid].state = TState::Running;
                return match grant {
                    Grant::Proceed {
                        load_val,
                        timed_out,
                        expired,
                    } => (load_val, timed_out, expired),
                    Grant::Abort => {
                        drop(ctl);
                        std::panic::panic_any(ModelAbort);
                    }
                };
            }
            ctl = self.shared.cv.wait(ctl).unwrap();
        }
    }

    fn mark_done(&self, tid: usize, panic_msg: Option<String>) {
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.threads[tid].state = TState::Done;
        ctl.threads[tid].panic_msg = panic_msg;
        self.shared.cv.notify_all();
    }
}

impl Ctl {
    /// Deterministic immediate application (build / finale / unwind).
    fn apply_inline(ctl: &mut Ctl, op: OpKind, forced: bool) -> (u64, bool, bool) {
        match op {
            OpKind::Load { loc, .. } => {
                let v = ctl.memory.locs[loc].stores.last().unwrap().val;
                (v, false, false)
            }
            OpKind::Store { loc, val, .. } => {
                let stamp = ctl.memory.locs[loc].stores.len() as u64;
                ctl.memory.locs[loc].stores.push(Store {
                    val,
                    writer: ROOT_WRITER,
                    stamp,
                    clock: None,
                });
                ctl.memory.write_version += 1;
                (0, false, false)
            }
            OpKind::RmwAdd { loc, delta, .. } => {
                let old = ctl.memory.locs[loc].stores.last().unwrap().val;
                let stamp = ctl.memory.locs[loc].stores.len() as u64;
                ctl.memory.locs[loc].stores.push(Store {
                    val: old.wrapping_add(delta),
                    writer: ROOT_WRITER,
                    stamp,
                    clock: None,
                });
                ctl.memory.write_version += 1;
                (old, false, false)
            }
            OpKind::MutexLock { m } | OpKind::Reacquire { m, .. } => {
                // Inline mode is single-threaded (build/finale) or
                // best-effort teardown (unwind): force-take the lock.
                ctl.memory.mutexes[m].owner = Some(ROOT_WRITER);
                (0, false, false)
            }
            OpKind::MutexUnlock { m } => {
                ctl.memory.mutexes[m].owner = None;
                (0, false, false)
            }
            // An inline condvar wait cannot park: report it timed out so
            // retry loops drain out.
            OpKind::CondWait { .. } => (0, true, false),
            // Deadlines read as expired while unwinding so bounded retry
            // loops in Drop impls terminate; otherwise report real state.
            OpKind::DeadlineCheck { d } => {
                let expired = forced || ctl.memory.deadlines[d].expired;
                (0, false, expired)
            }
            OpKind::Start
            | OpKind::CondNotifyOne { .. }
            | OpKind::CondNotifyAll { .. }
            | OpKind::Yield => (0, false, false),
        }
    }

    /// All threads either need a controller decision or are finished.
    fn quiescent(&self) -> bool {
        self.threads.iter().all(|t| {
            matches!(
                t.state,
                TState::Pending(_)
                    | TState::CvWaiting { .. }
                    | TState::SpinWaiting { .. }
                    | TState::Done
            )
        })
    }

    fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == TState::Done)
    }

    /// The readable-store index set for `tid` loading `loc`.
    fn readable(&self, tid: usize, loc: usize, ord: MemOrd) -> Vec<usize> {
        let stores = &self.memory.locs[loc].stores;
        let latest = stores.len() - 1;
        if ord == MemOrd::SeqCst {
            // Documented approximation: SeqCst loads observe only the
            // latest store (no weaker-than-SC outcomes for SC accesses).
            return vec![latest];
        }
        let slot = &self.threads[tid];
        // Happens-before coherence: any store hb-known to the reader
        // obsoletes all earlier stores.
        let mut cutoff = 0usize;
        for (mo, s) in self.memory.locs[loc].stores.iter().enumerate() {
            let known = s.writer == ROOT_WRITER || slot.clock.get(s.writer) >= s.stamp;
            if known {
                cutoff = cutoff.max(mo);
            }
        }
        // Read-read coherence: never go backwards in mo.
        let (mut last_mo, repeats) = slot.last_read.get(&loc).copied().unwrap_or((0, 0));
        if last_mo > latest {
            last_mo = latest;
        }
        cutoff = cutoff.max(last_mo);
        // Bounded staleness (fairness): after one repeated read of the
        // same store while a newer one is readable, force progress so
        // spin loops terminate.
        if repeats >= 1 && cutoff < latest {
            cutoff += 1;
        }
        (cutoff..=latest).collect()
    }

    /// Every decision currently possible, with the op it would run.
    fn enabled(&self, mode: TimeMode) -> Vec<(Decision, OpKind)> {
        let mut out = Vec::new();
        for (tid, slot) in self.threads.iter().enumerate() {
            match &slot.state {
                TState::Pending(op) => match op {
                    OpKind::Load { loc, ord } => {
                        for (i, _) in self.readable(tid, *loc, *ord).iter().enumerate() {
                            out.push((
                                Decision {
                                    tid,
                                    variant: i as u32,
                                    timeout: false,
                                },
                                op.clone(),
                            ));
                        }
                    }
                    OpKind::MutexLock { m } | OpKind::Reacquire { m, .. } => {
                        if self.memory.mutexes[*m].owner.is_none() {
                            out.push((
                                Decision {
                                    tid,
                                    variant: 0,
                                    timeout: false,
                                },
                                op.clone(),
                            ));
                        }
                    }
                    OpKind::CondNotifyOne { cv } => {
                        let n = self.memory.condvars[*cv].waiters.len().max(1);
                        for v in 0..n {
                            out.push((
                                Decision {
                                    tid,
                                    variant: v as u32,
                                    timeout: false,
                                },
                                op.clone(),
                            ));
                        }
                    }
                    OpKind::DeadlineCheck { d } => {
                        let dl = self.memory.deadlines[*d];
                        let variants: &[u32] = if dl.expired || mode == TimeMode::Never {
                            &[0]
                        } else if dl.polls >= MAX_DEADLINE_POLLS {
                            // Poll budget exhausted: time must advance.
                            &[1]
                        } else {
                            &[0, 1]
                        };
                        for &v in variants {
                            out.push((
                                Decision {
                                    tid,
                                    variant: v,
                                    timeout: false,
                                },
                                op.clone(),
                            ));
                        }
                    }
                    _ => out.push((
                        Decision {
                            tid,
                            variant: 0,
                            timeout: false,
                        },
                        op.clone(),
                    )),
                },
                TState::CvWaiting { cv, m } if mode == TimeMode::Nondet => {
                    out.push((
                        Decision {
                            tid,
                            variant: 0,
                            timeout: true,
                        },
                        OpKind::CondWait { cv: *cv, m: *m },
                    ));
                }
                TState::SpinWaiting { seen } if self.memory.write_version > *seen => {
                    out.push((
                        Decision {
                            tid,
                            variant: 0,
                            timeout: false,
                        },
                        OpKind::Yield,
                    ));
                }
                _ => {}
            }
        }
        out
    }

    /// Executes `d` against the model state; returns the op that ran.
    fn apply(&mut self, d: Decision, _mode: TimeMode) -> OpKind {
        self.steps += 1;
        let tid = d.tid;
        self.threads[tid].clock.bump(tid);

        if d.timeout {
            // Fire the wait timeout: the parked thread converts to a
            // mutex reacquisition reporting `timed_out`.
            let TState::CvWaiting { cv, m } = self.threads[tid].state.clone() else {
                unreachable!("timeout decision on non-waiting thread");
            };
            self.memory.condvars[cv].waiters.retain(|&w| w != tid);
            self.threads[tid].state = TState::Pending(OpKind::Reacquire { m, timed_out: true });
            return OpKind::CondWait { cv, m };
        }

        let op = match &self.threads[tid].state {
            TState::Pending(op) => op.clone(),
            TState::SpinWaiting { .. } => OpKind::Yield,
            other => unreachable!("decision on thread in state {other:?}"),
        };

        match &op {
            OpKind::Start => self.grant(tid, 0, false, false),
            OpKind::Load { loc, ord } => {
                let readable = self.readable(tid, *loc, *ord);
                let mo = readable[d.variant as usize];
                let (val, join) = {
                    let s = &self.memory.locs[*loc].stores[mo];
                    (
                        val_of(s),
                        if ord.acquires() {
                            s.clock.clone()
                        } else {
                            None
                        },
                    )
                };
                if let Some(c) = join {
                    self.threads[tid].clock.join(&c);
                }
                let slot = &mut self.threads[tid];
                let entry = slot.last_read.entry(*loc).or_insert((0, 0));
                if entry.0 == mo {
                    entry.1 += 1;
                } else {
                    *entry = (mo, 0);
                }
                if !slot.spin_reads.contains(loc) {
                    slot.spin_reads.push(*loc);
                }
                self.grant(tid, val, false, false);
            }
            OpKind::Store { loc, val, ord } => {
                let stamp = self.threads[tid].clock.get(tid);
                let clock = ord.releases().then(|| self.threads[tid].clock.clone());
                self.memory.locs[*loc].stores.push(Store {
                    val: *val,
                    writer: tid,
                    stamp,
                    clock,
                });
                let mo = self.memory.locs[*loc].stores.len() - 1;
                self.threads[tid].last_read.insert(*loc, (mo, 0));
                self.memory.write_version += 1;
                self.grant(tid, 0, false, false);
            }
            OpKind::RmwAdd { loc, delta, ord } => {
                // RMWs are mo-atomic: always read-modify the latest store.
                let (old, prev_clock) = {
                    let s = self.memory.locs[*loc].stores.last().unwrap();
                    (s.val, s.clock.clone())
                };
                if ord.acquires() {
                    if let Some(c) = &prev_clock {
                        self.threads[tid].clock.join(c);
                    }
                }
                let stamp = self.threads[tid].clock.get(tid);
                // Release sequence for RMW chains: a releasing RMW
                // carries its own clock, which (having joined the
                // previous store's clock when acquiring) keeps AcqRel
                // fetch-add chains transitive.
                let clock = ord.releases().then(|| self.threads[tid].clock.clone());
                self.memory.locs[*loc].stores.push(Store {
                    val: old.wrapping_add(*delta),
                    writer: tid,
                    stamp,
                    clock,
                });
                let mo = self.memory.locs[*loc].stores.len() - 1;
                self.threads[tid].last_read.insert(*loc, (mo, 0));
                self.memory.write_version += 1;
                self.grant(tid, old, false, false);
            }
            OpKind::MutexLock { m } => {
                debug_assert!(self.memory.mutexes[*m].owner.is_none());
                self.memory.mutexes[*m].owner = Some(tid);
                let clock = self.memory.mutexes[*m].clock.clone();
                self.threads[tid].clock.join(&clock);
                self.grant(tid, 0, false, false);
            }
            OpKind::MutexUnlock { m } => {
                self.memory.mutexes[*m].owner = None;
                let released = self.threads[tid].clock.clone();
                self.memory.mutexes[*m].clock.join(&released);
                self.grant(tid, 0, false, false);
            }
            OpKind::CondWait { cv, m } => {
                // Atomically release the mutex and park; no grant — the
                // thread wakes through notify or timeout as a Reacquire.
                self.memory.mutexes[*m].owner = None;
                let released = self.threads[tid].clock.clone();
                self.memory.mutexes[*m].clock.join(&released);
                self.memory.condvars[*cv].waiters.push(tid);
                self.threads[tid].state = TState::CvWaiting { cv: *cv, m: *m };
            }
            OpKind::CondNotifyOne { cv } => {
                let waiters = &mut self.memory.condvars[*cv].waiters;
                if !waiters.is_empty() {
                    let w = waiters.remove(d.variant as usize);
                    let TState::CvWaiting { m, .. } = self.threads[w].state else {
                        unreachable!("waiter list out of sync");
                    };
                    self.threads[w].state = TState::Pending(OpKind::Reacquire {
                        m,
                        timed_out: false,
                    });
                }
                self.grant(tid, 0, false, false);
            }
            OpKind::CondNotifyAll { cv } => {
                let waiters = std::mem::take(&mut self.memory.condvars[*cv].waiters);
                for w in waiters {
                    let TState::CvWaiting { m, .. } = self.threads[w].state else {
                        unreachable!("waiter list out of sync");
                    };
                    self.threads[w].state = TState::Pending(OpKind::Reacquire {
                        m,
                        timed_out: false,
                    });
                }
                self.grant(tid, 0, false, false);
            }
            OpKind::Yield => {
                if matches!(self.threads[tid].state, TState::SpinWaiting { .. }) {
                    // Waking from the park: return to the spin loop.
                    self.threads[tid].grant = Some(Grant::Proceed {
                        load_val: 0,
                        timed_out: false,
                        expired: false,
                    });
                    self.threads[tid].state = TState::Running;
                    self.threads[tid].spin_reads.clear();
                } else {
                    // A spinner may only park once it has read the latest
                    // store of every location it polled this loop pass.
                    // Parking on a stale read would miss a release that
                    // already happened (no further write will ever come to
                    // advance the write version) and report a false
                    // deadlock; a no-op yield keeps the thread runnable so
                    // the bounded-staleness rule forces its next read
                    // forward instead.
                    let stale = self.threads[tid].spin_reads.iter().any(|&loc| {
                        let latest = self.memory.locs[loc].stores.len() - 1;
                        self.threads[tid]
                            .last_read
                            .get(&loc)
                            .is_none_or(|&(mo, _)| mo < latest)
                    });
                    self.threads[tid].spin_reads.clear();
                    if stale {
                        self.grant(tid, 0, false, false);
                    } else {
                        // Entering the park: no grant until a write lands.
                        self.threads[tid].state = TState::SpinWaiting {
                            seen: self.memory.write_version,
                        };
                    }
                }
            }
            OpKind::DeadlineCheck { d: dl } => {
                if d.variant == 1 {
                    self.memory.deadlines[*dl].expired = true;
                } else {
                    self.memory.deadlines[*dl].polls += 1;
                }
                let expired = self.memory.deadlines[*dl].expired;
                self.grant(tid, 0, false, expired);
            }
            OpKind::Reacquire { m, timed_out } => {
                debug_assert!(self.memory.mutexes[*m].owner.is_none());
                self.memory.mutexes[*m].owner = Some(tid);
                let clock = self.memory.mutexes[*m].clock.clone();
                self.threads[tid].clock.join(&clock);
                self.grant(tid, 0, *timed_out, false);
            }
        }
        op
    }

    fn grant(&mut self, tid: usize, load_val: u64, timed_out: bool, expired: bool) {
        self.threads[tid].grant = Some(Grant::Proceed {
            load_val,
            timed_out,
            expired,
        });
        self.threads[tid].state = TState::Running;
    }

    fn blocked_detail(&self) -> String {
        let states: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state != TState::Done)
            .map(|(i, t)| match &t.state {
                TState::Pending(op) => format!("t{i} blocked on {op:?}"),
                TState::CvWaiting { cv, m } => format!("t{i} waiting on cv{cv} (mutex m{m})"),
                TState::SpinWaiting { .. } => format!("t{i} spinning (no writer can advance it)"),
                other => format!("t{i} in {other:?}"),
            })
            .collect();
        format!("deadlock: {}", states.join("; "))
    }
}

fn val_of(s: &Store) -> u64 {
    s.val
}

/// One fully-built scenario instance: the logical threads to run and the
/// end-of-execution property check.
pub struct Scenario {
    /// Logical thread bodies (run once each).
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Property check run after every thread finished (inline mode, with
    /// join-like visibility of all writes).
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

/// A checkable concurrency scenario: builds a fresh [`Scenario`] per
/// execution over the model sync family.
pub trait Model: Sync {
    /// Stable model name (goes into reports and traces).
    fn name(&self) -> &'static str;
    /// How time behaves for this model.
    fn time_mode(&self) -> TimeMode;
    /// Builds one fresh instance (called once per explored schedule).
    fn build(&self) -> Scenario;
}

/// Everything one execution produced, as the explorer needs it.
pub struct RunOutcome {
    /// The full decision sequence executed.
    pub decisions: Vec<Decision>,
    /// The op each decision ran (parallel to `decisions`).
    pub ops: Vec<OpKind>,
    /// Human-readable op descriptions (parallel to `decisions`).
    pub op_desc: Vec<String>,
    /// At each step, every decision that was enabled (for backtracking).
    pub enabled: Vec<Vec<(Decision, OpKind)>>,
    /// The failure, if the execution failed.
    pub failure: Option<Failure>,
    /// Steps executed.
    pub steps: usize,
    /// True when the step budget cut the execution short.
    pub truncated: bool,
}

/// Runs one execution of `model`, replaying `prefix` first and then
/// following the deterministic default policy (lowest tid, lowest
/// variant). `strict_prefix` additionally validates each replayed step's
/// op against `expect_ops` (replay mode).
pub fn run_one(
    model: &dyn Model,
    prefix: &[Decision],
    expect_ops: Option<&[String]>,
    max_steps: usize,
) -> RunOutcome {
    let shared = Arc::new(Shared {
        ctl: Mutex::new(Ctl {
            memory: Memory {
                locs: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                deadlines: Vec::new(),
                write_version: 0,
            },
            threads: Vec::new(),
            inline: true,
            aborting: false,
            steps: 0,
        }),
        cv: Condvar::new(),
        mode: model.time_mode(),
    });
    let handle = ExecHandle {
        shared: Arc::clone(&shared),
    };

    // Build the scenario with the execution installed so shim
    // constructors register their locations (inline mode).
    crate::family::install(Some(handle.clone()));
    let Scenario { threads, check } = model.build();
    let n_threads = threads.len();
    {
        let mut ctl = shared.ctl.lock().unwrap();
        ctl.inline = false;
        for _ in 0..n_threads {
            ctl.threads.push(Slot {
                state: TState::Starting,
                grant: None,
                clock: VClock::default(),
                last_read: HashMap::new(),
                spin_reads: Vec::new(),
                panic_msg: None,
            });
        }
    }

    // Spawn the logical threads; each submits Start as its first op.
    let mut joins = Vec::with_capacity(n_threads);
    for (tid, body) in threads.into_iter().enumerate() {
        let h = handle.clone();
        joins.push(std::thread::spawn(move || {
            crate::family::install(Some(h.clone()));
            crate::family::set_tid(tid);
            let result = catch_unwind(AssertUnwindSafe(|| {
                h.op(tid, OpKind::Start);
                body();
            }));
            let panic_msg = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.is::<ModelAbort>() {
                        None
                    } else {
                        Some(panic_text(payload))
                    }
                }
            };
            h.mark_done(tid, panic_msg);
            crate::family::install(None);
        }));
    }

    // Controller loop.
    let mut decisions = Vec::new();
    let mut ops = Vec::new();
    let mut op_desc = Vec::new();
    let mut enabled_log = Vec::new();
    let mut truncated = false;
    let mut failure: Option<Failure> = None;
    {
        let mut ctl = shared.ctl.lock().unwrap();
        loop {
            while !ctl.quiescent() {
                ctl = shared.cv.wait(ctl).unwrap();
            }
            // A thread that panicked (not aborted) ends the execution.
            if failure.is_none() {
                for (tid, t) in ctl.threads.iter_mut().enumerate() {
                    if let Some(msg) = t.panic_msg.take() {
                        failure = Some(Failure::Panic { tid, message: msg });
                    }
                }
            }
            if ctl.all_done() {
                break;
            }
            if failure.is_some() || truncated {
                // Abort the remaining threads deterministically.
                ctl.aborting = true;
                for t in ctl.threads.iter_mut() {
                    if t.state != TState::Done && t.state != TState::Running {
                        t.grant = Some(Grant::Abort);
                        t.state = TState::Running;
                    }
                }
                shared.cv.notify_all();
                continue;
            }
            let enabled = ctl.enabled(shared.mode);
            if enabled.is_empty() {
                failure = Some(Failure::Deadlock {
                    detail: ctl.blocked_detail(),
                });
                continue;
            }
            let step = decisions.len();
            let d = if step < prefix.len() {
                let want = prefix[step];
                if !enabled.iter().any(|(e, _)| *e == want) {
                    failure = Some(Failure::Divergence {
                        step,
                        detail: format!(
                            "prescribed decision {want:?} not enabled; enabled: {:?}",
                            enabled.iter().map(|(e, _)| e).collect::<Vec<_>>()
                        ),
                    });
                    continue;
                }
                want
            } else {
                // Default policy: lowest tid, then lowest variant, ops
                // before timeouts — deterministic.
                let mut best = enabled[0].0;
                for (e, _) in &enabled {
                    if (e.tid, e.timeout, e.variant) < (best.tid, best.timeout, best.variant) {
                        best = *e;
                    }
                }
                best
            };
            enabled_log.push(enabled);
            let op = ctl.apply(d, shared.mode);
            let desc = op.describe(&ctl);
            if let Some(expect) = expect_ops {
                if step < expect.len() && expect[step] != desc {
                    failure = Some(Failure::Divergence {
                        step,
                        detail: format!("expected op `{}`, code ran `{desc}`", expect[step]),
                    });
                    // Fall through: the op already applied; abort next
                    // round.
                }
            }
            decisions.push(d);
            ops.push(op);
            op_desc.push(desc);
            if decisions.len() >= max_steps {
                truncated = true;
            }
            shared.cv.notify_all();
        }
        ctl.inline = true;
    }

    for j in joins {
        let _ = j.join();
    }

    // Finale: the property check runs inline with full visibility.
    if failure.is_none() && !truncated {
        let result = catch_unwind(AssertUnwindSafe(check));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => failure = Some(Failure::Property { message: msg }),
            Err(payload) => {
                failure = Some(Failure::Property {
                    message: panic_text(payload),
                })
            }
        }
    }
    crate::family::install(None);

    let steps = decisions.len();
    RunOutcome {
        decisions,
        ops,
        op_desc,
        enabled: enabled_log,
        failure,
        steps,
        truncated,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
