//! Suite driver: runs the model catalog and the mutant regression
//! suite, and replays recorded traces against current code.

use crate::explore::{explore, Budgets};
use crate::models::{all_models, ScenarioModel};
use crate::mutants::all_mutants;
use crate::sched::{run_one, Failure, TimeMode};
use crate::trace::Trace;

/// Exploration result for one model, as reports consume it.
pub struct ModelOutcome {
    /// Model name from the catalog.
    pub name: &'static str,
    /// Time mode the model ran under.
    pub time_mode: TimeMode,
    /// Schedules (full executions) explored.
    pub schedules: usize,
    /// Total decisions executed across all schedules.
    pub steps: usize,
    /// Whether the decision tree was exhausted within budget.
    pub complete: bool,
    /// Whether the preemption bound pruned at least one schedule.
    pub bounded: bool,
    /// Counterexample trace, if the model failed.
    pub trace: Option<Trace>,
}

/// Explores one model (optionally tagging traces with a mutation slug).
pub fn run_model(model: &ScenarioModel, mutation: Option<&str>, budgets: &Budgets) -> ModelOutcome {
    let res = explore(model, budgets);
    let trace = res
        .counterexample
        .as_ref()
        .map(|cex| Trace::from_counterexample(model.name, mutation, model.mode, cex));
    ModelOutcome {
        name: model.name,
        time_mode: model.mode,
        schedules: res.schedules,
        steps: res.steps_total,
        complete: res.complete,
        bounded: res.bounded,
        trace,
    }
}

/// Runs every model in the catalog against the real sync-layer code.
pub fn run_suite(budgets: &Budgets) -> Vec<ModelOutcome> {
    all_models()
        .iter()
        .map(|m| run_model(m, None, budgets))
        .collect()
}

/// One mutant's verdict: the checker must find a counterexample.
pub struct MutantOutcome {
    /// Mutation slug.
    pub mutation: &'static str,
    /// The catching model's name.
    pub model: &'static str,
    /// What the seeded bug does.
    pub seeded: &'static str,
    /// Schedules explored before the verdict.
    pub schedules: usize,
    /// The counterexample trace; `None` means the mutant ESCAPED (a
    /// checker regression).
    pub trace: Option<Trace>,
}

impl MutantOutcome {
    /// Whether the checker caught the seeded bug.
    pub fn caught(&self) -> bool {
        self.trace.is_some()
    }
}

/// Runs the whole mutant regression suite.
pub fn run_mutants(budgets: &Budgets) -> Vec<MutantOutcome> {
    all_mutants()
        .iter()
        .map(|m| {
            let out = run_model(&m.model, Some(m.mutation), budgets);
            MutantOutcome {
                mutation: m.mutation,
                model: m.model.name,
                seeded: m.seeded,
                schedules: out.schedules,
                trace: out.trace,
            }
        })
        .collect()
}

/// What replaying a recorded trace produced.
#[derive(Debug)]
pub enum ReplayOutcome {
    /// The schedule reproduced the recorded failure kind.
    Reproduced { kind: String, message: String },
    /// The execution no longer follows the recorded ops — the code under
    /// the schedule changed since the trace was written.
    Diverged { detail: String },
    /// The schedule ran to completion with every property holding (the
    /// bug the trace witnessed is gone).
    Vanished,
    /// The schedule failed, but differently than recorded.
    DifferentFailure { expected: String, got: String },
}

/// Re-executes a recorded schedule step-for-step against current code.
///
/// The trace's `(model, mutation)` pair is resolved against the model
/// and mutant catalogs; each replayed decision is validated against the
/// recorded op description, so a drifted interleaving reports
/// [`ReplayOutcome::Diverged`] instead of silently exploring something
/// else.
pub fn replay(trace: &Trace, max_steps: usize) -> Result<ReplayOutcome, String> {
    let model = resolve(trace)?;
    if model.mode != trace.time_mode {
        return Err(format!(
            "trace time_mode {:?} does not match model `{}` ({:?})",
            trace.time_mode, model.name, model.mode
        ));
    }
    let outcome = run_one(&model, &trace.decisions, Some(&trace.op_desc), max_steps);
    Ok(match outcome.failure {
        None => ReplayOutcome::Vanished,
        Some(Failure::Divergence { detail, .. }) => ReplayOutcome::Diverged { detail },
        Some(f) if f.kind() == trace.failure_kind => ReplayOutcome::Reproduced {
            kind: f.kind().to_string(),
            message: f.message(),
        },
        Some(f) => ReplayOutcome::DifferentFailure {
            expected: trace.failure_kind.clone(),
            got: format!("{}: {}", f.kind(), f.message()),
        },
    })
}

fn resolve(trace: &Trace) -> Result<ScenarioModel, String> {
    match &trace.mutation {
        None => all_models()
            .into_iter()
            .find(|m| m.name == trace.model)
            .ok_or_else(|| format!("unknown model `{}`", trace.model)),
        Some(mutation) => {
            let m = all_mutants()
                .into_iter()
                .find(|m| m.mutation == *mutation)
                .ok_or_else(|| format!("unknown mutation `{mutation}`"))?;
            if m.model.name != trace.model {
                return Err(format!(
                    "mutation `{mutation}` is caught by model `{}`, trace says `{}`",
                    m.model.name, trace.model
                ));
            }
            Ok(m.model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> Budgets {
        Budgets::default()
    }

    #[test]
    fn real_code_passes_every_model() {
        for out in run_suite(&budgets()) {
            assert!(
                out.trace.is_none(),
                "model `{}` found a counterexample in the real code:\n{}",
                out.name,
                out.trace.unwrap().to_text()
            );
            assert!(
                out.complete,
                "model `{}` blew its budget ({} schedules, {} steps)",
                out.name, out.schedules, out.steps
            );
            assert!(out.schedules > 1, "model `{}` explored nothing", out.name);
        }
    }

    #[test]
    fn every_mutant_is_caught_with_a_replayable_trace() {
        let outcomes = run_mutants(&budgets());
        assert!(outcomes.len() >= 6, "mutant suite shrank");
        for out in outcomes {
            let trace = out.trace.unwrap_or_else(|| {
                panic!(
                    "mutant `{}` ({}) ESCAPED after {} schedules",
                    out.mutation, out.seeded, out.schedules
                )
            });
            // The trace must survive the full serialize/validate/parse
            // round trip...
            let parsed = Trace::parse(&trace.to_text()).expect("trace round-trips");
            assert_eq!(parsed, trace);
            // ...and replay must reproduce the same failure kind,
            // step-for-step, against a fresh execution.
            let replayed = replay(&parsed, budgets().max_steps).expect("trace resolves");
            match replayed {
                ReplayOutcome::Reproduced { kind, .. } => {
                    assert_eq!(kind, trace.failure_kind, "mutant `{}`", out.mutation)
                }
                other => panic!(
                    "mutant `{}`: replay did not reproduce ({other:?});\ntrace:\n{}",
                    out.mutation,
                    trace.to_text()
                ),
            }
        }
    }

    #[test]
    fn replay_of_unknown_model_is_an_error() {
        let mut trace = Trace {
            model: "no-such-model".into(),
            mutation: None,
            time_mode: TimeMode::Never,
            decisions: vec![],
            op_desc: vec![],
            failure_kind: "deadlock".into(),
            failure_message: "x".into(),
        };
        assert!(replay(&trace, 100).is_err());
        trace.mutation = Some("no-such-mutation".into());
        assert!(replay(&trace, 100).is_err());
    }
}
