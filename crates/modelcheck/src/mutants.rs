//! Seeded-bug copies of the sync layer: the checker's own regression
//! suite.
//!
//! Each mutant is the real algorithm with exactly one concurrency bug
//! reintroduced — a dropped poison check, a weakened ordering, a missed
//! notify, a leaked lease count. A mutant implements the same SUT trait
//! as the real code, so the *same scenario* that passes against the
//! real `SpinBarrier`/`TeamPool`/`AdmissionQueue` must produce a
//! counterexample against the mutant. `driver::run_mutants` asserts
//! exactly that; a checker that stops catching a mutant has lost its
//! teeth (e.g. a botched independence relation pruning real
//! interleavings).
//!
//! The copies are written directly against [`ModelFamily`] (no
//! generics): they exist only under the checker and should read as a
//! diff against the real code in `crates/sync` / `crates/serve`.

use std::collections::VecDeque;
use std::time::Duration;

use threefive_serve::PRIORITIES;
use threefive_sync::shim::{
    AtomicBoolShim, AtomicUsizeShim, CondvarShim, MutexShim, Ordering, SyncFamily,
};
use threefive_sync::{SyncError, TeamUnit};

use crate::family::{MAtomicBool, MAtomicUsize, MCondvar, MMutex, ModelFamily};
use crate::models::{
    barrier_deadline_race, barrier_last_arriver, barrier_poison_mid, barrier_publish,
    barrier_rounds, pool_contended, queue_spsc, BarrierSut, ModelTeam, PoolCounts, PoolSut,
    PopOutcome, QueueSut, ScenarioModel,
};
use crate::sched::TimeMode;

// Barrier mutations.
const MUT_DROP_POISON: u8 = 0;
const MUT_RELAXED_GEN: u8 = 1;
const MUT_SKIP_RESET: u8 = 2;
const MUT_TIMEOUT_NO_POISON: u8 = 3;
// Pool mutations.
const MUT_POOL_SKIP_NOTIFY: u8 = 0;
const MUT_POOL_LEAK_LEASE: u8 = 1;
// Queue mutations.
const MUT_QUEUE_SKIP_NOTIFY: u8 = 0;
const MUT_QUEUE_LEN_LEAK: u8 = 1;

// ---------------------------------------------------------------------
// Barrier mutants
// ---------------------------------------------------------------------

/// `SpinBarrier::checked_wait` with mutation `M` seeded.
pub struct MutBarrier<const M: u8> {
    n: usize,
    count: MAtomicUsize,
    generation: MAtomicUsize,
    poisoned: MAtomicBool,
}

impl<const M: u8> BarrierSut for MutBarrier<M> {
    fn new(n: usize) -> Self {
        assert!(n > 0);
        MutBarrier {
            n,
            count: MAtomicUsize::named(0, "barrier.count"),
            generation: MAtomicUsize::named(0, "barrier.generation"),
            poisoned: MAtomicBool::named(false, "barrier.poisoned"),
        }
    }

    fn checked_wait(&self, deadline: Option<Duration>) -> Result<bool, SyncError> {
        // BUG (drop-poison-check): all three poison checks removed — a
        // poisoned barrier is entered and waited on as if healthy.
        if M != MUT_DROP_POISON && self.poisoned.load(Ordering::Acquire) {
            return Err(SyncError::BarrierPoisoned);
        }
        let armed = deadline.map(ModelFamily::deadline);
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // BUG (skip-count-reset): the leader forgets to re-arm the
            // counter, stranding every arrival of the next episode.
            if M != MUT_SKIP_RESET {
                self.count.store(0, Ordering::Relaxed);
            }
            // BUG (relaxed-gen-publish): the generation bump no longer
            // releases the arrivals' pre-barrier writes to the spinners.
            let ord = if M == MUT_RELAXED_GEN {
                Ordering::Relaxed
            } else {
                Ordering::Release
            };
            self.generation.store(gen.wrapping_add(1), ord);
            if M != MUT_DROP_POISON && self.poisoned.load(Ordering::Acquire) {
                return Err(SyncError::BarrierPoisoned);
            }
            Ok(true)
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                if M != MUT_DROP_POISON && self.poisoned.load(Ordering::Acquire) {
                    return Err(SyncError::BarrierPoisoned);
                }
                if let (Some(d), Some(t)) = (deadline, armed) {
                    if ModelFamily::expired(t) {
                        // BUG (timeout-no-poison): deadline expiry no
                        // longer poisons the barrier, so the other side
                        // is left waiting on a healthy-looking episode.
                        if M != MUT_TIMEOUT_NO_POISON {
                            self.poison();
                        }
                        return Err(SyncError::BarrierTimeout { deadline: d });
                    }
                }
                ModelFamily::yield_now();
            }
            if M != MUT_DROP_POISON && self.poisoned.load(Ordering::Acquire) {
                return Err(SyncError::BarrierPoisoned);
            }
            Ok(false)
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Pool mutants
// ---------------------------------------------------------------------

struct MutPoolInner {
    idle: Vec<ModelTeam>,
    quarantined: Vec<ModelTeam>,
    leased: usize,
}

/// `TeamPool` checkout/checkin with mutation `M` seeded.
pub struct MutPool<const M: u8> {
    capacity: usize,
    inner: MMutex<MutPoolInner>,
    freed: MCondvar,
    isolations: MAtomicUsize,
    heals: MAtomicUsize,
}

impl<const M: u8> MutPool<M> {
    fn reclaim(&self, inner: &mut MutPoolInner) {
        let mut still = Vec::new();
        for team in inner.quarantined.drain(..) {
            if !team.is_quarantined() && team.probe(Duration::from_millis(200)) {
                self.heals.fetch_add(1, Ordering::Relaxed);
                inner.idle.push(team);
            } else {
                still.push(team);
            }
        }
        inner.quarantined = still;
    }
}

impl<const M: u8> PoolSut for MutPool<M> {
    fn new(teams: usize) -> Self {
        assert!(teams > 0);
        MutPool {
            capacity: teams,
            inner: MMutex::new(MutPoolInner {
                idle: (0..teams).map(|_| ModelTeam::create(1)).collect(),
                quarantined: Vec::new(),
                leased: 0,
            }),
            freed: MCondvar::new(),
            isolations: MAtomicUsize::named(0, "pool.isolations"),
            heals: MAtomicUsize::named(0, "pool.heals"),
        }
    }

    fn checkout_checkin(&self, suspect: bool) -> bool {
        let deadline = ModelFamily::deadline(Duration::from_secs(1));
        let mut inner = self.inner.lock();
        let team = loop {
            self.reclaim(&mut inner);
            if let Some(team) = inner.idle.pop() {
                inner.leased += 1;
                break team;
            }
            let Some(wait) = ModelFamily::remaining(deadline) else {
                return false;
            };
            let (guard, _) = self.freed.wait_timeout(inner, wait);
            inner = guard;
        };
        drop(inner);

        // Checkin.
        let healthy = if suspect {
            !team.is_quarantined() && team.probe(Duration::from_millis(200))
        } else {
            true
        };
        let mut inner = self.inner.lock();
        // BUG (leak-lease-count): checkin forgets to return the lease to
        // the books — `leased` only ever grows.
        if M != MUT_POOL_LEAK_LEASE {
            inner.leased -= 1;
        }
        if healthy {
            inner.idle.push(team);
        } else {
            self.isolations.fetch_add(1, Ordering::Relaxed);
            inner.quarantined.push(team);
        }
        drop(inner);
        // BUG (skip-notify-checkin): the freed team is never announced —
        // a blocked checkout sleeps through it (lost wakeup).
        if M != MUT_POOL_SKIP_NOTIFY {
            self.freed.notify_all();
        }
        true
    }

    fn counts(&self) -> PoolCounts {
        let mut inner = self.inner.lock();
        self.reclaim(&mut inner);
        PoolCounts {
            idle: inner.idle.len(),
            leased: inner.leased,
            quarantined: inner.quarantined.len(),
            capacity: self.capacity,
            isolations: self.isolations.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Queue mutants
// ---------------------------------------------------------------------

struct MutClasses {
    lanes: [VecDeque<u64>; PRIORITIES],
    len: usize,
    closed: bool,
}

/// `AdmissionQueue` push/pop/close with mutation `M` seeded.
pub struct MutQueue<const M: u8> {
    inner: MMutex<MutClasses>,
    nonempty: MCondvar,
    cap: usize,
}

impl<const M: u8> QueueSut for MutQueue<M> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MutQueue {
            inner: MMutex::new(MutClasses {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                closed: false,
            }),
            nonempty: MCondvar::new(),
            cap: capacity,
        }
    }

    fn push(&self, id: u64, priority: u8) -> bool {
        let mut q = self.inner.lock();
        if q.closed || q.len >= self.cap {
            return false;
        }
        let class = usize::from(priority).min(PRIORITIES - 1);
        q.lanes[class].push_back(id);
        q.len += 1;
        drop(q);
        // BUG (skip-notify-push): the consumer is never told — a popper
        // parked on the condvar sleeps through the job (lost wakeup).
        if M != MUT_QUEUE_SKIP_NOTIFY {
            self.nonempty.notify_one();
        }
        true
    }

    fn pop(&self) -> PopOutcome {
        let deadline = ModelFamily::deadline(Duration::from_secs(1));
        let mut q = self.inner.lock();
        loop {
            if q.len > 0 {
                for lane in q.lanes.iter_mut().rev() {
                    if let Some(id) = lane.pop_front() {
                        // BUG (len-leak): the popped job stays on the
                        // books — `len` drifts up, eventually wedging
                        // admission at a phantom capacity.
                        if M != MUT_QUEUE_LEN_LEAK {
                            q.len -= 1;
                        }
                        return PopOutcome::Job(id);
                    }
                }
                unreachable!("len > 0 but every lane empty");
            }
            if q.closed {
                return PopOutcome::Closed;
            }
            let Some(wait) = ModelFamily::remaining(deadline) else {
                return PopOutcome::Empty;
            };
            let (guard, timed_out) = self.nonempty.wait_timeout(q, wait);
            q = guard;
            if timed_out && q.len == 0 {
                return if q.closed {
                    PopOutcome::Closed
                } else {
                    PopOutcome::Empty
                };
            }
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.nonempty.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().len
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// One seeded bug plus the scenario expected to catch it.
pub struct MutantModel {
    /// Mutation slug (goes into the trace's `mutation` field).
    pub mutation: &'static str,
    /// What the seeded bug does, for reports.
    pub seeded: &'static str,
    /// The catching scenario, built over the mutant SUT. Its name is the
    /// real model the scenario came from.
    pub model: ScenarioModel,
}

/// Every seeded mutant, in report order.
pub fn all_mutants() -> Vec<MutantModel> {
    vec![
        MutantModel {
            mutation: "drop-poison-check",
            seeded: "checked_wait no longer checks the poison flag",
            model: ScenarioModel {
                name: "barrier-poison-mid",
                mode: TimeMode::Never,
                build: barrier_poison_mid::<MutBarrier<MUT_DROP_POISON>>,
            },
        },
        MutantModel {
            mutation: "relaxed-gen-publish",
            seeded: "generation bump demoted from Release to Relaxed",
            model: ScenarioModel {
                name: "barrier-publish",
                mode: TimeMode::Never,
                build: barrier_publish::<MutBarrier<MUT_RELAXED_GEN>>,
            },
        },
        MutantModel {
            mutation: "drop-poison-last-arriver",
            seeded: "poison checks removed; the last arriver's poison goes unseen",
            model: ScenarioModel {
                name: "barrier-last-arriver",
                mode: TimeMode::Never,
                build: barrier_last_arriver::<MutBarrier<MUT_DROP_POISON>>,
            },
        },
        MutantModel {
            mutation: "timeout-no-poison",
            seeded: "deadline expiry no longer poisons the barrier",
            model: ScenarioModel {
                name: "barrier-deadline-race",
                mode: TimeMode::Nondet,
                build: barrier_deadline_race::<MutBarrier<MUT_TIMEOUT_NO_POISON>>,
            },
        },
        MutantModel {
            mutation: "skip-count-reset",
            seeded: "leader no longer resets the arrival counter",
            model: ScenarioModel {
                name: "barrier-wait-2x2",
                mode: TimeMode::Never,
                build: || barrier_rounds::<MutBarrier<MUT_SKIP_RESET>>(2, 2),
            },
        },
        MutantModel {
            mutation: "skip-notify-checkin",
            seeded: "pool checkin no longer notifies blocked checkouts",
            model: ScenarioModel {
                name: "pool-contended",
                mode: TimeMode::Never,
                build: pool_contended::<MutPool<MUT_POOL_SKIP_NOTIFY>>,
            },
        },
        MutantModel {
            mutation: "leak-lease-count",
            seeded: "pool checkin no longer decrements the lease count",
            model: ScenarioModel {
                name: "pool-contended",
                mode: TimeMode::Never,
                build: pool_contended::<MutPool<MUT_POOL_LEAK_LEASE>>,
            },
        },
        MutantModel {
            mutation: "skip-notify-push",
            seeded: "queue push no longer notifies a parked popper",
            model: ScenarioModel {
                name: "queue-spsc",
                mode: TimeMode::Never,
                build: queue_spsc::<MutQueue<MUT_QUEUE_SKIP_NOTIFY>>,
            },
        },
        MutantModel {
            mutation: "len-leak",
            seeded: "queue pop no longer decrements the shared length",
            model: ScenarioModel {
                name: "queue-spsc",
                mode: TimeMode::Never,
                build: queue_spsc::<MutQueue<MUT_QUEUE_LEN_LEAK>>,
            },
        },
    ]
}
