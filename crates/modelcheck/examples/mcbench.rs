use std::time::Instant;
use threefive_modelcheck::explore::{explore, Budgets};
use threefive_modelcheck::models::all_models;

fn main() {
    for bound in [2usize, 3] {
        println!("== preemption bound {bound} ==");
        for m in all_models() {
            let b = Budgets {
                max_schedules: 500_000,
                max_steps: 5_000,
                max_preemptions: Some(bound),
            };
            let t = Instant::now();
            let r = explore(&m, &b);
            println!(
                "{:24} schedules={:7} steps={:9} complete={} bounded={} cex={} {:?}",
                m.name,
                r.schedules,
                r.steps_total,
                r.complete,
                r.bounded,
                r.counterexample.is_some(),
                t.elapsed()
            );
        }
    }
}
