//! Regenerates the checked-in replay traces under `tests/data/`.
//!
//! Runs the mutant suite and writes every counterexample trace to the
//! directory given as the first argument (default `.`), one
//! `replay_<mutation>.json` per mutant. Run after changing the scenario
//! catalog, the scheduler's decision encoding, or the mutants
//! themselves, then copy the barrier traces the integration test pins:
//!
//! ```text
//! cargo run -p threefive-modelcheck --example record_traces -- tests/data
//! ```

use threefive_modelcheck::{run_mutants, Budgets};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create output dir");
    // Mutant scenarios panic by design; keep the hook quiet.
    std::panic::set_hook(Box::new(|_| {}));
    for out in run_mutants(&Budgets::default()) {
        let Some(trace) = out.trace else {
            eprintln!("ESCAPED (no trace): {} on {}", out.mutation, out.model);
            continue;
        };
        let path = dir.join(format!("replay_{}.json", out.mutation));
        std::fs::write(&path, trace.to_text()).expect("write trace");
        println!("wrote {}", path.display());
    }
}
