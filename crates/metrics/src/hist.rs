//! Log-scale histograms generalizing `threefive-sync::WaitHistogram`.
//!
//! `WaitHistogram` hardcodes 12 log-4 buckets starting at 1 µs; that
//! geometry is one point ([`HistSpec::BARRIER_WAIT`]) in the family
//! described by [`HistSpec`]: bucket `i` covers nanosecond values up to
//! `2^(first_upper_pow2 + shift * i)`, with the final bucket unbounded.
//! Latency histograms in the serving layer use a finer ×2 geometry
//! ([`HistSpec::LATENCY`]) that spans ~65 µs to ~36 min.
//!
//! Recording is a single relaxed atomic increment plus a relaxed atomic
//! add for the sum — statistics, not synchronization — so histograms are
//! safe to bump from dispatcher threads without coordination.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The geometry of a log-scale histogram: bucket `i` (of `buckets`) covers
/// values `ns <= 2^(first_upper_pow2 + shift * i)`; the last bucket is
/// unbounded above.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSpec {
    /// log2 of the first bucket's upper edge in nanoseconds.
    pub first_upper_pow2: u32,
    /// log2 step between consecutive bucket edges (1 = ×2, 2 = ×4).
    pub shift: u32,
    /// Total bucket count, including the unbounded last bucket.
    pub buckets: usize,
}

impl HistSpec {
    /// The exact geometry of `threefive-sync::WaitHistogram`: 12 log-4
    /// buckets, first edge 2^10 ns (~1 µs), last bounded edge 2^32 ns
    /// (~4.3 s). Engine barrier-wait counts merge into this without
    /// re-bucketing.
    pub const BARRIER_WAIT: HistSpec = HistSpec {
        first_upper_pow2: 10,
        shift: 2,
        buckets: 12,
    };

    /// Serving-layer latency geometry: 26 log-2 buckets, first edge
    /// 2^16 ns (~65 µs), last bounded edge 2^41 ns (~37 min). One bucket
    /// is a factor of two, which is the resolution loadgen's
    /// `--verify-latency` cross-check works at.
    pub const LATENCY: HistSpec = HistSpec {
        first_upper_pow2: 16,
        shift: 1,
        buckets: 26,
    };

    /// Upper edge of bucket `i` in nanoseconds, or `None` for the
    /// unbounded last bucket.
    pub fn upper_ns(&self, i: usize) -> Option<u64> {
        if i + 1 < self.buckets {
            Some(1u64 << (self.first_upper_pow2 + self.shift * i as u32))
        } else {
            None
        }
    }

    /// Index of the bucket covering `ns`.
    pub fn bucket_index(&self, ns: u64) -> usize {
        let mut edge = 1u64 << self.first_upper_pow2;
        for i in 0..self.buckets - 1 {
            if ns <= edge {
                return i;
            }
            edge <<= self.shift;
        }
        self.buckets - 1
    }
}

struct HistInner {
    spec: HistSpec,
    counts: Vec<AtomicU64>,
    sum_ns: AtomicU64,
}

/// An atomic log-scale histogram handle. Clones share the same buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// Create a histogram with the given geometry.
    pub fn new(spec: HistSpec) -> Self {
        let counts = (0..spec.buckets).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistInner {
                spec,
                counts,
                sum_ns: AtomicU64::new(0),
            }),
        }
    }

    /// The histogram's geometry.
    pub fn spec(&self) -> HistSpec {
        self.inner.spec
    }

    /// Record one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let i = self.inner.spec.bucket_index(ns);
        // Relaxed: these are statistics, not synchronization; readers take
        // a best-effort snapshot.
        self.inner.counts[i].fetch_add(1, Ordering::Relaxed);
        self.inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Merge pre-bucketed counts whose geometry already matches this
    /// histogram's spec — used to fold a `WaitHistogram` (same bucket
    /// edges as [`HistSpec::BARRIER_WAIT`]) into the registry without
    /// re-bucketing. `sum_ns` is the total nanoseconds those counts
    /// represent (the source tracks it separately).
    ///
    /// # Panics
    /// Panics if `counts` has a different bucket count than the spec.
    pub fn merge_buckets(&self, counts: &[u64], sum_ns: u64) {
        assert_eq!(
            counts.len(),
            self.inner.spec.buckets,
            "bucket-count mismatch in Histogram::merge_buckets"
        );
        for (slot, &n) in self.inner.counts.iter().zip(counts) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        if sum_ns > 0 {
            self.inner.sum_ns.fetch_add(sum_ns, Ordering::Relaxed);
        }
    }

    /// Take a point-in-time snapshot of the buckets and sum.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            spec: self.inner.spec,
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.inner.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram's buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The geometry the counts were bucketed with.
    pub spec: HistSpec,
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: Vec<u64>,
    /// Total nanoseconds observed.
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// An empty snapshot of the given geometry.
    pub fn empty(spec: HistSpec) -> Self {
        HistSnapshot {
            spec,
            counts: vec![0; spec.buckets],
            sum_ns: 0,
        }
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Subtract an earlier snapshot of the same histogram, yielding the
    /// histogram of just the observations in between. Counts are
    /// monotonically non-decreasing, so saturating subtraction only guards
    /// against torn reads.
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn diff_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        assert_eq!(self.spec, earlier.spec, "HistSnapshot geometry mismatch");
        HistSnapshot {
            spec: self.spec,
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }

    /// Index of the bucket containing the `q`-quantile observation
    /// (nearest-rank over the bucketed counts), or `None` if empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(self.spec.buckets - 1)
    }

    /// Upper-edge estimate of the `q`-quantile in nanoseconds: the upper
    /// edge of the bucket containing the nearest-rank observation. For the
    /// unbounded last bucket this returns its *lower* edge (a lower
    /// bound), which is the best a bounded histogram can say. `None` if
    /// empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let i = self.quantile_bucket(q)?;
        Some(match self.spec.upper_ns(i) {
            Some(upper) => upper,
            // Last bucket: its lower edge is the previous bucket's upper
            // edge (single-bucket specs have no information at all).
            None => self.spec.upper_ns(i.wrapping_sub(1)).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_wait_spec_matches_wait_histogram_geometry() {
        // Must stay bit-for-bit compatible with
        // threefive-sync::WaitHistogram: bucket i covers ns <= 2^(10+2i),
        // last of 12 unbounded.
        let s = HistSpec::BARRIER_WAIT;
        assert_eq!(s.buckets, 12);
        for i in 0..11 {
            assert_eq!(s.upper_ns(i), Some(1u64 << (10 + 2 * i)));
        }
        assert_eq!(s.upper_ns(11), None);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_above() {
        // Off-by-one sweep: each bounded edge belongs to its own bucket;
        // edge + 1 belongs to the next.
        for spec in [HistSpec::BARRIER_WAIT, HistSpec::LATENCY] {
            assert_eq!(spec.bucket_index(0), 0);
            for i in 0..spec.buckets - 1 {
                let edge = spec.upper_ns(i).unwrap();
                assert_eq!(spec.bucket_index(edge), i, "edge {edge} bucket {i}");
                let next = spec.bucket_index(edge + 1);
                assert_eq!(next, (i + 1).min(spec.buckets - 1));
            }
            assert_eq!(spec.bucket_index(u64::MAX), spec.buckets - 1);
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let h = Histogram::new(HistSpec::LATENCY);
        h.record_ns(1); // bucket 0
        h.record_ns(1 << 16); // still bucket 0 (inclusive edge)
        h.record_ns((1 << 16) + 1); // bucket 1
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.sum_ns, 1 + (1 << 16) + (1 << 16) + 1);
    }

    #[test]
    fn quantiles_pick_nearest_rank_bucket() {
        let h = Histogram::new(HistSpec::LATENCY);
        for _ in 0..9 {
            h.record_ns(100); // bucket 0
        }
        h.record_ns(u64::MAX); // last, unbounded bucket
        let s = h.snapshot();
        assert_eq!(s.quantile_bucket(0.5), Some(0));
        assert_eq!(s.quantile_bucket(0.9), Some(0));
        assert_eq!(s.quantile_bucket(0.99), Some(s.spec.buckets - 1));
        assert_eq!(s.quantile_ns(0.5), Some(1 << 16));
        // Unbounded bucket reports its lower edge.
        assert_eq!(
            s.quantile_ns(0.99),
            Some(s.spec.upper_ns(s.spec.buckets - 2).unwrap())
        );
        assert_eq!(
            HistSnapshot::empty(HistSpec::LATENCY).quantile_ns(0.5),
            None
        );
    }

    #[test]
    fn diff_since_isolates_a_window() {
        let h = Histogram::new(HistSpec::LATENCY);
        h.record_ns(100);
        let before = h.snapshot();
        h.record_ns(100);
        h.record_ns(1 << 20);
        let diff = h.snapshot().diff_since(&before);
        assert_eq!(diff.total(), 2);
        assert_eq!(diff.counts[0], 1);
        assert_eq!(diff.sum_ns, 100 + (1 << 20));
    }

    #[test]
    fn merge_buckets_matches_direct_records() {
        let a = Histogram::new(HistSpec::BARRIER_WAIT);
        let b = Histogram::new(HistSpec::BARRIER_WAIT);
        for ns in [500u64, 2_000, 70_000, 5_000_000_000] {
            a.record_ns(ns);
        }
        let snap = a.snapshot();
        b.merge_buckets(&snap.counts, snap.sum_ns);
        assert_eq!(b.snapshot(), snap);
    }
}
