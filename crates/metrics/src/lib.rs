//! Live metrics plane for the threefive daemon.
//!
//! Everything here is hand-rolled on `std` — no external crates — to keep
//! the offline build hermetic. The crate provides four pieces:
//!
//! * [`registry`] — a process-wide [`Registry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, labeled [`CounterFamily`]s and [`Histogram`]s, plus
//!   [`Collector`] hooks for metrics whose source of truth lives elsewhere
//!   (e.g. the admission-accounting counters, which must be snapshotted
//!   under one lock so the accounting identities hold at every scrape).
//! * [`hist`] — log-scale histograms generalizing
//!   `threefive-sync::WaitHistogram`: a [`HistSpec`] fixes the first bucket
//!   edge, the log step, and the bucket count, so the serving layer can use
//!   fine ×2 buckets for latencies while the engine's barrier-wait
//!   histogram keeps the exact log-4 geometry of `WaitHistogram`.
//! * [`expo`] — Prometheus text-format rendering of a registry
//!   [`Snapshot`], plus [`validate_exposition`], an in-tree format checker
//!   used by tests, CI, and `threefive stat --check`.
//! * [`events`] — a leveled, bounded, job-id-stamped structured event log
//!   (JSONL rendering, queryable ring buffer) replacing ad-hoc `eprintln!`
//!   telemetry in the serve path.
//!
//! # Clock discipline
//!
//! Nothing in this crate reads a monotonic clock. Histograms take
//! already-measured nanosecond values; whether to read the clock at all is
//! the caller's decision, gated through [`Clock`] exactly like
//! `threefive-sync::Instrument::now` — disabled means `None`, and `None`
//! means no `Instant::now()` call ever happens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod expo;
pub mod hist;
pub mod registry;

pub use events::{Event, EventLog, FieldValue, Level};
pub use expo::{render_prometheus, validate_exposition};
pub use hist::{HistSnapshot, HistSpec, Histogram};
pub use registry::{
    Collector, Counter, CounterFamily, Gauge, MetricKind, MetricSnapshot, MetricValue, Registry,
    Snapshot,
};

use std::time::Instant;

/// A clock gate mirroring the `Instrument::now` discipline: when disabled,
/// [`Clock::now`] returns `None` and **no clock read happens at all** —
/// callers must put their `Instant::now()` behind this gate rather than
/// reading the clock and discarding the value.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    enabled: bool,
}

impl Clock {
    /// A clock that reads the time.
    pub const fn enabled() -> Self {
        Clock { enabled: true }
    }

    /// A clock that never reads the time.
    pub const fn disabled() -> Self {
        Clock { enabled: false }
    }

    /// Whether [`Clock::now`] will read the clock.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Read the monotonic clock, or `None` (without reading it) when
    /// disabled.
    pub fn now(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_reads_nothing() {
        // The zero-cost contract: disabled -> None, and the `enabled` flag
        // is the *only* input, so no `Instant::now()` is reachable.
        assert!(Clock::disabled().now().is_none());
        assert!(!Clock::disabled().is_enabled());
        assert!(Clock::enabled().now().is_some());
    }
}
