//! Prometheus text-format exposition (version 0.0.4) and an in-tree
//! format checker.
//!
//! [`render_prometheus`] turns a registry [`Snapshot`] into the classic
//! `# HELP` / `# TYPE` / sample-line text format. Histograms render the
//! full cumulative-`le` convention (`_bucket`, `_sum`, `_count`) with
//! nanosecond buckets converted to seconds, per Prometheus base-unit
//! practice.
//!
//! [`validate_exposition`] re-parses an exposition string and checks the
//! invariants a real scraper relies on: name/label syntax, escape
//! validity, `TYPE` before samples, metric grouping, cumulative bucket
//! monotonicity, the trailing `+Inf` bucket, and `_count` consistency.
//! Tests, CI's `metrics-smoke` job, and `threefive stat --check` all run
//! scrapes through it, so the format can never drift from what is
//! validated.

use crate::registry::{valid_label_key, valid_metric_name, MetricKind, MetricValue, Snapshot};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

/// Render a snapshot in Prometheus text format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for metric in &snap.metrics {
        let Some((_, first)) = metric.samples.first() else {
            continue;
        };
        let kind = first.kind();
        let _ = writeln!(out, "# HELP {} {}", metric.name, escape_help(&metric.help));
        let _ = writeln!(out, "# TYPE {} {}", metric.name, kind_str(kind));
        for (labels, value) in &metric.samples {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", metric.name, render_labels(labels), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", metric.name, render_labels(labels), v);
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, count) in h.counts.iter().enumerate() {
                        cum += count;
                        let le = match h.spec.upper_ns(i) {
                            Some(ns) => format!("{}", ns as f64 / 1e9),
                            None => "+Inf".to_string(),
                        };
                        let mut bucket_labels = labels.clone();
                        bucket_labels.push(("le".to_string(), le));
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            metric.name,
                            render_labels(&bucket_labels),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        metric.name,
                        render_labels(labels),
                        h.sum_ns as f64 / 1e9
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        metric.name,
                        render_labels(labels),
                        cum
                    );
                }
            }
        }
    }
    out
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_value(token: &str) -> Option<f64> {
    match token.to_ascii_lowercase().as_str() {
        "+inf" | "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        "nan" => Some(f64::NAN),
        _ => token.parse::<f64>().ok(),
    }
}

/// Parse `name{k="v",...} value` / `name value`; returns a descriptive
/// error for anything a Prometheus scraper would reject.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: {line:?}");
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or_else(|| err("sample has no value"))?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let body = &line[name_end + 1..];
        let mut chars = body.char_indices().peekable();
        let consumed;
        loop {
            // Closing brace ends the label list (trailing comma allowed).
            if let Some(&(i, '}')) = chars.peek() {
                consumed = i + 1;
                chars.next();
                break;
            }
            let key_start = chars.peek().ok_or_else(|| err("unterminated labels"))?.0;
            let mut key_end = key_start;
            while let Some(&(i, c)) = chars.peek() {
                if c == '=' {
                    key_end = i;
                    break;
                }
                chars.next();
            }
            let key = &body[key_start..key_end];
            if !valid_label_key(key) {
                return Err(err("invalid label key"));
            }
            chars.next(); // consume '='
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(err("label value not quoted")),
            }
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, '\\' | '"' | 'n')) => {}
                        _ => return Err(err("invalid escape in label value")),
                    },
                    '\n' => return Err(err("raw newline in label value")),
                    _ => {}
                }
            }
            if !closed {
                return Err(err("unterminated label value"));
            }
            labels.push((key.to_string(), String::new()));
            if let Some(&(_, ',')) = chars.peek() {
                chars.next();
            }
        }
        &body[consumed..]
    } else {
        &line[name_end..]
    };
    let value_token = rest.trim();
    if value_token.is_empty() || value_token.contains(char::is_whitespace) {
        // A second token would be a timestamp; we never emit those, so
        // treat any extra token as drift worth failing on.
        return Err(err("expected exactly one value after the name"));
    }
    let value = parse_value(value_token).ok_or_else(|| err("unparseable sample value"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn le_of(labels: &[(String, String)]) -> Option<usize> {
    labels.iter().position(|(k, _)| k == "le")
}

/// Validate a Prometheus text exposition. Returns `Err` with a
/// line-numbered description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    // Re-parse label values (parse_sample validates escapes but does not
    // unescape); for the checks below only the `le` *position* and the
    // raw value token matter, so we re-extract le values with a dedicated
    // scan per bucket line.
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut sampled: Vec<String> = Vec::new(); // grouping order of base names
    let mut closed: HashSet<String> = HashSet::new();
    // Per-histogram accumulation: (le tokens in order, cumulative counts,
    // saw_sum, count_value)
    struct HistAcc {
        les: Vec<String>,
        cums: Vec<f64>,
        sum_seen: bool,
        count: Option<f64>,
    }
    let mut hists: HashMap<String, HistAcc> = HashMap::new();

    let base_of = |name: &str, types: &HashMap<String, String>| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(prefix) = name.strip_suffix(suffix) {
                if types.get(prefix).map(String::as_str) == Some("histogram") {
                    return prefix.to_string();
                }
            }
        }
        name.to_string()
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_once(' ').map(|(n, _)| n).unwrap_or(rest);
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid name in HELP: {name:?}"));
                }
                if !helps.insert(name.to_string()) {
                    return Err(format!("line {lineno}: duplicate HELP for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if parts.next().is_some() || !valid_metric_name(name) {
                    return Err(format!("line {lineno}: malformed TYPE line"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if sampled.iter().any(|s| s == name) {
                    return Err(format!(
                        "line {lineno}: TYPE for {name} appears after its samples"
                    ));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
            }
            // Other comments are free-form and legal.
            continue;
        }

        let sample = parse_sample(line, lineno)?;
        let base = base_of(&sample.name, &types);
        match sampled.last() {
            Some(last) if *last == base => {}
            _ => {
                if closed.contains(&base) {
                    return Err(format!(
                        "line {lineno}: samples for {base} are not contiguous"
                    ));
                }
                if let Some(last) = sampled.last() {
                    closed.insert(last.clone());
                }
                sampled.push(base.clone());
            }
        }

        let declared = types.get(&base).map(String::as_str);
        if declared == Some("counter") && (sample.value < 0.0 || !sample.value.is_finite()) {
            return Err(format!(
                "line {lineno}: counter {base} has non-monotonic value {}",
                sample.value
            ));
        }
        if declared == Some("histogram") {
            let acc = hists.entry(base.clone()).or_insert(HistAcc {
                les: Vec::new(),
                cums: Vec::new(),
                sum_seen: false,
                count: None,
            });
            if sample.name.ends_with("_bucket") {
                let le_pos = le_of(&sample.labels)
                    .ok_or_else(|| format!("line {lineno}: histogram bucket without le label"))?;
                // Recover the raw le token: labels parsed positionally,
                // values discarded; rescan the line for `le="..."`.
                let token = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|t| t.split('"').next())
                    .unwrap_or("");
                let _ = le_pos;
                acc.les.push(token.to_string());
                acc.cums.push(sample.value);
            } else if sample.name.ends_with("_sum") {
                acc.sum_seen = true;
            } else if sample.name.ends_with("_count") {
                acc.count = Some(sample.value);
            } else {
                return Err(format!(
                    "line {lineno}: bare sample {} for histogram {base}",
                    sample.name
                ));
            }
        }
    }

    for (name, kind) in &types {
        if kind == "histogram" {
            let acc = hists
                .get(name)
                .ok_or_else(|| format!("histogram {name} declared but has no samples"))?;
            if acc.les.is_empty() {
                return Err(format!("histogram {name} has no buckets"));
            }
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_cum = 0.0f64;
            for (le, cum) in acc.les.iter().zip(&acc.cums) {
                let le_val =
                    parse_value(le).ok_or_else(|| format!("histogram {name}: bad le {le:?}"))?;
                if le_val <= prev_le {
                    return Err(format!("histogram {name}: le edges not increasing at {le}"));
                }
                if *cum < prev_cum {
                    return Err(format!(
                        "histogram {name}: cumulative counts decrease at le={le}"
                    ));
                }
                prev_le = le_val;
                prev_cum = *cum;
            }
            if acc.les.last().map(String::as_str) != Some("+Inf") {
                return Err(format!("histogram {name}: last bucket is not le=\"+Inf\""));
            }
            if !acc.sum_seen {
                return Err(format!("histogram {name}: missing _sum"));
            }
            match acc.count {
                Some(c) if c == prev_cum => {}
                Some(c) => {
                    return Err(format!(
                        "histogram {name}: _count {c} != +Inf bucket {prev_cum}"
                    ))
                }
                None => return Err(format!("histogram {name}: missing _count")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistSpec;
    use crate::registry::Registry;

    fn scrape(reg: &Registry) -> String {
        render_prometheus(&reg.snapshot())
    }

    #[test]
    fn rendered_registry_validates() {
        let reg = Registry::new();
        reg.counter("threefive_jobs_total", "Jobs.").add(3);
        reg.gauge("threefive_queue_depth", "Depth.").set(-1);
        let fam = reg.counter_family("threefive_by_rung_total", "Per rung.", "rung");
        fam.with("parallel-3.5d").inc();
        fam.with("serial").add(2);
        let h = reg.histogram("threefive_wait_seconds", "Wait.", HistSpec::LATENCY);
        h.record_ns(70_000);
        h.record_ns(u64::MAX);
        let text = scrape(&reg);
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE threefive_wait_seconds histogram"));
        assert!(text.contains("threefive_wait_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rung=\"parallel-3.5d\""));
    }

    #[test]
    fn label_values_are_escaped_and_survive_validation() {
        let reg = Registry::new();
        let fam = reg.counter_family("threefive_odd_total", "Odd labels.", "tenant");
        fam.with("quo\"te").inc();
        fam.with("back\\slash").inc();
        fam.with("new\nline").inc();
        let text = scrape(&reg);
        validate_exposition(&text).unwrap();
        assert!(text.contains("tenant=\"quo\\\"te\""));
        assert!(text.contains("tenant=\"back\\\\slash\""));
        assert!(text.contains("tenant=\"new\\nline\""));
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        // Invalid metric name.
        assert!(validate_exposition("9bad 1\n").is_err());
        // Bad escape in a label value.
        assert!(validate_exposition("m{l=\"a\\q\"} 1\n").is_err());
        // Unquoted label value.
        assert!(validate_exposition("m{l=abc} 1\n").is_err());
        // Negative counter.
        assert!(validate_exposition("# TYPE c_total counter\nc_total -1\n").is_err());
        // TYPE after samples.
        assert!(validate_exposition("x 1\n# TYPE x gauge\nx 2\n").is_err());
        // Non-contiguous metric grouping.
        assert!(validate_exposition("a 1\nb 2\na 3\n").is_err());
        // Missing value.
        assert!(validate_exposition("novalue\n").is_err());
        // Unknown type keyword.
        assert!(validate_exposition("# TYPE t thing\n").is_err());
    }

    #[test]
    fn checker_enforces_histogram_invariants() {
        let ok = "# TYPE h histogram\n\
                  h_bucket{le=\"0.1\"} 1\n\
                  h_bucket{le=\"+Inf\"} 2\n\
                  h_sum 0.3\n\
                  h_count 2\n";
        validate_exposition(ok).unwrap();
        // Decreasing cumulative counts.
        let bad = ok.replace("h_bucket{le=\"+Inf\"} 2", "h_bucket{le=\"+Inf\"} 0");
        assert!(validate_exposition(&bad).is_err());
        // Count mismatch.
        let bad = ok.replace("h_count 2", "h_count 5");
        assert!(validate_exposition(&bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 0.1\nh_count 1\n";
        assert!(validate_exposition(bad).is_err());
        // Missing _sum.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        assert!(validate_exposition(bad).is_err());
        // Non-increasing le edges.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 1\n\
                   h_bucket{le=\"0.1\"} 1\n\
                   h_bucket{le=\"+Inf\"} 1\n\
                   h_sum 0.1\nh_count 1\n";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn help_escaping_round_trips() {
        let reg = Registry::new();
        reg.counter("c_total", "line one\nline two \\ done").add(1);
        let text = scrape(&reg);
        validate_exposition(&text).unwrap();
        assert!(text.contains("# HELP c_total line one\\nline two \\\\ done"));
    }
}
