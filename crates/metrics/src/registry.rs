//! The metric registry: named atomic counters, gauges, labeled counter
//! families, log-scale histograms, and collector hooks.
//!
//! Handles returned by the registration methods are cheap `Arc` clones;
//! bumping one is a single relaxed atomic op. A [`Collector`] lets a
//! subsystem that already owns its numbers (the admission accounting, the
//! team pool) contribute a consistent set of samples computed at scrape
//! time instead of mirroring state into registry atomics.
//!
//! Metric names are validated at registration and duplicate names are
//! rejected by panic: both are programmer errors that would make the
//! Prometheus exposition invalid, and all registration happens at daemon
//! startup with literal names.

use crate::hist::{HistSnapshot, HistSpec, Histogram};
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Maximum distinct label values a [`CounterFamily`] will track; further
/// values collapse into the [`OVERFLOW_LABEL`] bucket so unbounded inputs
/// (tenant ids) cannot grow the exposition without bound.
pub const FAMILY_MAX_CARDINALITY: usize = 32;

/// Label value that absorbs family overflow past
/// [`FAMILY_MAX_CARDINALITY`].
pub const OVERFLOW_LABEL: &str = "_other";

/// Is `name` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Is `key` a valid Prometheus label key (`[a-zA-Z_][a-zA-Z0-9_]*`)?
pub fn valid_label_key(key: &str) -> bool {
    let mut chars = key.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter (not yet registered).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Relaxed: statistics, not synchronization.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move both ways. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge (not yet registered).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct FamilyInner {
    label_key: String,
    // Registration-ordered so exposition output is deterministic; linear
    // scan is fine at <= FAMILY_MAX_CARDINALITY entries.
    values: Mutex<Vec<(String, Counter)>>,
}

/// A counter family keyed by one label (e.g. `rung`, `kernel`, `tenant`).
/// Cardinality is bounded: past [`FAMILY_MAX_CARDINALITY`] distinct
/// values, bumps collapse into the [`OVERFLOW_LABEL`] bucket.
#[derive(Clone)]
pub struct CounterFamily {
    inner: Arc<FamilyInner>,
}

impl CounterFamily {
    /// A standalone family (not yet registered). Panics on an invalid
    /// label key.
    pub fn new(label_key: &str) -> Self {
        assert!(
            valid_label_key(label_key),
            "invalid label key {label_key:?}"
        );
        CounterFamily {
            inner: Arc::new(FamilyInner {
                label_key: label_key.to_string(),
                values: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The family's label key.
    pub fn label_key(&self) -> &str {
        &self.inner.label_key
    }

    /// The counter for `value`, creating it on first use (or the overflow
    /// bucket once the cardinality cap is hit).
    pub fn with(&self, value: &str) -> Counter {
        let mut values = self
            .inner
            .values
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((_, c)) = values.iter().find(|(v, _)| v == value) {
            return c.clone();
        }
        let key = if values.len() >= FAMILY_MAX_CARDINALITY {
            OVERFLOW_LABEL
        } else {
            value
        };
        if let Some((_, c)) = values.iter().find(|(v, _)| v == key) {
            return c.clone();
        }
        let c = Counter::new();
        values.push((key.to_string(), c.clone()));
        c
    }

    /// Snapshot all (label value, count) pairs in first-use order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .values
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(v, c)| (v.clone(), c.get()))
            .collect()
    }
}

/// What a metric is, for `# TYPE` lines and JSON rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes both ways.
    Gauge,
    /// Log-scale bucketed distribution.
    Histogram,
}

/// One sample's value in a snapshot.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets.
    Histogram(HistSnapshot),
}

impl MetricValue {
    /// The kind this value renders as.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A point-in-time copy of one metric: name, help, and one value per
/// label set (label-less metrics have a single sample with no labels).
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Metric name (`threefive_*`).
    pub name: String,
    /// One-line help text for `# HELP`.
    pub help: String,
    /// `(labels, value)` pairs; labels are `(key, value)` lists.
    pub samples: Vec<(Vec<(String, String)>, MetricValue)>,
}

/// A subsystem that contributes samples computed at scrape time. Used
/// where a consistent multi-metric read matters (admission accounting
/// identities) or where the source of truth already exists (pool/queue
/// gauges).
pub trait Collector: Send + Sync {
    /// Produce this collector's metrics. Called on every scrape.
    fn collect(&self) -> Vec<MetricSnapshot>;
}

/// A full registry scrape, in registration order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All metrics, owned handles first, then collector output.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Find a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

enum Entry {
    Counter {
        name: String,
        help: String,
        handle: Counter,
    },
    Gauge {
        name: String,
        help: String,
        handle: Gauge,
    },
    Family {
        name: String,
        help: String,
        handle: CounterFamily,
    },
    Histogram {
        name: String,
        help: String,
        handle: Histogram,
    },
    Collector(Box<dyn Collector>),
}

struct RegistryInner {
    entries: Vec<Entry>,
    names: HashSet<String>,
}

/// The metric registry. Registration happens at startup; scrapes take a
/// point-in-time [`Snapshot`].
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(RegistryInner {
                entries: Vec::new(),
                names: HashSet::new(),
            }),
        }
    }

    fn claim_name(inner: &mut RegistryInner, name: &str) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        assert!(
            inner.names.insert(name.to_string()),
            "duplicate metric name {name:?}"
        );
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register and return a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut inner = self.lock();
        Self::claim_name(&mut inner, name);
        let handle = Counter::new();
        inner.entries.push(Entry::Counter {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Register and return a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut inner = self.lock();
        Self::claim_name(&mut inner, name);
        let handle = Gauge::new();
        inner.entries.push(Entry::Gauge {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Register and return a counter family keyed by `label_key`.
    pub fn counter_family(&self, name: &str, help: &str, label_key: &str) -> CounterFamily {
        let mut inner = self.lock();
        Self::claim_name(&mut inner, name);
        let handle = CounterFamily::new(label_key);
        inner.entries.push(Entry::Family {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Register and return a histogram with the given geometry.
    pub fn histogram(&self, name: &str, help: &str, spec: HistSpec) -> Histogram {
        let mut inner = self.lock();
        Self::claim_name(&mut inner, name);
        let handle = Histogram::new(spec);
        inner.entries.push(Entry::Histogram {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Register a scrape-time collector. Its metric names are not known
    /// until scrape time, so uniqueness is the collector's contract; the
    /// exposition format checker catches violations in tests and CI.
    pub fn collector(&self, c: Box<dyn Collector>) {
        self.lock().entries.push(Entry::Collector(c));
    }

    /// Scrape everything into a point-in-time snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut metrics = Vec::with_capacity(inner.entries.len());
        for entry in &inner.entries {
            match entry {
                Entry::Counter { name, help, handle } => metrics.push(MetricSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    samples: vec![(Vec::new(), MetricValue::Counter(handle.get()))],
                }),
                Entry::Gauge { name, help, handle } => metrics.push(MetricSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    samples: vec![(Vec::new(), MetricValue::Gauge(handle.get()))],
                }),
                Entry::Family { name, help, handle } => {
                    let samples = handle
                        .snapshot()
                        .into_iter()
                        .map(|(value, count)| {
                            (
                                vec![(handle.label_key().to_string(), value)],
                                MetricValue::Counter(count),
                            )
                        })
                        .collect();
                    metrics.push(MetricSnapshot {
                        name: name.clone(),
                        help: help.clone(),
                        samples,
                    });
                }
                Entry::Histogram { name, help, handle } => metrics.push(MetricSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    samples: vec![(Vec::new(), MetricValue::Histogram(handle.snapshot()))],
                }),
                Entry::Collector(c) => metrics.extend(c.collect()),
            }
        }
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_bumps_are_linear() {
        // Satellite: 8 threads x 10_000 bumps each must be counted
        // exactly — relaxed ordering loses no increments.
        let reg = Registry::new();
        let c = reg.counter("t_total", "test");
        let fam = reg.counter_family("t_by_k_total", "test", "k");
        let g = reg.gauge("t_gauge", "test");
        thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let fam = fam.clone();
                let g = g.clone();
                s.spawn(move || {
                    let mine = fam.with(&format!("k{t}"));
                    for _ in 0..10_000 {
                        c.inc();
                        mine.inc();
                        fam.with("shared").inc();
                        g.add(1);
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(g.get(), 0);
        let snap = fam.snapshot();
        let shared = snap.iter().find(|(v, _)| v == "shared").unwrap().1;
        assert_eq!(shared, 80_000);
        let per_thread: u64 = snap
            .iter()
            .filter(|(v, _)| v.starts_with('k'))
            .map(|(_, n)| n)
            .sum();
        assert_eq!(per_thread, 80_000);
    }

    #[test]
    fn family_cardinality_is_bounded() {
        let fam = CounterFamily::new("tenant");
        for i in 0..(FAMILY_MAX_CARDINALITY * 2) {
            fam.with(&format!("tenant-{i}")).inc();
        }
        let snap = fam.snapshot();
        // Cap distinct values, plus one overflow bucket holding the rest.
        assert_eq!(snap.len(), FAMILY_MAX_CARDINALITY + 1);
        let overflow = snap.iter().find(|(v, _)| v == OVERFLOW_LABEL).unwrap().1;
        assert_eq!(overflow, FAMILY_MAX_CARDINALITY as u64);
        // Existing values keep resolving to their own counter.
        fam.with("tenant-0").inc();
        assert_eq!(fam.snapshot()[0].1, 2);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("threefive_jobs_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_key("rung"));
        assert!(!valid_label_key("le\""));
        assert!(!valid_label_key(""));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let reg = Registry::new();
        let _a = reg.counter("dup_total", "a");
        let _b = reg.gauge("dup_total", "b");
    }

    #[test]
    fn snapshot_preserves_registration_order_and_collectors() {
        struct Fixed;
        impl Collector for Fixed {
            fn collect(&self) -> Vec<MetricSnapshot> {
                vec![MetricSnapshot {
                    name: "from_collector".into(),
                    help: "h".into(),
                    samples: vec![(Vec::new(), MetricValue::Gauge(7))],
                }]
            }
        }
        let reg = Registry::new();
        let c = reg.counter("a_total", "a");
        c.add(3);
        reg.collector(Box::new(Fixed));
        reg.gauge("b", "b").set(-2);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_total", "from_collector", "b"]);
        assert!(matches!(
            snap.get("a_total").unwrap().samples[0].1,
            MetricValue::Counter(3)
        ));
        assert!(matches!(
            snap.get("b").unwrap().samples[0].1,
            MetricValue::Gauge(-2)
        ));
    }
}
