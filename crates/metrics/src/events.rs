//! Structured, leveled, bounded event log for the serve path.
//!
//! Replaces ad-hoc `eprintln!` telemetry: every event is a typed record
//! (sequence number, wall-clock ms, level, kind, optional job id, plus
//! free-form fields) held in a bounded ring buffer that the daemon exposes
//! over the protocol (`events` command) and optionally echoes to stderr as
//! one JSON object per line (JSONL). The ring is bounded, so a chatty
//! subsystem can never grow daemon memory; old events fall off the front.
//!
//! The wall clock is read once per *emitted* event. Events only fire on
//! the serving control path (admission, completion, quarantine, drain),
//! never inside engine sweeps, so the engine-side never-reads-the-clock-
//! when-disabled discipline is untouched.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity. Ordering is by increasing severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume detail (per-rejection, per-probe).
    Debug,
    /// Normal lifecycle (job completed, drain started).
    Info,
    /// Something degraded but handled (job failed, fallback taken).
    Warn,
    /// Something is broken (team lost, listener error).
    Error,
}

impl Level {
    /// Stable lowercase name used on the wire and in JSONL.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed field value, so numbers stay numbers in the JSONL output.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// A string (JSON-escaped on render).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float (non-finite renders as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// JSON-escape a string into `out` (without surrounding quotes).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl FieldValue {
    fn render_into(&self, out: &mut String) {
        match self {
            FieldValue::Str(s) => {
                out.push('"');
                escape_json_into(out, s);
                out.push('"');
            }
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic per-log sequence number (never reused; gaps mean the
    /// ring dropped older events, not these).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at emit time.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Short machine-readable kind, e.g. `job_done`, `job_failed`.
    pub kind: String,
    /// The job this event concerns, if any.
    pub job_id: Option<u64>,
    /// Free-form typed fields, in emit order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Render as a single JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"ts_ms\":");
        out.push_str(&self.ts_ms.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"kind\":\"");
        escape_json_into(&mut out, &self.kind);
        out.push('"');
        if let Some(id) = self.job_id {
            out.push_str(",\"job_id\":");
            out.push_str(&id.to_string());
        }
        for (key, value) in &self.fields {
            out.push_str(",\"");
            escape_json_into(&mut out, key);
            out.push_str("\":");
            value.render_into(&mut out);
        }
        out.push('}');
        out
    }
}

struct LogInner {
    next_seq: u64,
    ring: VecDeque<Event>,
}

/// A bounded, leveled event ring buffer. Clone-free: share via `Arc`.
pub struct EventLog {
    cap: usize,
    echo_stderr_min: Option<Level>,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// A log keeping at most `cap` events (older ones fall off).
    pub fn new(cap: usize) -> Self {
        EventLog {
            cap: cap.max(1),
            echo_stderr_min: None,
            inner: Mutex::new(LogInner {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Also echo events at `min` level or above to stderr as JSONL.
    pub fn with_stderr_echo(mut self, min: Level) -> Self {
        self.echo_stderr_min = Some(min);
        self
    }

    /// Append an event; returns its sequence number.
    pub fn emit(
        &self,
        level: Level,
        kind: &str,
        job_id: Option<u64>,
        fields: Vec<(String, FieldValue)>,
    ) -> u64 {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let event = Event {
            seq,
            ts_ms,
            level,
            kind: kind.to_string(),
            job_id,
            fields,
        };
        if let Some(min) = self.echo_stderr_min {
            if level >= min {
                eprintln!("{}", event.to_jsonl());
            }
        }
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
        drop(inner);
        seq
    }

    /// The most recent `limit` events at `min_level` or above, oldest
    /// first.
    pub fn tail(&self, limit: usize, min_level: Level) -> Vec<Event> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<Event> = inner
            .ring
            .iter()
            .rev()
            .filter(|e| e.level >= min_level)
            .take(limit)
            .cloned()
            .collect();
        out.reverse();
        out
    }

    /// Total events ever emitted (including ones the ring dropped).
    pub fn total_emitted(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_seq_monotonic() {
        let log = EventLog::new(4);
        for i in 0..10u64 {
            let seq = log.emit(Level::Info, "tick", Some(i), vec![]);
            assert_eq!(seq, i);
        }
        assert_eq!(log.total_emitted(), 10);
        let tail = log.tail(100, Level::Debug);
        assert_eq!(tail.len(), 4);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
    }

    #[test]
    fn tail_filters_by_level_and_limit() {
        let log = EventLog::new(64);
        log.emit(Level::Debug, "noise", None, vec![]);
        log.emit(Level::Warn, "w1", None, vec![]);
        log.emit(Level::Info, "i1", None, vec![]);
        log.emit(Level::Error, "e1", None, vec![]);
        let warns = log.tail(10, Level::Warn);
        let kinds: Vec<&str> = warns.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["w1", "e1"]);
        let last_one = log.tail(1, Level::Debug);
        assert_eq!(last_one[0].kind, "e1");
    }

    #[test]
    fn jsonl_escapes_and_types_fields() {
        let log = EventLog::new(8);
        log.emit(
            Level::Warn,
            "job_failed",
            Some(42),
            vec![
                (
                    "detail".to_string(),
                    FieldValue::from("quote \" slash \\\n"),
                ),
                ("exec_ms".to_string(), FieldValue::from(1.5)),
                ("retries".to_string(), FieldValue::from(3u64)),
                ("fatal".to_string(), FieldValue::from(false)),
                ("bad".to_string(), FieldValue::F64(f64::NAN)),
            ],
        );
        let line = log.tail(1, Level::Debug)[0].to_jsonl();
        assert!(line.starts_with("{\"seq\":0,\"ts_ms\":"));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"kind\":\"job_failed\""));
        assert!(line.contains("\"job_id\":42"));
        assert!(line.contains("\"detail\":\"quote \\\" slash \\\\\\n\""));
        assert!(line.contains("\"exec_ms\":1.5"));
        assert!(line.contains("\"retries\":3"));
        assert!(line.contains("\"fatal\":false"));
        assert!(line.contains("\"bad\":null"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error > Level::Debug);
    }
}
