//! Cross-validation of the symbolic schedule checker against the runtime.
//!
//! The checker (ISSUE: `analyze::schedule`) and the parallel 3.5-D engine
//! share the same pure schedule arithmetic (`level_lag`, `ring_slots`,
//! `plane_for_level`), so a single property ties them together: for every
//! randomly drawn geometry, the checker must certify the shipped schedule
//! race-free, **and** `try_parallel35d_sweep` must be bit-identical to the
//! scalar reference sweep on that geometry. A schedule bug would break at
//! least one side — the mutant unit tests in `schedule.rs` prove the
//! checker side trips, and this test proves the runtime side agrees with
//! the verdict on real executions.

use proptest::prelude::*;
use threefive_analyze::schedule::{check_schedule, ScheduleConfig, ScheduleModel};
use threefive_core::exec::{reference_sweep, try_parallel35d_sweep, Blocking35};
use threefive_core::SevenPoint;
use threefive_grid::{Dim3, DoubleGrid, Grid3};
use threefive_sync::{Observer, ThreadTeam};

/// Deterministic pseudo-random initial condition (no RNG dependency).
fn initial(dim: Dim3) -> Grid3<f32> {
    Grid3::from_fn(dim, |x, y, z| {
        let h = (x
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(y.wrapping_mul(0x85EB_CA6B))
            .wrapping_add(z.wrapping_mul(0xC2B2_AE35))) as u32;
        // Map to [0, 1): enough dynamic range to expose ordering bugs,
        // small enough that no sweep overflows.
        (h >> 8) as f32 / (1u32 << 24) as f32
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every sampled geometry the checker certifies the engine
    /// schedule, and the parallel executor is bit-identical to the
    /// scalar reference — the two faces of "race-free".
    #[test]
    fn checker_verdict_matches_runtime_bit_identity(
        nx in 3usize..9,
        ny in 3usize..9,
        nz in 3usize..11,
        bx in 1usize..8,
        by in 1usize..8,
        c in 1usize..4,
        threads in 1usize..5,
        steps in 1usize..7,
    ) {
        let kernel = SevenPoint::<f32>::heat(0.1);
        let dim = Dim3::new(nx, ny, nz);

        // Symbolic side: the checker must certify this exact config
        // (radius 1 for the seven-point kernel; `ly` is the partitioned
        // row extent the tile actually loads).
        let cfg = ScheduleConfig {
            r: 1,
            c,
            threads,
            nz,
            ly: by.min(ny),
        };
        let violations = check_schedule(&cfg, &ScheduleModel::engine());
        prop_assert!(
            violations.is_empty(),
            "checker flagged the shipped schedule on {cfg:?}: {violations:?}"
        );

        // Runtime side: parallel 3.5-D result must be bit-identical to
        // the scalar reference on the same initial condition.
        let mut par = DoubleGrid::from_initial(initial(dim));
        let mut refr = DoubleGrid::from_initial(initial(dim));
        let team = ThreadTeam::new(threads);
        let b = Blocking35::new(bx, by, c);
        try_parallel35d_sweep(&kernel, &mut par, steps, b, &team, None, &Observer::disabled())
            .map_err(|e| TestCaseError(format!("sweep failed: {e}")))?;
        reference_sweep(&kernel, &mut refr, steps);

        let (a, b) = (par.src().as_slice(), refr.src().as_slice());
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "bit divergence at linear index {} ({} vs {}) on {:?} blocking ({}, {}, {}) threads {} steps {}",
                i, x, y, dim, bx, by, c, threads, steps
            );
        }
    }
}
