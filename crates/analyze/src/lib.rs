//! # threefive-analyze — in-tree static analysis
//!
//! The repo builds hermetically with no external dependencies, so the
//! usual concurrency tooling (dylint, loom, TSan) is off the table; this
//! crate is the replacement we own. Two engines (DESIGN.md §11):
//!
//! * [`lint`] — a zero-dependency source scanner enforcing the repo's
//!   unsafe/concurrency discipline: SAFETY comments on every `unsafe`
//!   site, a `transmute` allowlist, no blocking sync or heap allocation
//!   in the hot-path modules, and justified memory orderings on the
//!   barrier/team coordination atomics.
//! * [`schedule`] — a symbolic race checker that interprets every
//!   shipped temporal-blocking schedule (3.5-D lag, wavefront,
//!   wavefront-diamond) over a parameter grid, using each schedule's
//!   own pure arithmetic, and proves the barrier intervals free of
//!   write/read and write/write overlap — or emits a concrete
//!   counterexample trace naming the schedule under test.
//!
//! Both report through the schema-validated [`findings::AnalyzeReport`]
//! JSON document, gated in CI by `threefive analyze --deny-findings`.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

pub mod findings;
pub mod lint;
pub mod schedule;

use findings::{apply_baseline, parse_baseline, AnalyzeReport, ANALYZE_SCHEMA_VERSION};
use std::path::Path;

/// Runs both engines over the tree at `root` (lint walk of `src/` and
/// `crates/*/src`, schedule sweep of [`schedule::default_grid`] for
/// every shipped [`schedule::ScheduleModel`]), applying the optional
/// `ANALYZE_baseline.json` text to the lint findings.
pub fn analyze_tree(root: &Path, baseline_text: Option<&str>) -> Result<AnalyzeReport, String> {
    let outcome = lint::lint_root(root)?;
    let mut findings = outcome.findings;
    if let Some(text) = baseline_text {
        let baseline = parse_baseline(text)?;
        apply_baseline(&mut findings, &baseline);
    }
    let grid = schedule::default_grid();
    let mut configs_checked = 0;
    let mut schedule_configs = Vec::new();
    let mut violations = Vec::new();
    for model in schedule::ScheduleModel::all() {
        let verdict = schedule::check_grid(&model, &grid);
        configs_checked += verdict.configs_checked;
        schedule_configs.push((model.name.to_string(), verdict.configs_checked));
        violations.extend(verdict.violations);
    }
    Ok(AnalyzeReport {
        schema_version: ANALYZE_SCHEMA_VERSION,
        files_scanned: outcome.files_scanned,
        findings,
        configs_checked,
        schedule_configs,
        violations,
        // The model checker lives in `threefive-modelcheck` (which this
        // crate cannot depend on — it links the code under test); the
        // CLI driver fills this in when `--model-check` is requested.
        model_check: None,
    })
}
