//! The source lint pass: a hand-rolled, zero-dependency scanner over the
//! workspace's `.rs` files enforcing the repo's unsafe/concurrency
//! discipline (DESIGN.md §11).
//!
//! The scanner works at line/token level — no rustc plumbing — on a
//! *stripped* view of each line: a small cross-line state machine that
//! understands `//`, nested `/* */`, `"…"` with escapes, `r#"…"#` raw
//! strings and char literals splits every line into code text and
//! comment text, so tokens inside strings never trip a rule and
//! suppression markers inside string literals are never honoured.
//!
//! ## Rules
//!
//! | rule | what it enforces |
//! |---|---|
//! | `safety-comment` | every `unsafe` site carries a `SAFETY:` comment (or `# Safety` doc heading) on the same line or immediately above |
//! | `transmute-allowlist` | `transmute` only in [`TRANSMUTE_ALLOWLIST`] files, and SAFETY-annotated there |
//! | `hot-path-alloc` | no `Vec::new`/`vec!`/`Box::new`/`.to_vec`/`Vec::with_capacity` in [`HOT_PATH_FILES`] |
//! | `hot-path-sync` | no `Mutex` / `thread::sleep` in [`HOT_PATH_FILES`] |
//! | `relaxed-ordering` | no `Ordering::Relaxed` on the barrier/team coordination atomics in `crates/sync/src` |
//! | `ordering-comment` | every non-SeqCst atomic access in `crates/sync/src` and `crates/serve/src` carries an `ORDERING:` justification comment |
//! | `bad-suppression` | every suppression marker names a known rule and gives a reason |
//!
//! Any rule (except `bad-suppression` itself) can be silenced inline
//! with an `analyze:allow(<rule>) <reason>` comment on the offending
//! line or the line above; the reason is mandatory so exceptions stay
//! visible and justified in-diff. `#[cfg(test)]` regions are exempt from
//! the concurrency rules (`hot-path-*`, `relaxed-ordering`) but **not**
//! from `safety-comment`: test code may sleep and allocate, but unsafe
//! is unsafe everywhere.

use crate::findings::Finding;
use std::path::{Path, PathBuf};

/// Every rule id the scanner can emit.
pub const RULES: &[&str] = &[
    "safety-comment",
    "transmute-allowlist",
    "hot-path-alloc",
    "hot-path-sync",
    "relaxed-ordering",
    "ordering-comment",
    "bad-suppression",
];

/// The only files allowed to contain `transmute` (each use must still be
/// SAFETY-annotated): the SSE lane-splat helpers and the thread-team
/// lifetime-erasing trampoline.
pub const TRANSMUTE_ALLOWLIST: &[&str] = &["crates/simd/src/sse.rs", "crates/sync/src/team.rs"];

/// Hot-path modules where blocking sync primitives and heap allocation
/// are banned outside `#[cfg(test)]`: the per-plane streaming loops live
/// here, and one stray allocation per plane wrecks the roofline numbers.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/exec/engine35.rs",
    "crates/core/src/exec/pipeline35.rs",
    "crates/lbm/src/step.rs",
    "crates/serve/src/dispatch.rs",
    "crates/sync/src/barrier.rs",
];

/// Allocation call tokens banned in [`HOT_PATH_FILES`].
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "Box::new(",
    ".to_vec(",
    "Vec::with_capacity(",
];

/// Coordination atomics of the spin barrier and thread team on which
/// `Ordering::Relaxed` needs an explicit justification: these orderings
/// *are* the correctness argument of the hand-rolled barrier.
const FLAGGED_ATOMICS: &[&str] = &[
    "poisoned",
    "generation",
    "count",
    "go",
    "done",
    "quarantined",
];

/// Non-SeqCst memory-ordering tokens. Every use in the sync layer
/// (`crates/sync/src`, `crates/serve/src`) must carry an `ORDERING:`
/// comment spelling out the happens-before edge it relies on (or why
/// none is needed) — the model checker in `crates/modelcheck` explores
/// exactly the reorderings these tokens permit, so the justification is
/// what a reviewer checks the scenario catalog against.
const WEAK_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// Result of walking one tree: how many files were scanned, plus every
/// finding in walk order (suppressed ones included, already marked).
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, inline-suppressed ones marked.
    pub findings: Vec<Finding>,
}

/// Scans `root/src` and `root/crates/*/src` and lints every `.rs` file.
pub fn lint_root(root: &Path) -> Result<LintOutcome, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("{}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for krate in entries {
            collect_rs(&krate.join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut out = LintOutcome::default();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        out.findings.extend(lint_source(&rel, &text));
        out.files_scanned += 1;
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file's text; `rel` is its path relative to the analysis
/// root (used for the per-file rule scoping). Pure — the fixture tests
/// call this directly.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    let lines = strip_code(text);
    let in_test = test_regions(&lines);
    let (allows, mut findings) = parse_suppressions(rel, &lines);

    let hot = HOT_PATH_FILES.contains(&rel);
    let transmute_ok = TRANSMUTE_ALLOWLIST.contains(&rel);
    let sync_crate = rel.starts_with("crates/sync/src");
    let sync_layer = sync_crate || rel.starts_with("crates/serve/src");
    // `annotated[i]`: line i holds an `unsafe` that satisfied the SAFETY
    // rule — lets one comment cover a contiguous run of unsafe lines
    // (e.g. the `unsafe impl Send`/`Sync` pair).
    let mut annotated = vec![false; lines.len()];
    // Same run-coverage for `ORDERING:` comments over atomic accesses.
    let mut ord_annotated = vec![false; lines.len()];

    for i in 0..lines.len() {
        let c = lines[i].code.as_str();
        let line = i + 1;

        if has_word(c, "unsafe") {
            if is_safety_annotated(&lines, &annotated, i) {
                annotated[i] = true;
            } else {
                findings.push(finding(
                    "safety-comment",
                    rel,
                    line,
                    "unsafe site without a preceding `SAFETY:` comment (or `# Safety` doc heading)",
                ));
            }
        }

        if has_word(c, "transmute") {
            if !transmute_ok {
                findings.push(finding(
                    "transmute-allowlist",
                    rel,
                    line,
                    "`transmute` outside the allowlisted files (crates/simd/src/sse.rs, crates/sync/src/team.rs)",
                ));
            } else if !is_safety_annotated(&lines, &annotated, i) {
                findings.push(finding(
                    "transmute-allowlist",
                    rel,
                    line,
                    "allowlisted `transmute` still needs its own `SAFETY:` justification",
                ));
            }
        }

        if hot && !in_test[i] {
            if let Some(tok) = ALLOC_TOKENS.iter().find(|t| has_token(c, t)) {
                findings.push(finding(
                    "hot-path-alloc",
                    rel,
                    line,
                    &format!("heap allocation `{tok}..)` in a hot-path module"),
                ));
            }
            if has_word(c, "Mutex") {
                findings.push(finding(
                    "hot-path-sync",
                    rel,
                    line,
                    "`Mutex` in a hot-path module (use atomics or the spin barrier)",
                ));
            }
            if c.contains("thread::sleep") {
                findings.push(finding(
                    "hot-path-sync",
                    rel,
                    line,
                    "`thread::sleep` in a hot-path module (spin with `hint::spin_loop` instead)",
                ));
            }
        }

        if sync_layer && !in_test[i] && WEAK_ORDERINGS.iter().any(|t| c.contains(t)) {
            if is_ordering_annotated(&lines, &ord_annotated, i) {
                ord_annotated[i] = true;
            } else {
                findings.push(finding(
                    "ordering-comment",
                    rel,
                    line,
                    "non-SeqCst atomic access without an `ORDERING:` comment naming the happens-before edge it relies on",
                ));
            }
        }

        if sync_crate
            && !in_test[i]
            && has_word(c, "Relaxed")
            && FLAGGED_ATOMICS
                .iter()
                .any(|a| c.contains(&format!(".{a}.")))
            && !is_ordering_annotated(&lines, &ord_annotated, i)
        {
            findings.push(finding(
                "relaxed-ordering",
                rel,
                line,
                "`Ordering::Relaxed` on a barrier/team coordination atomic — add an `ORDERING:` comment justifying why no ordering is needed",
            ));
        }
    }

    // Inline suppression: a marker on the finding's line or the line
    // above silences it (bad-suppression itself is not silenceable: a
    // broken suppression must never self-suppress).
    for f in &mut findings {
        if f.rule == "bad-suppression" {
            continue;
        }
        let idx = f.line - 1;
        let covered = allows
            .iter()
            .any(|(j, rule)| *rule == f.rule && (*j == idx || *j + 1 == idx));
        if covered {
            f.suppressed = Some("inline".into());
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    findings
}

fn finding(rule: &str, file: &str, line: usize, message: &str) -> Finding {
    Finding {
        rule: rule.into(),
        file: file.into(),
        line,
        message: message.into(),
        suppressed: None,
    }
}

/// Extracts valid `analyze:allow(<rule>) <reason>` markers — searched in
/// comment text only, so string literals can never smuggle one in — as
/// `(line_idx, rule)` pairs, and emits `bad-suppression` findings for
/// malformed ones. Parenthesized text that does not look like a rule id
/// (lowercase + dashes) is treated as prose, not a broken marker.
fn parse_suppressions(rel: &str, lines: &[Stripped]) -> (Vec<(usize, String)>, Vec<Finding>) {
    const MARKER: &str = "analyze:allow(";
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let Some(pos) = l.comment.find(MARKER) else {
            continue;
        };
        let rest = &l.comment[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim();
        if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
            continue;
        }
        let reason = rest[close + 1..].trim();
        if !RULES.contains(&rule) {
            findings.push(finding(
                "bad-suppression",
                rel,
                i + 1,
                &format!("unknown rule `{rule}` in suppression marker"),
            ));
        } else if reason.is_empty() {
            findings.push(finding(
                "bad-suppression",
                rel,
                i + 1,
                &format!("suppression of `{rule}` without a reason — exceptions must be justified"),
            ));
        } else {
            allows.push((i, rule.to_string()));
        }
    }
    (allows, findings)
}

/// Whether the `unsafe`/`transmute` at line `i` is justified: a `SAFETY:`
/// comment on the same line, or — walking upward over comment-only
/// lines, attributes, blanks and already-annotated unsafe lines — a
/// comment containing `SAFETY:` or a `# Safety` doc heading.
fn is_safety_annotated(lines: &[Stripped], annotated: &[bool], i: usize) -> bool {
    if lines[i].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = lines[j].code.trim();
        let skippable = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || code.contains("unsafe impl")
            || annotated[j];
        if !skippable {
            return false;
        }
        let comment = &lines[j].comment;
        if comment.contains("SAFETY:") || comment.contains("# Safety") {
            return true;
        }
    }
    false
}

/// Whether the non-SeqCst atomic access at line `i` is justified: an
/// `ORDERING:` comment on the same line or the line above, or — walking
/// upward over blanks, attributes, continuation lines of the same
/// statement, block-opener lines and already-annotated access lines — a
/// comment containing `ORDERING:`. Continuation lines (code not ending
/// in `;` or `}`) are skippable so a comment above a rustfmt-wrapped
/// call still counts, and a `{`-ending opener is skippable so a comment
/// above a wait loop covers the accesses inside it; the walk stops at
/// the previous complete statement.
fn is_ordering_annotated(lines: &[Stripped], annotated: &[bool], i: usize) -> bool {
    if lines[i].comment.contains("ORDERING:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        if lines[j].comment.contains("ORDERING:") {
            return true;
        }
        let code = lines[j].code.trim();
        let statement_end = code.ends_with(';') || code.ends_with('}');
        let skippable = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#![")
            || !statement_end
            || annotated[j];
        if !skippable {
            return false;
        }
    }
    false
}

/// Marks the lines belonging to `#[cfg(test)]` items (attribute through
/// the matching close brace, by brace counting on stripped code).
fn test_regions(lines: &[Stripped]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            out[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// Whether `code` contains `word` delimited by non-identifier characters
/// (so `unsafe_op_in_unsafe_fn` never matches `unsafe`).
fn has_word(code: &str, word: &str) -> bool {
    find_bounded(code, word, true)
}

/// Like [`has_word`] but only the *leading* boundary is checked — for
/// tokens ending in punctuation such as `Vec::new(` (still refusing
/// `MyVec::new(`).
fn has_token(code: &str, token: &str) -> bool {
    find_bounded(code, token, false)
}

fn find_bounded(code: &str, pat: &str, check_after: bool) -> bool {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = code.as_bytes();
    let first_is_ident = pat.as_bytes().first().copied().map(is_ident) == Some(true);
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let p = start + pos;
        let before_ok = !first_is_ident || p == 0 || !is_ident(bytes[p - 1]);
        let end = p + pat.len();
        let after_ok = !check_after || end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = p + 1;
    }
    false
}

/// One source line split into code text and comment text; string and
/// char literal contents belong to neither.
struct Stripped {
    code: String,
    comment: String,
}

/// Splits every line into code and comments, preserving line structure.
/// A small state machine carries `/* */` nesting, multi-line `"…"`
/// strings and `r##"…"##` raw strings across line boundaries.
fn strip_code(text: &str) -> Vec<Stripped> {
    #[derive(Clone, Copy)]
    enum S {
        Code,
        Block(u32),
        Str,
        Raw(usize),
    }
    let mut state = S::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b = line.as_bytes();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match state {
                S::Block(depth) => {
                    let open = line[i..].find("/*").map(|p| i + p);
                    let close = line[i..].find("*/").map(|p| i + p);
                    let until = match (open, close) {
                        (Some(o), Some(c)) if o < c => {
                            state = S::Block(depth + 1);
                            o + 2
                        }
                        (_, Some(c)) => {
                            state = if depth > 1 {
                                S::Block(depth - 1)
                            } else {
                                S::Code
                            };
                            c + 2
                        }
                        (Some(o), None) => {
                            state = S::Block(depth + 1);
                            o + 2
                        }
                        (None, None) => b.len(),
                    };
                    comment.push_str(&line[i..until]);
                    i = until;
                }
                S::Str => {
                    if b[i] == b'\\' {
                        i = (i + 2).min(b.len());
                    } else if b[i] == b'"' {
                        state = S::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                S::Raw(hashes) => {
                    let terminator: String = std::iter::once('"')
                        .chain("#".repeat(hashes).chars())
                        .collect();
                    match line[i..].find(&terminator) {
                        Some(p) => {
                            state = S::Code;
                            i += p + terminator.len();
                        }
                        None => i = b.len(),
                    }
                }
                S::Code => {
                    if line[i..].starts_with("//") {
                        comment.push_str(&line[i..]);
                        i = b.len();
                    } else if line[i..].starts_with("/*") {
                        state = S::Block(1);
                        i += 2;
                    } else if let Some(h) = raw_string_open(line, i) {
                        state = S::Raw(h);
                        // Skip past `r`/`br`, the hashes and the quote.
                        let prefix = if b[i] == b'b' { 2 } else { 1 };
                        i += prefix + h + 1;
                    } else if b[i] == b'"' {
                        state = S::Str;
                        i += 1;
                    } else if b[i] == b'\'' {
                        i = skip_char_or_lifetime(line, i);
                    } else {
                        let ch_len = utf8_len(b[i]);
                        code.push_str(&line[i..i + ch_len]);
                        i += ch_len;
                    }
                }
            }
        }
        out.push(Stripped { code, comment });
    }
    out
}

/// If a raw string literal (`r"…"`, `r#"…"#`, `br"…"`) opens at byte `i`,
/// returns its hash count.
fn raw_string_open(line: &str, i: usize) -> Option<usize> {
    let b = line.as_bytes();
    let mut j = i;
    if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
        j += 1;
    }
    if b[j] != b'r' {
        return None;
    }
    // The `r` must start its identifier, else any ident ending in `r`
    // followed by `"` would be misread.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    let mut k = j + 1;
    let mut hashes = 0;
    while k < b.len() && b[k] == b'#' {
        hashes += 1;
        k += 1;
    }
    (k < b.len() && b[k] == b'"').then_some(hashes)
}

/// Skips a char literal (`'x'`, `'\n'`) starting at byte `i`; for a
/// lifetime only the quote is skipped (the identifier stays in code).
fn skip_char_or_lifetime(line: &str, i: usize) -> usize {
    let b = line.as_bytes();
    if i + 1 >= b.len() {
        return i + 1;
    }
    if b[i + 1] == b'\\' {
        // Escaped char literal: close at the next quote after the escape.
        match line[i + 2..].find('\'') {
            Some(p) => i + 2 + p + 1,
            None => b.len(),
        }
    } else {
        let ch_len = utf8_len(b[i + 1]);
        if i + 1 + ch_len < b.len() && b[i + 1 + ch_len] == b'\'' {
            i + 1 + ch_len + 1
        } else {
            i + 1
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(fs: &[Finding]) -> Vec<&str> {
        fs.iter()
            .filter(|f| f.suppressed.is_none())
            .map(|f| f.rule.as_str())
            .collect()
    }

    #[test]
    fn unannotated_unsafe_is_flagged_with_location() {
        let src = "fn f() {\n    let x = unsafe { g() };\n}\n";
        let fs = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&fs), ["safety-comment"]);
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[0].locus(), "crates/x/src/lib.rs:2");
    }

    #[test]
    fn safety_comment_same_line_or_above_satisfies() {
        let above =
            "fn f() {\n    // SAFETY: g upholds its contract\n    let x = unsafe { g() };\n}\n";
        assert!(rules_of(&lint_source("a.rs", above)).is_empty());
        let same = "fn f() {\n    let x = unsafe { g() }; // SAFETY: trivially in-bounds\n}\n";
        assert!(rules_of(&lint_source("a.rs", same)).is_empty());
    }

    #[test]
    fn safety_in_a_string_literal_does_not_satisfy() {
        let src = "fn f() {\n    let s = \"SAFETY: not a comment\"; let x = unsafe { g() };\n}\n";
        assert_eq!(rules_of(&lint_source("a.rs", src)), ["safety-comment"]);
    }

    #[test]
    fn safety_walkup_skips_attributes_and_doc_headings() {
        let src = "/// Reads a lane.\n///\n/// # Safety\n/// `i` must be in bounds.\n#[inline]\npub unsafe fn lane(i: usize) -> f32 {\n    0.0\n}\n";
        assert!(rules_of(&lint_source("a.rs", src)).is_empty());
    }

    #[test]
    fn one_safety_comment_covers_unsafe_impl_pair_and_runs() {
        let pair = "// SAFETY: raw pointer is never aliased mutably\nunsafe impl Send for T {}\nunsafe impl Sync for T {}\n";
        assert!(rules_of(&lint_source("a.rs", pair)).is_empty());
        let run =
            "// SAFETY: both lanes in bounds\nlet a = unsafe { x() };\nlet b = unsafe { y() };\n";
        assert!(rules_of(&lint_source("a.rs", run)).is_empty());
    }

    #[test]
    fn unsafe_in_strings_comments_and_attributes_is_ignored() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n// unsafe in a comment\nlet s = \"unsafe { }\";\nlet r = r#\"unsafe\"#;\n";
        assert!(rules_of(&lint_source("a.rs", src)).is_empty());
    }

    #[test]
    fn multiline_raw_string_contents_do_not_leak_into_code() {
        let src = "let s = r#\"first\nunsafe { Mutex vec![ }\ntransmute\"#;\nlet after = 1;\n";
        assert!(rules_of(&lint_source("crates/core/src/exec/engine35.rs", src)).is_empty());
    }

    #[test]
    fn transmute_allowed_only_in_allowlisted_files() {
        let src = "// SAFETY: same layout\nlet y = unsafe { std::mem::transmute::<A, B>(x) };\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/lib.rs", src)),
            ["transmute-allowlist"]
        );
        assert!(rules_of(&lint_source("crates/simd/src/sse.rs", src)).is_empty());
        // Allowlisted but unannotated: still flagged.
        let bare = "let y = unsafe { core::mem::transmute::<A, B>(x) };\n";
        let fs = lint_source("crates/sync/src/team.rs", bare);
        assert!(rules_of(&fs).contains(&"transmute-allowlist"));
    }

    #[test]
    fn hot_path_rules_fire_only_in_hot_files_and_outside_tests() {
        let src = "fn setup() {\n    let v = Vec::with_capacity(8);\n    let m = std::sync::Mutex::new(0);\n    std::thread::sleep(d);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; std::thread::sleep(d); }\n}\n";
        let fs = lint_source("crates/core/src/exec/engine35.rs", src);
        assert_eq!(
            rules_of(&fs),
            ["hot-path-alloc", "hot-path-sync", "hot-path-sync"]
        );
        assert!(rules_of(&lint_source("crates/core/src/plan.rs", src)).is_empty());
    }

    #[test]
    fn relaxed_ordering_flags_coordination_atomics_only() {
        let bad = "self.poisoned.store(true, Ordering::Relaxed);\n";
        assert_eq!(
            rules_of(&lint_source("crates/sync/src/barrier.rs", bad)),
            ["ordering-comment", "relaxed-ordering"]
        );
        // Unflagged atomic name: only the ordering-comment rule fires.
        let ok = "self.epoch.store(1, Ordering::Relaxed);\n";
        assert_eq!(
            rules_of(&lint_source("crates/sync/src/barrier.rs", ok)),
            ["ordering-comment"]
        );
        // Outside crates/sync: out of scope.
        assert!(rules_of(&lint_source("crates/core/src/lib.rs", bad)).is_empty());
        // An ORDERING: comment satisfies both rules at once.
        let justified =
            "// ORDERING: poison is published by the Release generation bump\nself.poisoned.store(true, Ordering::Relaxed);\n";
        assert!(rules_of(&lint_source("crates/sync/src/barrier.rs", justified)).is_empty());
    }

    #[test]
    fn ordering_comment_required_on_non_seqcst_accesses() {
        let bare = "self.epoch.store(1, Ordering::Release);\n";
        for file in ["crates/sync/src/team.rs", "crates/serve/src/queue.rs"] {
            assert_eq!(rules_of(&lint_source(file, bare)), ["ordering-comment"]);
        }
        // SeqCst needs no justification; other crates are out of scope.
        assert!(rules_of(&lint_source(
            "crates/sync/src/team.rs",
            "self.epoch.store(1, Ordering::SeqCst);\n"
        ))
        .is_empty());
        assert!(rules_of(&lint_source("crates/core/src/lib.rs", bare)).is_empty());
        // Test code is exempt, like the other concurrency rules.
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.store(1, Ordering::Relaxed); }\n}\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", in_test)).is_empty());
    }

    #[test]
    fn ordering_comment_same_line_above_or_wrapped_call_satisfies() {
        let same = "self.epoch.store(1, Ordering::Release); // ORDERING: publishes the new epoch\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", same)).is_empty());
        let above = "// ORDERING: pairs with the Acquire load in wait()\nself.epoch.store(1, Ordering::Release);\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", above)).is_empty());
        // rustfmt-wrapped call: the token lands on a continuation line.
        let wrapped = "// ORDERING: pairs with the Acquire load in wait()\nself.long_field_name\n    .store(1, Ordering::Release);\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", wrapped)).is_empty());
        // One comment covers a contiguous run of accesses.
        let run = "// ORDERING: both sequenced before the Release go bump\nself.a.store(1, Ordering::Relaxed);\nself.b.store(2, Ordering::Relaxed);\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", run)).is_empty());
        // A comment above a loop header covers the accesses inside it.
        let in_loop = "// ORDERING: zeroed with no sweep in flight\nfor c in &s.hist {\n    c.store(0, Ordering::Relaxed);\n}\n";
        assert!(rules_of(&lint_source("crates/sync/src/team.rs", in_loop)).is_empty());
        // A statement between the comment and the access breaks coverage.
        let too_far = "// ORDERING: stale\nlet x = 1;\nself.epoch.store(1, Ordering::Release);\n";
        assert_eq!(
            rules_of(&lint_source("crates/sync/src/team.rs", too_far)),
            ["ordering-comment"]
        );
        // ORDERING: inside a string literal never satisfies.
        let smuggled = "let s = \"ORDERING: fake\";\nself.epoch.store(1, Ordering::Release);\n";
        assert_eq!(
            rules_of(&lint_source("crates/sync/src/team.rs", smuggled)),
            ["ordering-comment"]
        );
    }

    #[test]
    fn inline_suppression_silences_and_requires_reason() {
        let ok = "// analyze:allow(hot-path-alloc) one-time setup before the stream loop\nlet v = Vec::with_capacity(8);\n";
        let fs = lint_source("crates/core/src/exec/engine35.rs", ok);
        assert!(rules_of(&fs).is_empty());
        assert_eq!(fs.len(), 1, "suppressed finding still recorded");
        assert_eq!(fs[0].suppressed.as_deref(), Some("inline"));

        let no_reason = "// analyze:allow(hot-path-alloc)\nlet v = Vec::with_capacity(8);\n";
        let fs = lint_source("crates/core/src/exec/engine35.rs", no_reason);
        assert_eq!(rules_of(&fs), ["bad-suppression", "hot-path-alloc"]);

        let unknown = "// analyze:allow(no-such-rule) because\nlet v = 1;\n";
        assert_eq!(rules_of(&lint_source("a.rs", unknown)), ["bad-suppression"]);
    }

    #[test]
    fn suppression_in_a_string_literal_is_not_honoured() {
        let src = "let s = \"analyze:allow(hot-path-alloc) smuggled\";\nlet v = Vec::new();\n";
        let fs = lint_source("crates/core/src/exec/pipeline35.rs", src);
        assert_eq!(rules_of(&fs), ["hot-path-alloc"]);
    }

    #[test]
    fn suppression_only_covers_its_own_rule_and_adjacent_line() {
        let wrong_rule = "// analyze:allow(hot-path-sync) reason here\nlet v = Vec::new();\n";
        let fs = lint_source("crates/core/src/exec/pipeline35.rs", wrong_rule);
        assert_eq!(rules_of(&fs), ["hot-path-alloc"]);
        let too_far =
            "// analyze:allow(hot-path-alloc) reason here\nlet a = 1;\nlet v = Vec::new();\n";
        let fs = lint_source("crates/core/src/exec/pipeline35.rs", too_far);
        assert_eq!(rules_of(&fs), ["hot-path-alloc"]);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_stripping() {
        let src = "fn f<'a>(x: &'a str) -> char {\n    let q = '\"';\n    let n = '\\n';\n    unsafe { g() }\n}\n";
        let fs = lint_source("a.rs", src);
        assert_eq!(rules_of(&fs), ["safety-comment"]);
        assert_eq!(fs[0].line, 4, "quote char literal must not open a string");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "/* outer /* nested unsafe */\nstill comment unsafe\n*/\nlet x = 1;\n";
        assert!(rules_of(&lint_source("a.rs", src)).is_empty());
    }
}
