//! The symbolic race checker for the engine's temporal-blocking
//! schedules — lag, wavefront and wavefront-diamond.
//!
//! A small abstract interpreter over a schedule's plane arithmetic: for
//! each outer step it computes every thread's read-set and write-set of
//! `(ring, slot, plane, row-strip)` between consecutive barriers —
//! using the *same* pure schedule arithmetic the runtime executes (the
//! [`threefive_core::exec::Schedule`] statics' `level_lag` /
//! `ring_slots` / span, taken as function pointers via
//! [`ScheduleModel::for_kind`] so the model cannot drift from the
//! implementation) — and verifies, per schedule:
//!
//! 1. **no intra-interval overlap** — no W/R or W/W overlap between two
//!    threads on the same ring slot within one barrier interval;
//! 2. **freshness** — every cross-time-level read finds the plane that
//!    was written exactly one level lag earlier, not a stale or
//!    recycled slot;
//! 3. **no premature reuse** — a ring slot is only overwritten after its
//!    last scheduled reader has run.
//!
//! On violation it emits a counterexample trace naming the schedule
//! under test plus the step, ring, slot and the offending
//! `(thread, level, plane, rows)` pair. The model is deliberately
//! conservative about rows (a writer's strip is its whole owned band, a
//! reader's strip is the band expanded by ±R), so a "race-free" verdict
//! is a proof over the model, not a sampling claim; see DESIGN.md §11
//! for what the model does and does not cover.

use threefive_bench::json::Json;
use threefive_core::exec::schedule::{DIAMOND, WAVEFRONT};
use threefive_core::exec::{level_lag, ring_slots, Schedule, ScheduleKind};
use threefive_grid::partition::even_range;

/// Cap on recorded counterexamples per config (one is enough to fail the
/// build; a handful aids debugging; thousands help nobody).
const MAX_PER_CONFIG: usize = 4;
/// Cap on counterexamples across a whole grid sweep.
const MAX_TOTAL: usize = 64;

/// Plane-lag arithmetic `(r, t) → lag`, the shape of `level_lag`.
pub type LagFn = fn(usize, usize) -> usize;

/// Ring-capacity arithmetic `r → slots`, the shape of `ring_slots`.
pub type SlotsFn = fn(usize) -> usize;

/// The schedule arithmetic under test, as function pointers so mutant
/// models (lag off by one, undersized ring, merged barrier intervals)
/// can be built in tests while the defaults bind the engine's own
/// schedule statics.
#[derive(Clone, Copy)]
pub struct ScheduleModel {
    /// Name of the schedule under test, stamped into counterexamples.
    pub name: &'static str,
    /// Plane lag of time level `t` (1-based): the schedule's `level_lag`.
    pub lag: LagFn,
    /// Ring capacity in planes for radius `r`: the schedule's
    /// `ring_slots`.
    pub slots: SlotsFn,
    /// Planes each level advances per outer step (the schedule's span;
    /// level `t` processes plane `z` at step `⌊(z + lag(t)) / span⌋`).
    pub span: usize,
    /// Outer steps between consecutive barriers (the engine runs exactly
    /// one; `> 1` models a missing barrier).
    pub steps_per_barrier: usize,
}

impl ScheduleModel {
    /// The shipped engine's default (3.5-D lag) schedule, bound to the
    /// very functions `tile_stream` executes.
    pub fn engine() -> Self {
        Self::for_kind(ScheduleKind::Lag35d)
    }

    /// The model for one shipped schedule, bound to that schedule's own
    /// arithmetic (the `Schedule` statics in `threefive-core`), so the
    /// proof is over exactly what the engine runs.
    pub fn for_kind(kind: ScheduleKind) -> Self {
        let (lag, slots): (LagFn, SlotsFn) = match kind {
            ScheduleKind::Lag35d => (level_lag, ring_slots),
            ScheduleKind::Wavefront => (
                |r, t| WAVEFRONT.level_lag(r, t),
                |r| WAVEFRONT.ring_slots(r),
            ),
            ScheduleKind::Diamond => (|r, t| DIAMOND.level_lag(r, t), |r| DIAMOND.ring_slots(r)),
        };
        Self {
            name: kind.as_str(),
            lag,
            slots,
            span: kind.schedule().span(),
            steps_per_barrier: 1,
        }
    }

    /// Models for every shipped schedule, in canonical order.
    pub fn all() -> [Self; 3] {
        ScheduleKind::ALL.map(Self::for_kind)
    }
}

/// One point of the checked parameter grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Stencil radius `R`.
    pub r: usize,
    /// Temporal blocking factor `dim_T` (levels per chunk).
    pub c: usize,
    /// Team size.
    pub threads: usize,
    /// Planes along the streaming axis.
    pub nz: usize,
    /// Loaded tile rows (the partitioned axis).
    pub ly: usize,
}

/// What went wrong, mirroring the three checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two threads touch the same ring slot with overlapping rows inside
    /// one barrier interval, at least one writing.
    IntraStepOverlap,
    /// A read found the wrong plane in its slot (never written, not yet
    /// written, or already recycled).
    StaleRead,
    /// A slot was overwritten no later than its last scheduled reader.
    PrematureReuse,
}

impl ViolationKind {
    fn as_str(self) -> &'static str {
        match self {
            ViolationKind::IntraStepOverlap => "intra-step-overlap",
            ViolationKind::StaleRead => "stale-read",
            ViolationKind::PrematureReuse => "premature-reuse",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "intra-step-overlap" => ViolationKind::IntraStepOverlap,
            "stale-read" => ViolationKind::StaleRead,
            "premature-reuse" => ViolationKind::PrematureReuse,
            _ => return None,
        })
    }
}

/// One side of a counterexample: who touched what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessDesc {
    /// Team member index.
    pub tid: usize,
    /// Time level `t` (1-based).
    pub level: usize,
    /// Global Z plane index the access targets.
    pub plane: usize,
    /// Row strip `[lo, hi)` of the partitioned axis.
    pub rows: (usize, usize),
    /// `true` for a write, `false` for a read.
    pub write: bool,
}

/// A concrete counterexample trace from the checker.
#[derive(Clone, Debug, PartialEq)]
pub struct RaceViolation {
    /// Name of the schedule under test when the check failed.
    pub schedule: String,
    /// Which check failed.
    pub kind: ViolationKind,
    /// The grid point it failed at.
    pub config: ScheduleConfig,
    /// Outer step of the offending access.
    pub step: usize,
    /// Ring index (level `t` writes ring `t-1`).
    pub ring: usize,
    /// Slot within the ring (`plane % slots`).
    pub slot: usize,
    /// The offending access.
    pub a: AccessDesc,
    /// Its conflict partner, when the violation is a pair.
    pub b: Option<AccessDesc>,
    /// Human-readable explanation.
    pub detail: String,
}

impl RaceViolation {
    pub(crate) fn to_json(&self) -> Json {
        let access = |a: &AccessDesc| {
            Json::Obj(vec![
                ("tid".into(), Json::Num(a.tid as f64)),
                ("level".into(), Json::Num(a.level as f64)),
                ("plane".into(), Json::Num(a.plane as f64)),
                (
                    "rows".into(),
                    Json::Arr(vec![Json::Num(a.rows.0 as f64), Json::Num(a.rows.1 as f64)]),
                ),
                ("write".into(), Json::Bool(a.write)),
            ])
        };
        Json::Obj(vec![
            ("schedule".into(), Json::str(&*self.schedule)),
            ("kind".into(), Json::str(self.kind.as_str())),
            (
                "config".into(),
                Json::Obj(vec![
                    ("r".into(), Json::Num(self.config.r as f64)),
                    ("c".into(), Json::Num(self.config.c as f64)),
                    ("threads".into(), Json::Num(self.config.threads as f64)),
                    ("nz".into(), Json::Num(self.config.nz as f64)),
                    ("ly".into(), Json::Num(self.config.ly as f64)),
                ]),
            ),
            ("step".into(), Json::Num(self.step as f64)),
            ("ring".into(), Json::Num(self.ring as f64)),
            ("slot".into(), Json::Num(self.slot as f64)),
            ("a".into(), access(&self.a)),
            (
                "b".into(),
                match &self.b {
                    Some(b) => access(b),
                    None => Json::Null,
                },
            ),
            ("detail".into(), Json::str(&*self.detail)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, String> {
        fn num(v: &Json, key: &str) -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("violation: missing integer '{key}'"))
        }
        fn access(v: &Json) -> Result<AccessDesc, String> {
            let rows = v
                .get("rows")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 2)
                .ok_or("access: missing 'rows' pair")?;
            let write = match v.get("write") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("access: missing bool 'write'".into()),
            };
            Ok(AccessDesc {
                tid: num(v, "tid")?,
                level: num(v, "level")?,
                plane: num(v, "plane")?,
                rows: (
                    rows[0].as_u64().ok_or("rows[0] not integer")? as usize,
                    rows[1].as_u64().ok_or("rows[1] not integer")? as usize,
                ),
                write,
            })
        }
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ViolationKind::from_str)
            .ok_or("violation: bad 'kind'")?;
        let cfg = v.get("config").ok_or("violation: missing 'config'")?;
        let b = match v.get("b") {
            Some(Json::Null) | None => None,
            Some(other) => Some(access(other)?),
        };
        Ok(Self {
            schedule: v
                .get("schedule")
                .and_then(Json::as_str)
                .ok_or("violation: missing 'schedule'")?
                .to_string(),
            kind,
            config: ScheduleConfig {
                r: num(cfg, "r")?,
                c: num(cfg, "c")?,
                threads: num(cfg, "threads")?,
                nz: num(cfg, "nz")?,
                ly: num(cfg, "ly")?,
            },
            step: num(v, "step")?,
            ring: num(v, "ring")?,
            slot: num(v, "slot")?,
            a: access(v.get("a").ok_or("violation: missing 'a'")?)?,
            b,
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .ok_or("violation: missing 'detail'")?
                .to_string(),
        })
    }
}

/// Aggregate verdict of a grid sweep.
#[derive(Clone, Debug)]
pub struct ScheduleVerdict {
    /// How many grid points were interpreted.
    pub configs_checked: usize,
    /// All counterexamples found (empty ⇔ race-free), capped at
    /// `MAX_TOTAL`.
    pub violations: Vec<RaceViolation>,
}

impl ScheduleVerdict {
    /// `true` iff no check failed anywhere on the grid.
    pub fn race_free(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The full parameter grid the CI gate certifies: R ∈ {1,2,3}, dim_T ∈
/// 1..=4, team sizes 1..=8, plane counts down to the minimum interior
/// and row counts that do not divide evenly among the teams.
pub fn default_grid() -> Vec<ScheduleConfig> {
    let mut grid = Vec::new();
    for r in [1usize, 2, 3] {
        let mut nzs = vec![2 * r + 1, 2 * r + 2, 8, 13];
        nzs.dedup();
        for c in 1..=4usize {
            for threads in 1..=8usize {
                for &nz in &nzs {
                    for ly in [1usize, 7, 13] {
                        grid.push(ScheduleConfig {
                            r,
                            c,
                            threads,
                            nz,
                            ly,
                        });
                    }
                }
            }
        }
    }
    grid
}

/// Interprets every grid point under `model`.
pub fn check_grid(model: &ScheduleModel, grid: &[ScheduleConfig]) -> ScheduleVerdict {
    let mut violations = Vec::new();
    for cfg in grid {
        if violations.len() >= MAX_TOTAL {
            break;
        }
        violations.extend(check_schedule(cfg, model));
        violations.truncate(MAX_TOTAL);
    }
    ScheduleVerdict {
        configs_checked: grid.len(),
        violations,
    }
}

/// One modeled access of a barrier interval.
#[derive(Clone, Copy)]
struct Access {
    step: usize,
    tid: usize,
    level: usize,
    ring: usize,
    slot: usize,
    plane: usize,
    rows: (usize, usize),
    write: bool,
}

impl Access {
    fn desc(&self) -> AccessDesc {
        AccessDesc {
            tid: self.tid,
            level: self.level,
            plane: self.plane,
            rows: self.rows,
            write: self.write,
        }
    }
}

/// Interprets one grid point: walks every barrier interval, collects the
/// per-thread access sets from the schedule arithmetic, and runs the
/// three checks. Returns at most `MAX_PER_CONFIG` counterexamples.
pub fn check_schedule(cfg: &ScheduleConfig, model: &ScheduleModel) -> Vec<RaceViolation> {
    let &ScheduleConfig {
        r,
        c,
        threads,
        nz,
        ly,
    } = cfg;
    assert!(r >= 1 && c >= 1 && threads >= 1 && nz >= 1 && ly >= 1);
    let span = model.span.max(1);
    let total_steps = (nz + (model.lag)(r, c)).div_ceil(span);
    let slots = (model.slots)(r);
    let n_rings = c - 1;
    let bands: Vec<(usize, usize)> = (0..threads)
        .map(|tid| {
            let rng = even_range(ly, threads, tid);
            (rng.start, rng.end)
        })
        .collect();

    let mut violations = Vec::new();
    // Per (ring, slot): which plane it holds and the step that wrote it.
    let mut ring_state: Vec<Vec<Option<(usize, usize)>>> = vec![vec![None; slots]; n_rings];
    let mut accesses: Vec<Access> = Vec::new();

    let mut interval_start = 0;
    while interval_start < total_steps && violations.len() < MAX_PER_CONFIG {
        let interval_end = (interval_start + model.steps_per_barrier.max(1)).min(total_steps);
        accesses.clear();

        // Collect the interval's access sets straight from the schedule.
        for s in interval_start..interval_end {
            for (tid, &(b_lo, b_hi)) in bands.iter().enumerate() {
                if b_lo == b_hi {
                    continue;
                }
                for t in 1..=c {
                    // The schedule's plane window for (step, level):
                    // span planes starting at span·s − lag, clipped to
                    // the grid — the same arithmetic `planes_for_level`
                    // derives from `level_lag` and `span`.
                    let lag = (model.lag)(r, t);
                    let pos = span * s;
                    let z_hi = (pos + span).saturating_sub(lag).min(nz);
                    let z_lo = pos.saturating_sub(lag).min(z_hi);
                    for z in z_lo..z_hi {
                        let interior = z >= r && z + r < nz;
                        if t < c {
                            // Level t writes ring t-1: the stencil result
                            // for interior z, the copied source rim
                            // otherwise — either way the thread's whole
                            // owned band.
                            accesses.push(Access {
                                step: s,
                                tid,
                                level: t,
                                ring: t - 1,
                                slot: z % slots,
                                plane: z,
                                rows: (b_lo, b_hi),
                                write: true,
                            });
                        }
                        if t >= 2 && interior {
                            // Level t reads ring t-2, planes z±R, rows
                            // expanded by the stencil halo.
                            let lo = b_lo.saturating_sub(r);
                            let hi = (b_hi + r).min(ly);
                            for zz in z - r..=z + r {
                                accesses.push(Access {
                                    step: s,
                                    tid,
                                    level: t,
                                    ring: t - 2,
                                    slot: zz % slots,
                                    plane: zz,
                                    rows: (lo, hi),
                                    write: false,
                                });
                            }
                        }
                        // Level c commits to the destination grid:
                        // threads write disjoint owned bands of a buffer
                        // nothing reads during the chunk, so it cannot
                        // conflict and is not modeled.
                    }
                }
            }
        }

        // Check 1 — cross-thread overlap on a ring slot, grouped by
        // (ring, slot) to keep the pairwise work local.
        accesses.sort_by_key(|a| (a.ring, a.slot, a.step, a.tid));
        let mut g = 0;
        while g < accesses.len() && violations.len() < MAX_PER_CONFIG {
            let mut h = g + 1;
            while h < accesses.len()
                && accesses[h].ring == accesses[g].ring
                && accesses[h].slot == accesses[g].slot
            {
                h += 1;
            }
            'pairs: for x in g..h {
                for y in x + 1..h {
                    let (a, b) = (&accesses[x], &accesses[y]);
                    if a.tid == b.tid || !(a.write || b.write) {
                        continue;
                    }
                    if a.rows.0 < b.rows.1 && b.rows.0 < a.rows.1 {
                        violations.push(RaceViolation {
                            schedule: model.name.to_string(),
                            kind: ViolationKind::IntraStepOverlap,
                            config: *cfg,
                            step: a.step.max(b.step),
                            ring: a.ring,
                            slot: a.slot,
                            a: a.desc(),
                            b: Some(b.desc()),
                            detail: format!(
                                "schedule {}: threads {} and {} overlap on ring {} slot {} (planes {} / {}) with no barrier between steps {} and {}",
                                model.name, a.tid, b.tid, a.ring, a.slot, a.plane, b.plane, a.step, b.step
                            ),
                        });
                        if violations.len() >= MAX_PER_CONFIG {
                            break 'pairs;
                        }
                    }
                }
            }
            g = h;
        }

        // Check 2 — freshness: every read must find exactly the plane
        // one level lag behind, written in an earlier interval.
        for a in accesses.iter().filter(|a| !a.write) {
            if violations.len() >= MAX_PER_CONFIG {
                break;
            }
            let expect_step = (a.plane + (model.lag)(r, a.level - 1)) / span;
            let stale = match ring_state[a.ring][a.slot] {
                None => Some("slot never written".to_string()),
                Some((plane, step)) if plane != a.plane => Some(format!(
                    "slot holds plane {plane} (written at step {step}), reader needs plane {} written at step {expect_step}",
                    a.plane
                )),
                Some(_) => None,
            };
            if let Some(why) = stale {
                violations.push(RaceViolation {
                    schedule: model.name.to_string(),
                    kind: ViolationKind::StaleRead,
                    config: *cfg,
                    step: a.step,
                    ring: a.ring,
                    slot: a.slot,
                    a: a.desc(),
                    b: None,
                    detail: why,
                });
            }
        }

        // Check 3 + state update — apply the interval's writes in step
        // order; an overwrite whose old plane still has a scheduled
        // reader at or after this step is a premature reuse.
        for a in accesses.iter().filter(|a| a.write) {
            if let Some((old_plane, old_step)) = ring_state[a.ring][a.slot] {
                if old_plane != a.plane && violations.len() < MAX_PER_CONFIG {
                    if let Some(last) = last_read_step(cfg, model, a.ring, old_plane) {
                        if last >= a.step {
                            violations.push(RaceViolation {
                                schedule: model.name.to_string(),
                                kind: ViolationKind::PrematureReuse,
                                config: *cfg,
                                step: a.step,
                                ring: a.ring,
                                slot: a.slot,
                                a: a.desc(),
                                b: None,
                                detail: format!(
                                    "overwrites plane {old_plane} (written at step {old_step}) whose last scheduled reader runs at step {last} >= {}",
                                    a.step
                                ),
                            });
                        }
                    }
                }
            }
            ring_state[a.ring][a.slot] = Some((a.plane, a.step));
        }

        interval_start = interval_end;
    }
    violations
}

/// The last outer step at which any thread's schedule reads `plane` from
/// ring `ring`, or `None` if that ring is never read (ring `j` feeds
/// level `j+2`) or the plane is outside every reader's halo.
fn last_read_step(
    cfg: &ScheduleConfig,
    model: &ScheduleModel,
    ring: usize,
    plane: usize,
) -> Option<usize> {
    let t_reader = ring + 2;
    if t_reader > cfg.c || cfg.nz < 2 * cfg.r + 1 {
        return None;
    }
    // Level t reads planes [z-R, z+R] at interior z: plane is read while
    // z ∈ [plane-R, plane+R] ∩ [R, nz-R).
    let z_hi = (plane + cfg.r).min(cfg.nz - cfg.r - 1);
    let z_lo = plane.saturating_sub(cfg.r).max(cfg.r);
    if z_lo > z_hi {
        return None;
    }
    Some((z_hi + (model.lag)(cfg.r, t_reader)) / model.span.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_core::exec::outer_steps;

    fn cfg(r: usize, c: usize, threads: usize, nz: usize, ly: usize) -> ScheduleConfig {
        ScheduleConfig {
            r,
            c,
            threads,
            nz,
            ly,
        }
    }

    #[test]
    fn every_schedule_is_race_free_over_the_full_grid() {
        for model in ScheduleModel::all() {
            let verdict = check_grid(&model, &default_grid());
            assert!(verdict.configs_checked > 1000, "grid unexpectedly small");
            assert!(
                verdict.race_free(),
                "{} schedule flagged: {:?}",
                model.name,
                verdict.violations.first()
            );
        }
    }

    #[test]
    fn model_binds_the_engines_own_arithmetic() {
        // The default model must use the very functions tile_stream
        // runs, so the checked schedule cannot drift from the shipped
        // one.
        let m = ScheduleModel::engine();
        for r in 1..=3 {
            assert_eq!((m.slots)(r), threefive_core::exec::ring_slots(r));
            for t in 1..=4 {
                assert_eq!((m.lag)(r, t), threefive_core::exec::level_lag(r, t));
            }
            assert_eq!(10 + (m.lag)(r, 4), outer_steps(10, r, 4));
        }
        assert_eq!(m.steps_per_barrier, 1);
    }

    #[test]
    fn models_bind_each_schedules_own_arithmetic() {
        // Every model must use the very trait methods the engine
        // dispatches to, so no checked schedule can drift from the
        // shipped one.
        for kind in ScheduleKind::ALL {
            let m = ScheduleModel::for_kind(kind);
            let s = kind.schedule();
            assert_eq!(m.name, kind.as_str());
            assert_eq!(m.span, s.span());
            for r in 1..=3 {
                assert_eq!((m.slots)(r), s.ring_slots(r));
                for t in 1..=4 {
                    assert_eq!((m.lag)(r, t), s.level_lag(r, t));
                }
                assert_eq!(
                    (10 + (m.lag)(r, 4)).div_ceil(m.span),
                    s.outer_steps(10, r, 4)
                );
            }
            assert_eq!(m.steps_per_barrier, 1);
        }
    }

    /// Lag off by one: level `t` lags `2R(t-1) - 1` planes instead of
    /// `2R(t-1)` — the reader's halo now touches the plane its upstream
    /// level writes in the same step.
    fn lag_off_by_one(r: usize, t: usize) -> usize {
        level_lag(r, t).saturating_sub(1)
    }

    #[test]
    fn lag_off_by_one_yields_cross_thread_counterexample() {
        let model = ScheduleModel {
            lag: lag_off_by_one,
            ..ScheduleModel::engine()
        };
        let vs = check_schedule(&cfg(1, 2, 2, 8, 8), &model);
        assert!(
            vs.iter().any(|v| v.kind == ViolationKind::IntraStepOverlap),
            "expected a write/read overlap, got {vs:?}"
        );
        let v = vs
            .iter()
            .find(|v| v.kind == ViolationKind::IntraStepOverlap)
            .unwrap();
        let b = v.b.expect("overlap carries both accesses");
        assert_ne!(v.a.tid, b.tid);
        assert_eq!(v.a.plane, b.plane, "halo touches the freshly written plane");
    }

    #[test]
    fn lag_off_by_one_is_stale_even_single_threaded() {
        let model = ScheduleModel {
            lag: lag_off_by_one,
            ..ScheduleModel::engine()
        };
        let vs = check_schedule(&cfg(1, 2, 1, 8, 4), &model);
        assert!(
            vs.iter().any(|v| v.kind == ViolationKind::StaleRead),
            "reader needs a plane written in the same step: {vs:?}"
        );
    }

    /// Ring sized `3R` instead of `max(2R+2, 3R+1)`: the write head at
    /// `z+2R` lands on the slot the halo still reads.
    #[test]
    fn undersized_ring_is_premature_reuse() {
        let model = ScheduleModel {
            slots: |r| 3 * r,
            ..ScheduleModel::engine()
        };
        for r in [1, 2, 3] {
            let vs = check_schedule(&cfg(r, 3, 2, 13, 8), &model);
            assert!(
                vs.iter().any(|v| v.kind == ViolationKind::PrematureReuse),
                "r={r}: expected premature slot reuse, got {vs:?}"
            );
        }
    }

    #[test]
    fn severely_undersized_ring_also_reads_stale() {
        let model = ScheduleModel {
            slots: |r| 2 * r + 1,
            ..ScheduleModel::engine()
        };
        let vs = check_schedule(&cfg(1, 2, 1, 10, 4), &model);
        assert!(
            vs.iter()
                .any(|v| v.kind == ViolationKind::StaleRead
                    || v.kind == ViolationKind::PrematureReuse),
            "2R+1 slots cannot hold halo plus write head: {vs:?}"
        );
    }

    /// Two outer steps between barriers: the producer's step-`s+1` write
    /// races the consumer's step-`s+1` read of the step-`s` plane.
    #[test]
    fn missing_barrier_is_flagged() {
        let model = ScheduleModel {
            steps_per_barrier: 2,
            ..ScheduleModel::engine()
        };
        let vs = check_schedule(&cfg(1, 2, 2, 8, 8), &model);
        assert!(!vs.is_empty(), "merged barrier intervals must be flagged");
        assert!(vs.iter().any(
            |v| v.kind == ViolationKind::StaleRead || v.kind == ViolationKind::IntraStepOverlap
        ));
    }

    /// Lag off by one breaks every schedule at R=1, where each lag
    /// formula is tight: the reader's halo touches the plane its
    /// upstream level writes in the same step.
    #[test]
    fn lag_off_by_one_is_flagged_for_every_schedule() {
        let cases: [(ScheduleKind, LagFn); 3] = [
            (ScheduleKind::Lag35d, |r, t| {
                level_lag(r, t).saturating_sub(1)
            }),
            (ScheduleKind::Wavefront, |r, t| {
                WAVEFRONT.level_lag(r, t).saturating_sub(1)
            }),
            (ScheduleKind::Diamond, |r, t| {
                DIAMOND.level_lag(r, t).saturating_sub(1)
            }),
        ];
        for (kind, mlag) in cases {
            let model = ScheduleModel {
                lag: mlag,
                ..ScheduleModel::for_kind(kind)
            };
            let vs = check_schedule(&cfg(1, 2, 2, 12, 8), &model);
            assert!(!vs.is_empty(), "{kind}: lag-1 mutant must be flagged");
            assert!(
                vs.iter().all(|v| v.schedule == kind.as_str()),
                "{kind}: counterexamples must name the schedule under test: {vs:?}"
            );
        }
    }

    /// One ring slot too few breaks every schedule: the write head
    /// recycles the slot its last scheduled reader still needs.
    #[test]
    fn shrunk_ring_is_flagged_for_every_schedule() {
        let cases: [(ScheduleKind, SlotsFn); 3] = [
            (ScheduleKind::Lag35d, |r| ring_slots(r) - 1),
            (ScheduleKind::Wavefront, |r| WAVEFRONT.ring_slots(r) - 1),
            (ScheduleKind::Diamond, |r| DIAMOND.ring_slots(r) - 1),
        ];
        for (kind, mslots) in cases {
            let model = ScheduleModel {
                slots: mslots,
                ..ScheduleModel::for_kind(kind)
            };
            let vs = check_schedule(&cfg(1, 2, 2, 13, 8), &model);
            assert!(
                vs.iter().any(|v| v.kind == ViolationKind::PrematureReuse
                    || v.kind == ViolationKind::StaleRead),
                "{kind}: undersized ring must be flagged, got {vs:?}"
            );
            assert!(vs.iter().all(|v| v.schedule == kind.as_str()));
        }
    }

    /// Merged barrier intervals break every schedule: the producer's
    /// next-step write races the consumer's read of the previous plane.
    #[test]
    fn missing_barrier_is_flagged_for_every_schedule() {
        for kind in ScheduleKind::ALL {
            let model = ScheduleModel {
                steps_per_barrier: 2,
                ..ScheduleModel::for_kind(kind)
            };
            // nz large enough that even the span-4 diamond schedule runs
            // several outer steps, so at least two get merged.
            let vs = check_schedule(&cfg(1, 2, 2, 12, 8), &model);
            assert!(!vs.is_empty(), "{kind}: merged barriers must be flagged");
            assert!(vs.iter().all(|v| v.schedule == kind.as_str()));
        }
    }

    #[test]
    fn counterexample_json_round_trips() {
        let model = ScheduleModel {
            lag: lag_off_by_one,
            ..ScheduleModel::engine()
        };
        let vs = check_schedule(&cfg(1, 2, 2, 8, 8), &model);
        let v = vs.first().expect("mutant produces a counterexample");
        let back = RaceViolation::from_json(&v.to_json()).expect("round trip");
        assert_eq!(&back, v);
    }

    #[test]
    fn degenerate_configs_are_trivially_race_free() {
        let m = ScheduleModel::engine();
        // c=1: no rings at all.
        assert!(check_schedule(&cfg(2, 1, 8, 9, 5), &m).is_empty());
        // nz too small for an interior: no reads.
        assert!(check_schedule(&cfg(3, 4, 8, 3, 5), &m).is_empty());
        // more threads than rows: some bands empty.
        assert!(check_schedule(&cfg(1, 3, 8, 8, 3), &m).is_empty());
    }
}
