//! Schema-versioned `ANALYZE.json` report: lint findings + schedule
//! verdict in one machine-readable document.
//!
//! Mirrors the `BENCH_*.json` discipline from `threefive-bench`: the
//! report is hand-validated (no serde) and [`AnalyzeReport::validate_str`]
//! is the single source of truth for well-formedness, exercised by the
//! round-trip tests and by CI before archiving the artifact.

use crate::schedule::RaceViolation;
use threefive_bench::json::Json;

/// Version stamped into every report; bump on breaking schema changes.
///
/// v2: the schedule verdict covers every shipped schedule (lag35d,
/// wavefront, diamond); `schedule.per_schedule` records the per-schedule
/// config counts and each violation names its schedule.
///
/// v3: a nullable `model_check` section records the concurrency model
/// checker's per-model explored-state counts and the mutant-suite
/// verdicts (null when `--model-check` was not requested).
pub const ANALYZE_SCHEMA_VERSION: u64 = 3;

/// One lint finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `safety-comment`, `hot-path-alloc`).
    pub rule: String,
    /// Path of the offending file, relative to the analysis root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `None` if the finding counts against `--deny-findings`; otherwise
    /// how it was silenced (`"inline"` or `"baseline"`).
    pub suppressed: Option<String>,
}

impl Finding {
    /// `file:line` prefix used in terminal output.
    pub fn locus(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".into(), Json::str(&*self.rule)),
            ("file".into(), Json::str(&*self.file)),
            ("line".into(), Json::Num(self.line as f64)),
            ("message".into(), Json::str(&*self.message)),
            (
                "suppressed".into(),
                match &self.suppressed {
                    Some(s) => Json::str(&**s),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let suppressed = match v.get("suppressed") {
            Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("finding.suppressed: expected string or null".into()),
            None => return Err("finding: missing 'suppressed'".into()),
        };
        Ok(Self {
            rule: req_str(v, "rule")?,
            file: req_str(v, "file")?,
            line: req_u64(v, "line")? as usize,
            message: req_str(v, "message")?,
            suppressed,
        })
    }
}

/// Exploration statistics for one model-checked scenario (one entry per
/// model in `crates/modelcheck`'s catalog).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelCheckEntry {
    /// Model name (e.g. `barrier-wait-2x2`).
    pub name: String,
    /// Deadline semantics the model ran under (`never` or `nondet`).
    pub time_mode: String,
    /// Number of complete schedules explored.
    pub schedules: u64,
    /// Total scheduling decisions taken across all schedules.
    pub steps: u64,
    /// `true` iff the state space was exhausted within budget.
    pub complete: bool,
    /// `true` iff the preemption bound pruned any schedule.
    pub bounded: bool,
    /// `true` iff exploration found a counterexample.
    pub counterexample: bool,
}

impl ModelCheckEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&*self.name)),
            ("time_mode".into(), Json::str(&*self.time_mode)),
            ("schedules".into(), Json::Num(self.schedules as f64)),
            ("steps".into(), Json::Num(self.steps as f64)),
            ("complete".into(), Json::Bool(self.complete)),
            ("bounded".into(), Json::Bool(self.bounded)),
            ("counterexample".into(), Json::Bool(self.counterexample)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            name: req_str(v, "name")?,
            time_mode: req_str(v, "time_mode")?,
            schedules: req_u64(v, "schedules")?,
            steps: req_u64(v, "steps")?,
            complete: req_bool(v, "complete")?,
            bounded: req_bool(v, "bounded")?,
            counterexample: req_bool(v, "counterexample")?,
        })
    }
}

/// One seeded-bug verdict from the model checker's mutant suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutantEntry {
    /// Mutation slug (e.g. `drop-poison-check`).
    pub mutation: String,
    /// Model the mutant ran under.
    pub model: String,
    /// `true` iff exploration produced a counterexample (it must).
    pub caught: bool,
    /// Schedules explored before the verdict.
    pub schedules: u64,
}

impl MutantEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mutation".into(), Json::str(&*self.mutation)),
            ("model".into(), Json::str(&*self.model)),
            ("caught".into(), Json::Bool(self.caught)),
            ("schedules".into(), Json::Num(self.schedules as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            mutation: req_str(v, "mutation")?,
            model: req_str(v, "model")?,
            caught: req_bool(v, "caught")?,
            schedules: req_u64(v, "schedules")?,
        })
    }
}

/// The `model_check` report section: per-model explored-state counts and
/// the mutant-suite verdicts. `None` in [`AnalyzeReport`] when the run
/// did not request `--model-check` (serialized as JSON `null`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ModelCheckSection {
    /// One entry per catalog model, in catalog order.
    pub models: Vec<ModelCheckEntry>,
    /// One entry per seeded mutant (empty when the mutant suite was
    /// skipped).
    pub mutants: Vec<MutantEntry>,
}

impl ModelCheckSection {
    /// `true` iff every model explored cleanly (no counterexample) and
    /// every mutant that ran was caught.
    pub fn is_clean(&self) -> bool {
        self.models.iter().all(|m| !m.counterexample) && self.mutants.iter().all(|m| m.caught)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "models".into(),
                Json::Arr(self.models.iter().map(ModelCheckEntry::to_json).collect()),
            ),
            (
                "mutants".into(),
                Json::Arr(self.mutants.iter().map(MutantEntry::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let models = v
            .get("models")
            .and_then(Json::as_arr)
            .ok_or("model_check: missing 'models' array")?
            .iter()
            .map(ModelCheckEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mutants = v
            .get("mutants")
            .and_then(Json::as_arr)
            .ok_or("model_check: missing 'mutants' array")?
            .iter()
            .map(MutantEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { models, mutants })
    }
}

/// The complete output of one `threefive analyze` run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeReport {
    /// Schema version ([`ANALYZE_SCHEMA_VERSION`] when freshly produced).
    pub schema_version: u64,
    /// Number of `.rs` files the lint walked.
    pub files_scanned: usize,
    /// Every lint finding, suppressed or not, in walk order.
    pub findings: Vec<Finding>,
    /// Number of (R, dim_t, threads, nz, ly) schedule configs checked,
    /// summed over every schedule.
    pub configs_checked: usize,
    /// Per-schedule config counts, in the canonical schedule order.
    pub schedule_configs: Vec<(String, usize)>,
    /// Schedule-checker counterexamples (empty ⇔ certified race-free).
    pub violations: Vec<RaceViolation>,
    /// Concurrency model-checker verdicts; `None` when `--model-check`
    /// was not requested (serialized as `null`).
    pub model_check: Option<ModelCheckSection>,
}

impl AnalyzeReport {
    /// Findings that count against `--deny-findings`.
    pub fn active_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// `true` iff the tree is clean: no unsuppressed lint finding, a
    /// race-free schedule verdict, and (when the model checker ran) no
    /// concurrency counterexample and every mutant caught.
    pub fn is_clean(&self) -> bool {
        self.active_findings().next().is_none()
            && self.violations.is_empty()
            && self
                .model_check
                .as_ref()
                .is_none_or(ModelCheckSection::is_clean)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("tool".into(), Json::str("threefive-analyze")),
            (
                "lint".into(),
                Json::Obj(vec![
                    ("files_scanned".into(), Json::Num(self.files_scanned as f64)),
                    (
                        "findings".into(),
                        Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
                    ),
                ]),
            ),
            (
                "schedule".into(),
                Json::Obj(vec![
                    (
                        "configs_checked".into(),
                        Json::Num(self.configs_checked as f64),
                    ),
                    (
                        "per_schedule".into(),
                        Json::Obj(
                            self.schedule_configs
                                .iter()
                                .map(|(name, n)| (name.clone(), Json::Num(*n as f64)))
                                .collect(),
                        ),
                    ),
                    ("race_free".into(), Json::Bool(self.violations.is_empty())),
                    (
                        "violations".into(),
                        Json::Arr(self.violations.iter().map(RaceViolation::to_json).collect()),
                    ),
                ]),
            ),
            (
                "model_check".into(),
                match &self.model_check {
                    Some(mc) => mc.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Serializes to the `ANALYZE.json` wire format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses and schema-checks JSON text — the validation entry point.
    pub fn validate_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("parse error: {e}"))?;
        let schema_version = req_u64(&doc, "schema_version")?;
        if schema_version != ANALYZE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {schema_version} != {ANALYZE_SCHEMA_VERSION}"
            ));
        }
        let tool = req_str(&doc, "tool")?;
        if tool != "threefive-analyze" {
            return Err(format!("unexpected tool '{tool}'"));
        }
        let lint = doc.get("lint").ok_or("missing 'lint'")?;
        let findings = lint
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("lint: missing 'findings' array")?
            .iter()
            .map(Finding::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let schedule = doc.get("schedule").ok_or("missing 'schedule'")?;
        let schedule_configs = match schedule.get("per_schedule") {
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|n| (name.clone(), n as usize))
                        .ok_or_else(|| format!("per_schedule.{name}: expected integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("schedule: missing 'per_schedule' object".into()),
        };
        let race_free = match schedule.get("race_free") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("schedule: missing bool 'race_free'".into()),
        };
        let violations = schedule
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or("schedule: missing 'violations' array")?
            .iter()
            .map(RaceViolation::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if race_free != violations.is_empty() {
            return Err("schedule: 'race_free' contradicts 'violations'".into());
        }
        // v3: the key must be present so its absence is a schema error,
        // but null is a valid value (model checker not requested).
        let model_check = match doc.get("model_check") {
            Some(Json::Null) => None,
            Some(v) => Some(ModelCheckSection::from_json(v)?),
            None => return Err("missing 'model_check' (object or null)".into()),
        };
        Ok(Self {
            schema_version,
            files_scanned: req_u64(lint, "files_scanned")? as usize,
            findings,
            configs_checked: req_u64(schedule, "configs_checked")? as usize,
            schedule_configs,
            violations,
            model_check,
        })
    }
}

/// One `ANALYZE_baseline.json` entry: accept up to `allowed` findings of
/// `rule` in `file` as pre-existing (count-based, so unrelated line churn
/// does not invalidate the baseline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier the exception applies to.
    pub rule: String,
    /// Path relative to the analysis root.
    pub file: String,
    /// Maximum number of findings of this (rule, file) to suppress.
    pub allowed: usize,
}

/// Parses `ANALYZE_baseline.json` text.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("baseline parse error: {e}"))?;
    let version = req_u64(&doc, "schema_version")?;
    if version != ANALYZE_SCHEMA_VERSION {
        return Err(format!("baseline schema_version {version} unsupported"));
    }
    doc.get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing 'entries' array")?
        .iter()
        .map(|e| {
            Ok(BaselineEntry {
                rule: req_str(e, "rule")?,
                file: req_str(e, "file")?,
                allowed: req_u64(e, "allowed")? as usize,
            })
        })
        .collect()
}

/// Marks up to `allowed` findings per baseline (rule, file) pair as
/// `suppressed: "baseline"`, first-come in walk order.
pub fn apply_baseline(findings: &mut [Finding], baseline: &[BaselineEntry]) {
    let mut budget: Vec<(usize, usize)> = baseline.iter().map(|b| (0, b.allowed)).collect();
    for f in findings.iter_mut() {
        if f.suppressed.is_some() {
            continue;
        }
        for (b, (used, allowed)) in baseline.iter().zip(budget.iter_mut()) {
            if *used < *allowed && b.rule == f.rule && b.file == f.file {
                f.suppressed = Some("baseline".into());
                *used += 1;
                break;
            }
        }
    }
}

/// How much of one baseline entry's budget went unused in a run: the
/// entry allows `allowed` findings but only `used` matched. Nonzero
/// slack means the tree improved and the budget can ratchet down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineSlack {
    /// Rule identifier of the baseline entry.
    pub rule: String,
    /// File the entry applies to.
    pub file: String,
    /// The entry's current budget.
    pub allowed: usize,
    /// Findings that actually consumed the budget this run.
    pub used: usize,
}

impl BaselineSlack {
    /// Unused budget (`allowed - used`).
    pub fn slack(&self) -> usize {
        self.allowed - self.used
    }
}

/// Reports every baseline entry whose budget exceeds the findings it
/// suppressed in `findings` (which must already have been through
/// [`apply_baseline`]). Empty ⇔ the baseline is tight.
pub fn baseline_slack(findings: &[Finding], baseline: &[BaselineEntry]) -> Vec<BaselineSlack> {
    baseline
        .iter()
        .filter_map(|b| {
            let used = findings
                .iter()
                .filter(|f| {
                    f.rule == b.rule
                        && f.file == b.file
                        && f.suppressed.as_deref() == Some("baseline")
                })
                .count();
            (used < b.allowed).then(|| BaselineSlack {
                rule: b.rule.clone(),
                file: b.file.clone(),
                allowed: b.allowed,
                used,
            })
        })
        .collect()
}

/// The `--write-baseline` ratchet: lowers every entry's budget to the
/// number of findings it suppressed this run and drops entries that
/// suppressed nothing. Budgets only ever go *down* — a new finding is
/// never absorbed into the baseline by rewriting it, it has to be fixed
/// or explicitly suppressed inline.
pub fn tighten_baseline(baseline: &[BaselineEntry], findings: &[Finding]) -> Vec<BaselineEntry> {
    baseline
        .iter()
        .filter_map(|b| {
            let used = findings
                .iter()
                .filter(|f| {
                    f.rule == b.rule
                        && f.file == b.file
                        && f.suppressed.as_deref() == Some("baseline")
                })
                .count();
            let allowed = used.min(b.allowed);
            (allowed > 0).then(|| BaselineEntry {
                rule: b.rule.clone(),
                file: b.file.clone(),
                allowed,
            })
        })
        .collect()
}

/// Serializes baseline entries to the `ANALYZE_baseline.json` format
/// (round-trips through [`parse_baseline`]).
pub fn baseline_to_json_string(entries: &[BaselineEntry]) -> String {
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(ANALYZE_SCHEMA_VERSION as f64),
        ),
        (
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("rule".into(), Json::str(&*b.rule)),
                            ("file".into(), Json::str(&*b.file)),
                            ("allowed".into(), Json::Num(b.allowed as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer '{key}'"))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line: 7,
            message: "m".into(),
            suppressed: None,
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = AnalyzeReport {
            schema_version: ANALYZE_SCHEMA_VERSION,
            files_scanned: 42,
            findings: vec![
                finding("safety-comment", "crates/x/src/lib.rs"),
                Finding {
                    suppressed: Some("inline".into()),
                    ..finding("hot-path-alloc", "crates/y/src/lib.rs")
                },
            ],
            configs_checked: 9,
            schedule_configs: vec![
                ("lag35d".into(), 3),
                ("wavefront".into(), 3),
                ("diamond".into(), 3),
            ],
            violations: Vec::new(),
            model_check: None,
        };
        let text = report.to_json_string();
        let back = AnalyzeReport::validate_str(&text).expect("schema-valid");
        assert_eq!(back, report);
        assert_eq!(back.active_findings().count(), 1);
        assert!(!back.is_clean());
    }

    #[test]
    fn model_check_section_round_trips_and_gates_cleanliness() {
        let section = ModelCheckSection {
            models: vec![ModelCheckEntry {
                name: "barrier-wait-2x2".into(),
                time_mode: "never".into(),
                schedules: 332,
                steps: 14880,
                complete: true,
                bounded: true,
                counterexample: false,
            }],
            mutants: vec![MutantEntry {
                mutation: "drop-poison-check".into(),
                model: "barrier-poison-mid".into(),
                caught: true,
                schedules: 17,
            }],
        };
        let report = AnalyzeReport {
            schema_version: ANALYZE_SCHEMA_VERSION,
            files_scanned: 1,
            findings: Vec::new(),
            configs_checked: 1,
            schedule_configs: vec![("lag35d".into(), 1)],
            violations: Vec::new(),
            model_check: Some(section),
        };
        let back = AnalyzeReport::validate_str(&report.to_json_string()).expect("schema-valid");
        assert_eq!(back, report);
        assert!(back.is_clean());

        // A counterexample or an escaped mutant makes the tree dirty.
        let mut cex = report.clone();
        cex.model_check.as_mut().unwrap().models[0].counterexample = true;
        assert!(!cex.is_clean());
        let mut escaped = report.clone();
        escaped.model_check.as_mut().unwrap().mutants[0].caught = false;
        assert!(!escaped.is_clean());
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(AnalyzeReport::validate_str("{}").is_err());
        assert!(AnalyzeReport::validate_str("not json").is_err());
        // race_free must agree with the violations list.
        let lie = r#"{"schema_version":3,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"per_schedule":{"lag35d":1},
            "race_free":false,"violations":[]},"model_check":null}"#;
        assert!(AnalyzeReport::validate_str(lie).is_err());
        // v2 requires the per-schedule config counts.
        let missing = r#"{"schema_version":3,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"race_free":true,"violations":[]},
            "model_check":null}"#;
        assert!(AnalyzeReport::validate_str(missing).is_err());
        // v3 requires the model_check key (null is fine, absence is not).
        let no_mc = r#"{"schema_version":3,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"per_schedule":{"lag35d":1},
            "race_free":true,"violations":[]}}"#;
        assert!(AnalyzeReport::validate_str(no_mc).is_err());
        // Old schema versions are rejected outright.
        let v2 = r#"{"schema_version":2,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"per_schedule":{"lag35d":1},
            "race_free":true,"violations":[]}}"#;
        assert!(AnalyzeReport::validate_str(v2).is_err());
    }

    #[test]
    fn baseline_suppresses_by_count() {
        let mut fs = vec![
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "b.rs"),
        ];
        let baseline = vec![BaselineEntry {
            rule: "hot-path-sync".into(),
            file: "a.rs".into(),
            allowed: 1,
        }];
        apply_baseline(&mut fs, &baseline);
        assert_eq!(fs[0].suppressed.as_deref(), Some("baseline"));
        assert_eq!(fs[1].suppressed, None, "second finding exceeds budget");
        assert_eq!(fs[2].suppressed, None, "different file unaffected");
    }

    #[test]
    fn baseline_parses_and_rejects_bad_versions() {
        let text = r#"{"schema_version":3,"entries":[
            {"rule":"safety-comment","file":"x.rs","allowed":2}]}"#;
        let entries = parse_baseline(text).expect("valid baseline");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].allowed, 2);
        assert!(parse_baseline(r#"{"schema_version":9,"entries":[]}"#).is_err());
    }

    #[test]
    fn ratchet_only_tightens_and_reports_slack() {
        let baseline = vec![
            BaselineEntry {
                rule: "hot-path-sync".into(),
                file: "a.rs".into(),
                allowed: 3,
            },
            BaselineEntry {
                rule: "safety-comment".into(),
                file: "b.rs".into(),
                allowed: 2,
            },
        ];
        // One a.rs finding remains; b.rs is fully fixed.
        let mut fs = vec![finding("hot-path-sync", "a.rs")];
        apply_baseline(&mut fs, &baseline);
        assert_eq!(fs[0].suppressed.as_deref(), Some("baseline"));

        let slack = baseline_slack(&fs, &baseline);
        assert_eq!(slack.len(), 2);
        assert_eq!(
            (slack[0].allowed, slack[0].used, slack[0].slack()),
            (3, 1, 2)
        );
        assert_eq!((slack[1].allowed, slack[1].used), (2, 0));

        // Tightening lowers a.rs to 1 and drops b.rs entirely.
        let tight = tighten_baseline(&baseline, &fs);
        assert_eq!(
            tight,
            vec![BaselineEntry {
                rule: "hot-path-sync".into(),
                file: "a.rs".into(),
                allowed: 1,
            }]
        );
        // Re-tightening a tight baseline is a fixpoint.
        assert_eq!(tighten_baseline(&tight, &fs), tight);
        // The written form round-trips through the parser.
        let text = baseline_to_json_string(&tight);
        assert_eq!(parse_baseline(&text).expect("round-trip"), tight);

        // Budgets never go up: even if findings somehow exceeded the
        // budget, the entry is clamped at its previous allowance.
        let mut many = vec![
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "a.rs"),
        ];
        let small = vec![BaselineEntry {
            rule: "hot-path-sync".into(),
            file: "a.rs".into(),
            allowed: 2,
        }];
        apply_baseline(&mut many, &small);
        let kept = tighten_baseline(&small, &many);
        assert_eq!(kept[0].allowed, 2, "ratchet must never raise a budget");
    }
}
