//! Schema-versioned `ANALYZE.json` report: lint findings + schedule
//! verdict in one machine-readable document.
//!
//! Mirrors the `BENCH_*.json` discipline from `threefive-bench`: the
//! report is hand-validated (no serde) and [`AnalyzeReport::validate_str`]
//! is the single source of truth for well-formedness, exercised by the
//! round-trip tests and by CI before archiving the artifact.

use crate::schedule::RaceViolation;
use threefive_bench::json::Json;

/// Version stamped into every report; bump on breaking schema changes.
///
/// v2: the schedule verdict covers every shipped schedule (lag35d,
/// wavefront, diamond); `schedule.per_schedule` records the per-schedule
/// config counts and each violation names its schedule.
pub const ANALYZE_SCHEMA_VERSION: u64 = 2;

/// One lint finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `safety-comment`, `hot-path-alloc`).
    pub rule: String,
    /// Path of the offending file, relative to the analysis root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `None` if the finding counts against `--deny-findings`; otherwise
    /// how it was silenced (`"inline"` or `"baseline"`).
    pub suppressed: Option<String>,
}

impl Finding {
    /// `file:line` prefix used in terminal output.
    pub fn locus(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".into(), Json::str(&*self.rule)),
            ("file".into(), Json::str(&*self.file)),
            ("line".into(), Json::Num(self.line as f64)),
            ("message".into(), Json::str(&*self.message)),
            (
                "suppressed".into(),
                match &self.suppressed {
                    Some(s) => Json::str(&**s),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let suppressed = match v.get("suppressed") {
            Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("finding.suppressed: expected string or null".into()),
            None => return Err("finding: missing 'suppressed'".into()),
        };
        Ok(Self {
            rule: req_str(v, "rule")?,
            file: req_str(v, "file")?,
            line: req_u64(v, "line")? as usize,
            message: req_str(v, "message")?,
            suppressed,
        })
    }
}

/// The complete output of one `threefive analyze` run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeReport {
    /// Schema version ([`ANALYZE_SCHEMA_VERSION`] when freshly produced).
    pub schema_version: u64,
    /// Number of `.rs` files the lint walked.
    pub files_scanned: usize,
    /// Every lint finding, suppressed or not, in walk order.
    pub findings: Vec<Finding>,
    /// Number of (R, dim_t, threads, nz, ly) schedule configs checked,
    /// summed over every schedule.
    pub configs_checked: usize,
    /// Per-schedule config counts, in the canonical schedule order.
    pub schedule_configs: Vec<(String, usize)>,
    /// Schedule-checker counterexamples (empty ⇔ certified race-free).
    pub violations: Vec<RaceViolation>,
}

impl AnalyzeReport {
    /// Findings that count against `--deny-findings`.
    pub fn active_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// `true` iff the tree is clean: no unsuppressed lint finding and a
    /// race-free schedule verdict.
    pub fn is_clean(&self) -> bool {
        self.active_findings().next().is_none() && self.violations.is_empty()
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("tool".into(), Json::str("threefive-analyze")),
            (
                "lint".into(),
                Json::Obj(vec![
                    ("files_scanned".into(), Json::Num(self.files_scanned as f64)),
                    (
                        "findings".into(),
                        Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
                    ),
                ]),
            ),
            (
                "schedule".into(),
                Json::Obj(vec![
                    (
                        "configs_checked".into(),
                        Json::Num(self.configs_checked as f64),
                    ),
                    (
                        "per_schedule".into(),
                        Json::Obj(
                            self.schedule_configs
                                .iter()
                                .map(|(name, n)| (name.clone(), Json::Num(*n as f64)))
                                .collect(),
                        ),
                    ),
                    ("race_free".into(), Json::Bool(self.violations.is_empty())),
                    (
                        "violations".into(),
                        Json::Arr(self.violations.iter().map(RaceViolation::to_json).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// Serializes to the `ANALYZE.json` wire format.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses and schema-checks JSON text — the validation entry point.
    pub fn validate_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("parse error: {e}"))?;
        let schema_version = req_u64(&doc, "schema_version")?;
        if schema_version != ANALYZE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {schema_version} != {ANALYZE_SCHEMA_VERSION}"
            ));
        }
        let tool = req_str(&doc, "tool")?;
        if tool != "threefive-analyze" {
            return Err(format!("unexpected tool '{tool}'"));
        }
        let lint = doc.get("lint").ok_or("missing 'lint'")?;
        let findings = lint
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("lint: missing 'findings' array")?
            .iter()
            .map(Finding::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let schedule = doc.get("schedule").ok_or("missing 'schedule'")?;
        let schedule_configs = match schedule.get("per_schedule") {
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|n| (name.clone(), n as usize))
                        .ok_or_else(|| format!("per_schedule.{name}: expected integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("schedule: missing 'per_schedule' object".into()),
        };
        let race_free = match schedule.get("race_free") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("schedule: missing bool 'race_free'".into()),
        };
        let violations = schedule
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or("schedule: missing 'violations' array")?
            .iter()
            .map(RaceViolation::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if race_free != violations.is_empty() {
            return Err("schedule: 'race_free' contradicts 'violations'".into());
        }
        Ok(Self {
            schema_version,
            files_scanned: req_u64(lint, "files_scanned")? as usize,
            findings,
            configs_checked: req_u64(schedule, "configs_checked")? as usize,
            schedule_configs,
            violations,
        })
    }
}

/// One `ANALYZE_baseline.json` entry: accept up to `allowed` findings of
/// `rule` in `file` as pre-existing (count-based, so unrelated line churn
/// does not invalidate the baseline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier the exception applies to.
    pub rule: String,
    /// Path relative to the analysis root.
    pub file: String,
    /// Maximum number of findings of this (rule, file) to suppress.
    pub allowed: usize,
}

/// Parses `ANALYZE_baseline.json` text.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("baseline parse error: {e}"))?;
    let version = req_u64(&doc, "schema_version")?;
    if version != ANALYZE_SCHEMA_VERSION {
        return Err(format!("baseline schema_version {version} unsupported"));
    }
    doc.get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing 'entries' array")?
        .iter()
        .map(|e| {
            Ok(BaselineEntry {
                rule: req_str(e, "rule")?,
                file: req_str(e, "file")?,
                allowed: req_u64(e, "allowed")? as usize,
            })
        })
        .collect()
}

/// Marks up to `allowed` findings per baseline (rule, file) pair as
/// `suppressed: "baseline"`, first-come in walk order.
pub fn apply_baseline(findings: &mut [Finding], baseline: &[BaselineEntry]) {
    let mut budget: Vec<(usize, usize)> = baseline.iter().map(|b| (0, b.allowed)).collect();
    for f in findings.iter_mut() {
        if f.suppressed.is_some() {
            continue;
        }
        for (b, (used, allowed)) in baseline.iter().zip(budget.iter_mut()) {
            if *used < *allowed && b.rule == f.rule && b.file == f.file {
                f.suppressed = Some("baseline".into());
                *used += 1;
                break;
            }
        }
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line: 7,
            message: "m".into(),
            suppressed: None,
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = AnalyzeReport {
            schema_version: ANALYZE_SCHEMA_VERSION,
            files_scanned: 42,
            findings: vec![
                finding("safety-comment", "crates/x/src/lib.rs"),
                Finding {
                    suppressed: Some("inline".into()),
                    ..finding("hot-path-alloc", "crates/y/src/lib.rs")
                },
            ],
            configs_checked: 9,
            schedule_configs: vec![
                ("lag35d".into(), 3),
                ("wavefront".into(), 3),
                ("diamond".into(), 3),
            ],
            violations: Vec::new(),
        };
        let text = report.to_json_string();
        let back = AnalyzeReport::validate_str(&text).expect("schema-valid");
        assert_eq!(back, report);
        assert_eq!(back.active_findings().count(), 1);
        assert!(!back.is_clean());
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(AnalyzeReport::validate_str("{}").is_err());
        assert!(AnalyzeReport::validate_str("not json").is_err());
        // race_free must agree with the violations list.
        let lie = r#"{"schema_version":2,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"per_schedule":{"lag35d":1},
            "race_free":false,"violations":[]}}"#;
        assert!(AnalyzeReport::validate_str(lie).is_err());
        // v2 requires the per-schedule config counts.
        let missing = r#"{"schema_version":2,"tool":"threefive-analyze",
            "lint":{"files_scanned":1,"findings":[]},
            "schedule":{"configs_checked":1,"race_free":true,"violations":[]}}"#;
        assert!(AnalyzeReport::validate_str(missing).is_err());
    }

    #[test]
    fn baseline_suppresses_by_count() {
        let mut fs = vec![
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "a.rs"),
            finding("hot-path-sync", "b.rs"),
        ];
        let baseline = vec![BaselineEntry {
            rule: "hot-path-sync".into(),
            file: "a.rs".into(),
            allowed: 1,
        }];
        apply_baseline(&mut fs, &baseline);
        assert_eq!(fs[0].suppressed.as_deref(), Some("baseline"));
        assert_eq!(fs[1].suppressed, None, "second finding exceeds budget");
        assert_eq!(fs[2].suppressed, None, "different file unaffected");
    }

    #[test]
    fn baseline_parses_and_rejects_bad_versions() {
        let text = r#"{"schema_version":2,"entries":[
            {"rule":"safety-comment","file":"x.rs","allowed":2}]}"#;
        let entries = parse_baseline(text).expect("valid baseline");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].allowed, 2);
        assert!(parse_baseline(r#"{"schema_version":9,"entries":[]}"#).is_err());
    }
}
