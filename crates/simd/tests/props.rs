//! Property-based tests: every SIMD implementation must be bit-exact
//! with scalar IEEE-754 arithmetic lane for lane — the foundation of the
//! repository's executor-equivalence guarantees.

use proptest::prelude::*;
use threefive_simd::{Packed, SimdReal};

#[cfg(target_arch = "x86_64")]
use threefive_simd::{F32x4, F64x2};

fn finite_f32() -> impl Strategy<Value = f32> {
    // Values spanning many magnitudes, no NaN/inf (bit-compare friendly).
    prop_oneof![
        -1.0e6f32..1.0e6f32,
        -1.0f32..1.0f32,
        Just(0.0f32),
        Just(-0.0f32),
        Just(1.5e-20f32),
    ]
}

proptest! {
    #[test]
    fn packed_ops_match_scalar_lanewise(
        a in prop::array::uniform4(finite_f32()),
        b in prop::array::uniform4(finite_f32()),
    ) {
        let va = Packed::<f32, 4>::from_array(a);
        let vb = Packed::<f32, 4>::from_array(b);
        for i in 0..4 {
            prop_assert_eq!((va + vb).lane(i).to_bits(), (a[i] + b[i]).to_bits());
            prop_assert_eq!((va - vb).lane(i).to_bits(), (a[i] - b[i]).to_bits());
            prop_assert_eq!((va * vb).lane(i).to_bits(), (a[i] * b[i]).to_bits());
            prop_assert_eq!((-va).lane(i).to_bits(), (-a[i]).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse_ops_match_packed_bitwise(
        a in prop::array::uniform4(finite_f32()),
        b in prop::array::uniform4(finite_f32()),
    ) {
        let sa = F32x4::loadu(&a);
        let sb = F32x4::loadu(&b);
        let pa = Packed::<f32, 4>::from_array(a);
        let pb = Packed::<f32, 4>::from_array(b);
        for i in 0..4 {
            prop_assert_eq!((sa + sb).lane(i).to_bits(), (pa + pb).lane(i).to_bits());
            prop_assert_eq!((sa - sb).lane(i).to_bits(), (pa - pb).lane(i).to_bits());
            prop_assert_eq!((sa * sb).lane(i).to_bits(), (pa * pb).lane(i).to_bits());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse_division_matches_scalar(
        a in prop::array::uniform2(-1.0e6f64..1.0e6f64),
        b in prop::array::uniform2(prop_oneof![0.5f64..100.0, -100.0f64..-0.5]),
    ) {
        let sa = F64x2::loadu(&a);
        let sb = F64x2::loadu(&b);
        for i in 0..2 {
            prop_assert_eq!((sa / sb).lane(i).to_bits(), (a[i] / b[i]).to_bits());
        }
    }

    #[test]
    fn loadu_storeu_round_trip_any_offset(
        data in prop::collection::vec(finite_f32(), 16..64),
        off in 0usize..8,
    ) {
        let off = off.min(data.len() - 8);
        let v = Packed::<f32, 8>::loadu(&data[off..]);
        let mut out = vec![0.0f32; 8];
        v.storeu(&mut out);
        for i in 0..8 {
            prop_assert_eq!(out[i].to_bits(), data[off + i].to_bits());
        }
    }

    /// The stencil expression evaluated via SIMD equals the scalar one
    /// bit-for-bit when the association order is preserved.
    #[test]
    fn stencil_expression_simd_scalar_equivalence(
        vals in prop::array::uniform32(finite_f32()),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        type V = Packed<f32, 4>;
        // Seven "rows" of 4 lanes.
        let rows: Vec<V> = vals.chunks(4).take(7).map(V::loadu).collect();
        let (c, xm, xp, ym, yp, zm, zp) =
            (rows[0], rows[1], rows[2], rows[3], rows[4], rows[5], rows[6]);
        let sum = ((((xm + xp) + ym) + yp) + zm) + zp;
        let out = V::splat(alpha) * c + V::splat(beta) * sum;
        for i in 0..4 {
            let s = ((((vals[4 + i] + vals[8 + i]) + vals[12 + i]) + vals[16 + i])
                + vals[20 + i])
                + vals[24 + i];
            let want = alpha * vals[i] + beta * s;
            prop_assert_eq!(out.lane(i).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn reduce_sum_is_left_to_right(v in prop::array::uniform4(finite_f32())) {
        let p = Packed::<f32, 4>::from_array(v);
        let want = ((v[0] + v[1]) + v[2]) + v[3];
        prop_assert_eq!(p.reduce_sum().to_bits(), want.to_bits());
    }
}
