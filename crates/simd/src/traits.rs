//! The lane-vector trait stencil kernels are generic over.

use std::ops::{Add, Div, Mul, Neg, Sub};
use threefive_grid::Real;

/// A short vector of [`Real`] lanes with element-wise arithmetic.
///
/// Implementations guarantee:
/// * `LANES` is a power of two;
/// * arithmetic is IEEE-754 per lane, identical to scalar ops on the same
///   operands (`mul_add` excepted — see the crate docs);
/// * `loadu`/`storeu` accept any alignment.
pub trait SimdReal:
    Copy
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Scalar lane type.
    type Scalar: Real;
    /// Lane count.
    const LANES: usize;

    /// Broadcasts one scalar into every lane.
    fn splat(v: Self::Scalar) -> Self;

    /// Loads `LANES` values from the front of `src` (any alignment).
    ///
    /// # Panics
    /// Panics if `src.len() < LANES`.
    fn loadu(src: &[Self::Scalar]) -> Self;

    /// Stores the lanes to the front of `dst` (any alignment).
    ///
    /// # Panics
    /// Panics if `dst.len() < LANES`.
    fn storeu(self, dst: &mut [Self::Scalar]);

    /// `self * a + b`. May or may not be fused; see the crate docs.
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// Horizontal sum of the lanes (left-to-right order).
    fn reduce_sum(self) -> Self::Scalar;

    /// Extracts lane `i`.
    ///
    /// # Panics
    /// Panics if `i >= LANES`.
    fn lane(self, i: usize) -> Self::Scalar;

    /// All-zero vector.
    fn zero() -> Self {
        Self::splat(Self::Scalar::ZERO)
    }
}

/// Length of the vectorizable prefix of a loop of `len` iterations: the
/// largest multiple of `V::LANES` not exceeding `len`. Indices
/// `[0, prefix)` are processed `LANES` at a time, `[prefix, len)` by the
/// scalar tail.
#[inline(always)]
pub fn vector_prefix_len<V: SimdReal>(len: usize) -> usize {
    len - len % V::LANES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packed;

    #[test]
    fn vector_prefix_is_largest_lane_multiple() {
        type V = Packed<f32, 4>;
        assert_eq!(vector_prefix_len::<V>(0), 0);
        assert_eq!(vector_prefix_len::<V>(3), 0);
        assert_eq!(vector_prefix_len::<V>(4), 4);
        assert_eq!(vector_prefix_len::<V>(7), 4);
        assert_eq!(vector_prefix_len::<V>(8), 8);
        assert_eq!(vector_prefix_len::<V>(9), 8);
        type W = Packed<f64, 2>;
        assert_eq!(vector_prefix_len::<W>(5), 4);
    }
}
