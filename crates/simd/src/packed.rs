//! Portable array-backed vector type.
//!
//! `Packed<T, N>` keeps the lane loop in `#[inline(always)]` bodies over a
//! fixed-size array; at `opt-level=3` LLVM reliably turns these into packed
//! vector instructions for N ∈ {2, 4, 8}. It is also the reference
//! implementation the intrinsic types are tested against.

use std::ops::{Add, Div, Mul, Neg, Sub};
use threefive_grid::Real;

use crate::SimdReal;

/// `N` lanes of `T` with element-wise arithmetic.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Packed<T: Real, const N: usize>(pub [T; N]);

impl<T: Real, const N: usize> Packed<T, N> {
    /// Builds a vector from an array of lanes.
    #[inline(always)]
    pub const fn from_array(a: [T; N]) -> Self {
        Self(a)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [T; N] {
        self.0
    }

    #[inline(always)]
    fn zip(self, o: Self, f: impl Fn(T, T) -> T) -> Self {
        let mut out = self.0;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(self.0[i], o.0[i]);
        }
        Self(out)
    }
}

macro_rules! packed_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<T: Real, const N: usize> $trait for Packed<T, N> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a $op b)
            }
        }
    };
}

packed_binop!(Add, add, +);
packed_binop!(Sub, sub, -);
packed_binop!(Mul, mul, *);
packed_binop!(Div, div, /);

impl<T: Real, const N: usize> Neg for Packed<T, N> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut out = self.0;
        for v in &mut out {
            *v = -*v;
        }
        Self(out)
    }
}

impl<T: Real, const N: usize> SimdReal for Packed<T, N> {
    type Scalar = T;
    const LANES: usize = N;

    #[inline(always)]
    fn splat(v: T) -> Self {
        Self([v; N])
    }

    #[inline(always)]
    fn loadu(src: &[T]) -> Self {
        assert!(src.len() >= N, "Packed::loadu: slice too short");
        let mut out = [T::ZERO; N];
        out.copy_from_slice(&src[..N]);
        Self(out)
    }

    #[inline(always)]
    fn storeu(self, dst: &mut [T]) {
        assert!(dst.len() >= N, "Packed::storeu: slice too short");
        dst[..N].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        let mut out = self.0;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        Self(out)
    }

    #[inline(always)]
    fn reduce_sum(self) -> T {
        // Fold the lanes themselves (no zero seed): `+0.0 + -0.0` is
        // `+0.0`, so seeding would diverge from a pure left-to-right sum
        // on signed zeros.
        let mut acc = self.0[0];
        for v in &self.0[1..] {
            acc += *v;
        }
        acc
    }

    #[inline(always)]
    fn lane(self, i: usize) -> T {
        self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = Packed<f32, 4>;
    type W = Packed<f64, 8>;

    #[test]
    fn arithmetic_is_lanewise() {
        let a = V::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = V::from_array([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).to_array(), [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).to_array(), [10.0; 4]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn loadu_storeu_any_offset() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        for off in 0..4 {
            let v = W::loadu(&data[off..]);
            let mut out = [0.0f64; 9];
            v.storeu(&mut out[1..]);
            assert_eq!(&out[1..9], &data[off..off + 8]);
        }
    }

    #[test]
    #[should_panic(expected = "slice too short")]
    fn loadu_rejects_short_slice() {
        let _ = V::loadu(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn splat_and_reduce() {
        let v = V::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 4]);
        assert_eq!(v.reduce_sum(), 10.0);
        assert_eq!(v.lane(3), 2.5);
    }

    #[test]
    fn zero_is_additive_identity() {
        let a = V::from_array([1.0, -2.0, 3.5, 0.25]);
        assert_eq!((a + V::zero()).to_array(), a.to_array());
    }

    #[test]
    fn mul_add_matches_scalar_mul_add() {
        let a = V::from_array([1.5, 2.5, 3.5, 4.5]);
        let b = V::from_array([2.0, 3.0, 4.0, 5.0]);
        let c = V::from_array([0.5, 0.5, 0.5, 0.5]);
        let r = a.mul_add(b, c).to_array();
        for (i, &ri) in r.iter().enumerate() {
            assert_eq!(ri, a.0[i].mul_add(b.0[i], c.0[i]));
        }
    }
}
