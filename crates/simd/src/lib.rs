//! SIMD abstraction for the `threefive` stencil kernels.
//!
//! The paper exploits data-level parallelism by processing 4 SP (or 2 DP)
//! grid elements per SSE instruction (§VI-A). This crate provides:
//!
//! * [`SimdReal`] — the lane-vector trait the kernels are generic over;
//! * [`Packed<T, N>`](Packed) — a portable `[T; N]` implementation whose
//!   `#[inline(always)]` lane loops autovectorize on any target;
//! * [`F32x4`] / [`F64x2`] — genuine SSE2 intrinsic implementations on
//!   x86-64 (SSE2 is part of the x86-64 baseline, so no runtime detection
//!   is needed);
//! * convenience aliases [`NativeF32`] / [`NativeF64`] picking the best
//!   implementation for the build target.
//!
//! # Determinism contract
//!
//! Every implementation performs `+`, `-`, `*`, `/` as IEEE-754 operations
//! in lane order, and `mul_add` is **documented as fused-or-not per type**:
//! `Packed` uses the scalar `mul_add` (fused where the target has FMA), the
//! SSE2 types use separate multiply and add (SSE2 has no FMA). Kernels that
//! must be bit-identical across scalar and SIMD paths therefore avoid
//! `mul_add` and use explicit `a * b + c`, which is bit-exact across all
//! implementations.

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod packed;
#[cfg(target_arch = "x86_64")]
mod sse;
mod traits;

pub use packed::Packed;
pub use traits::{vector_prefix_len, SimdReal};

#[cfg(target_arch = "x86_64")]
pub use sse::{F32x4, F64x2};

/// Portable 8-lane single-precision vector (autovectorized).
pub type F32x8 = Packed<f32, 8>;
/// Portable 4-lane double-precision vector (autovectorized).
pub type F64x4 = Packed<f64, 4>;

/// Best 4-lane SP vector for the build target.
#[cfg(target_arch = "x86_64")]
pub type NativeF32 = F32x4;
/// Best 4-lane SP vector for the build target.
#[cfg(not(target_arch = "x86_64"))]
pub type NativeF32 = Packed<f32, 4>;

/// Best 2-lane DP vector for the build target.
#[cfg(target_arch = "x86_64")]
pub type NativeF64 = F64x2;
/// Best 2-lane DP vector for the build target.
#[cfg(not(target_arch = "x86_64"))]
pub type NativeF64 = Packed<f64, 2>;

/// Description of the SIMD backing selected for this build, for reports.
pub fn backend_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        "sse2 (x86-64 baseline) + autovectorized wide types"
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable autovectorized"
    }
}
