//! SSE2 intrinsic vector types.
//!
//! SSE2 is part of the x86-64 baseline ABI, so these intrinsics are always
//! available on this architecture and the wrappers need no runtime feature
//! detection. They mirror the paper's CPU implementation, which processes
//! 4 SP / 2 DP grid elements per SSE instruction. Unaligned variants are
//! used for loads/stores because stencil shifts (`x ± 1`) are inherently
//! unaligned (§VI-A: "we did require unaligned load/store instructions").

#![allow(unsafe_code)]

use std::arch::x86_64::*;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::SimdReal;

/// Four `f32` lanes in an `%xmm` register (SSE2).
#[derive(Clone, Copy, Debug)]
#[repr(transparent)]
pub struct F32x4(__m128);

/// Two `f64` lanes in an `%xmm` register (SSE2).
#[derive(Clone, Copy, Debug)]
#[repr(transparent)]
pub struct F64x2(__m128d);

macro_rules! binop {
    ($ty:ident, $trait:ident, $method:ident, $intr:ident) => {
        impl $trait for $ty {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                // SAFETY: SSE2 is unconditionally available on x86-64.
                Self(unsafe { $intr(self.0, rhs.0) })
            }
        }
    };
}

binop!(F32x4, Add, add, _mm_add_ps);
binop!(F32x4, Sub, sub, _mm_sub_ps);
binop!(F32x4, Mul, mul, _mm_mul_ps);
binop!(F32x4, Div, div, _mm_div_ps);
binop!(F64x2, Add, add, _mm_add_pd);
binop!(F64x2, Sub, sub, _mm_sub_pd);
binop!(F64x2, Mul, mul, _mm_mul_pd);
binop!(F64x2, Div, div, _mm_div_pd);

impl Neg for F32x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::splat(0.0) - self
    }
}

impl Neg for F64x2 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::splat(0.0) - self
    }
}

impl SimdReal for F32x4 {
    type Scalar = f32;
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        // SAFETY: SSE2 baseline.
        Self(unsafe { _mm_set1_ps(v) })
    }

    #[inline(always)]
    fn loadu(src: &[f32]) -> Self {
        assert!(src.len() >= 4, "F32x4::loadu: slice too short");
        // SAFETY: bounds asserted above; unaligned load allows any address.
        Self(unsafe { _mm_loadu_ps(src.as_ptr()) })
    }

    #[inline(always)]
    fn storeu(self, dst: &mut [f32]) {
        assert!(dst.len() >= 4, "F32x4::storeu: slice too short");
        // SAFETY: bounds asserted above; unaligned store allows any address.
        unsafe { _mm_storeu_ps(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // SSE2 has no fused op; matches scalar mul-then-add bit for bit.
        self * a + b
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        let a: [f32; 4] = self.into();
        ((a[0] + a[1]) + a[2]) + a[3]
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f32 {
        let a: [f32; 4] = self.into();
        a[i]
    }
}

impl SimdReal for F64x2 {
    type Scalar = f64;
    const LANES: usize = 2;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        // SAFETY: SSE2 baseline.
        Self(unsafe { _mm_set1_pd(v) })
    }

    #[inline(always)]
    fn loadu(src: &[f64]) -> Self {
        assert!(src.len() >= 2, "F64x2::loadu: slice too short");
        // SAFETY: bounds asserted above; unaligned load allows any address.
        Self(unsafe { _mm_loadu_pd(src.as_ptr()) })
    }

    #[inline(always)]
    fn storeu(self, dst: &mut [f64]) {
        assert!(dst.len() >= 2, "F64x2::storeu: slice too short");
        // SAFETY: bounds asserted above; unaligned store allows any address.
        unsafe { _mm_storeu_pd(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    #[inline(always)]
    fn reduce_sum(self) -> f64 {
        let a: [f64; 2] = self.into();
        a[0] + a[1]
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        let a: [f64; 2] = self.into();
        a[i]
    }
}

impl From<F32x4> for [f32; 4] {
    #[inline(always)]
    fn from(v: F32x4) -> Self {
        // SAFETY: __m128 and [f32; 4] have identical size and layout.
        unsafe { std::mem::transmute(v.0) }
    }
}

impl From<F64x2> for [f64; 2] {
    #[inline(always)]
    fn from(v: F64x2) -> Self {
        // SAFETY: __m128d and [f64; 2] have identical size and layout.
        unsafe { std::mem::transmute(v.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packed;

    fn arr4(v: F32x4) -> [f32; 4] {
        v.into()
    }

    #[test]
    fn sse_matches_packed_reference_f32() {
        let xs = [1.5f32, -2.25, 3.0, 0.125];
        let ys = [4.0f32, 0.5, -1.0, 8.0];
        let a = F32x4::loadu(&xs);
        let b = F32x4::loadu(&ys);
        let pa = Packed::<f32, 4>::loadu(&xs);
        let pb = Packed::<f32, 4>::loadu(&ys);
        assert_eq!(arr4(a + b), (pa + pb).to_array());
        assert_eq!(arr4(a - b), (pa - pb).to_array());
        assert_eq!(arr4(a * b), (pa * pb).to_array());
        assert_eq!(arr4(a / b), (pa / pb).to_array());
        assert_eq!(arr4(-a), (-pa).to_array());
    }

    #[test]
    fn sse_matches_packed_reference_f64() {
        let xs = [1.5f64, -2.25];
        let ys = [4.0f64, 0.5];
        let a = F64x2::loadu(&xs);
        let b = F64x2::loadu(&ys);
        let r: [f64; 2] = (a * b + a / b - b).into();
        let pa = Packed::<f64, 2>::loadu(&xs);
        let pb = Packed::<f64, 2>::loadu(&ys);
        assert_eq!(r, (pa * pb + pa / pb - pb).to_array());
    }

    #[test]
    fn unaligned_load_store_round_trip() {
        let data: Vec<f32> = (0..9).map(|i| i as f32).collect();
        for off in 0..5 {
            let v = F32x4::loadu(&data[off..]);
            let mut out = [0.0f32; 7];
            v.storeu(&mut out[3..]);
            assert_eq!(&out[3..7], &data[off..off + 4]);
        }
    }

    #[test]
    fn mul_add_is_unfused_mul_then_add() {
        // A case where fma and mul+add differ in the last bit: verify the
        // SSE2 wrapper matches the *unfused* result (determinism contract).
        let a = 1.0f32 + f32::EPSILON;
        let unfused = a * a + (-1.0f32);
        let v = F32x4::splat(a).mul_add(F32x4::splat(a), F32x4::splat(-1.0));
        assert_eq!(v.lane(0), unfused);
    }

    #[test]
    fn reduce_sum_order_is_left_to_right() {
        let v = F32x4::loadu(&[1e8, 1.0, -1e8, 1.0]);
        // ((1e8 + 1) + -1e8) + 1 = 1 in f32 (1e8+1 rounds to 1e8).
        assert_eq!(v.reduce_sum(), 1.0);
    }

    #[test]
    fn splat_and_lane() {
        let v = F64x2::splat(3.25);
        assert_eq!(v.lane(0), 3.25);
        assert_eq!(v.lane(1), 3.25);
        assert_eq!(v.reduce_sum(), 6.5);
    }
}
