//! The persistent tuning database: `TUNE.json`.
//!
//! Same conventions as the BENCH/SERVICE schemas in `threefive-bench`:
//! hand-validated JSON (no serde), a `schema_version` gate with
//! regeneration guidance, and required fields that fail validation by
//! name. Entries are keyed by (host fingerprint, kernel, precision,
//! grid); [`TuneDb::record_winner`] enforces the two invariants the
//! whole design hangs on:
//!
//! * **never persist a loser** — an entry whose MUPS is below its own
//!   measured scalar reference is rejected with an error, making the
//!   "tuned plan 100× slower than scalar" failure mode structurally
//!   impossible to store;
//! * **monotonic improvement** — re-tuning an existing key only replaces
//!   the stored plan when the new winner is strictly faster.
//!
//! [`TuneDb::revalidate`] re-checks every stored entry against the
//! symbolic race checker and the structural invariants, so a database
//! carried across builds is detected as stale instead of trusted.

use std::fmt;
use std::path::Path;

use threefive_analyze::schedule::{check_schedule, ScheduleConfig, ScheduleModel};
use threefive_bench::json::Json;
use threefive_bench::probe::ProbeWorkload;
use threefive_core::exec::ScheduleKind;
use threefive_core::planner::PlanSource;

/// Version stamped into every database; bump on breaking schema changes.
///
/// v2 adds a per-entry `schedule` (the temporal-blocking schedule the
/// winner was probed under). v1 databases still load — their entries
/// default to `"lag35d"`, the only schedule that existed then — and are
/// rewritten as v2 on the next save.
pub const TUNE_SCHEMA_VERSION: u64 = 2;

/// Stencil radius of both tunable kernels (7-point and D3Q19 LBM).
const R: usize = 1;

/// A winning blocking configuration with its provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunedPlan {
    /// Block edge (dimX = dimY).
    pub tile: usize,
    /// Temporal depth dim_T.
    pub dim_t: usize,
    /// Team size.
    pub threads: usize,
    /// Temporal-blocking schedule the winner runs under.
    pub schedule: ScheduleKind,
    /// Where the plan came from ("tuned" for measured winners;
    /// "analytical" when the search kept the Eq. 1–4 seed).
    pub source: PlanSource,
}

/// One database row: key, plan, and the measurements that justify it.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// Host fingerprint the probes ran on (`HostInfo::fingerprint`).
    pub fingerprint: String,
    /// `"7pt"` or `"lbm"`.
    pub kernel: String,
    /// `"sp"` or `"dp"`.
    pub precision: String,
    /// Cubic grid extents the plan was tuned for.
    pub grid: [usize; 3],
    /// The winning plan.
    pub plan: TunedPlan,
    /// The winner's probe throughput.
    pub mups: f64,
    /// The scalar reference's probe throughput on the same problem —
    /// the floor `mups` must beat for the entry to exist at all.
    pub scalar_mups: f64,
    /// The analytical seed's probe throughput, when it was probed.
    pub analytical_mups: Option<f64>,
    /// Probes spent finding this winner.
    pub probes: u64,
    /// Time steps per probe repetition.
    pub probe_steps: usize,
}

impl TuneEntry {
    fn key(&self) -> (&str, &str, &str, [usize; 3]) {
        (&self.fingerprint, &self.kernel, &self.precision, self.grid)
    }

    /// The schedule-checker configuration this entry's plan executes
    /// under: `ly` is the loaded tile row count (owned rows + the 2R·dim_T
    /// halo the chunk streams in).
    pub fn schedule_config(&self) -> ScheduleConfig {
        ScheduleConfig {
            r: R,
            c: self.plan.dim_t.max(1),
            threads: self.plan.threads.max(1),
            nz: self.grid[2].max(1),
            ly: self.plan.tile.min(self.grid[1]).max(1) + 2 * R * self.plan.dim_t,
        }
    }

    /// Structural + race-freedom validation of one entry. Returns every
    /// problem found (an empty vec means the entry is trustworthy).
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        let label = format!(
            "{} {} {}x{}x{}",
            self.kernel, self.precision, self.grid[0], self.grid[1], self.grid[2]
        );
        if ProbeWorkload::parse(&self.kernel).is_none() {
            out.push(format!("{label}: unknown kernel '{}'", self.kernel));
        }
        if self.precision != "sp" && self.precision != "dp" {
            out.push(format!("{label}: unknown precision '{}'", self.precision));
        }
        if self.grid.contains(&0) {
            out.push(format!("{label}: zero grid extent"));
        }
        let p = &self.plan;
        if p.tile == 0 || p.dim_t == 0 || p.threads == 0 {
            out.push(format!(
                "{label}: degenerate plan tile={} dim_t={} threads={}",
                p.tile, p.dim_t, p.threads
            ));
        }
        if p.tile <= 2 * R && p.tile > 0 {
            out.push(format!(
                "{label}: tile {} has no interior for radius {R}",
                p.tile
            ));
        }
        if !(self.mups.is_finite() && self.mups > 0.0) {
            out.push(format!("{label}: non-positive mups {}", self.mups));
        }
        if !(self.scalar_mups.is_finite() && self.scalar_mups > 0.0) {
            out.push(format!(
                "{label}: non-positive scalar_mups {}",
                self.scalar_mups
            ));
        }
        if self.mups < self.scalar_mups {
            out.push(format!(
                "{label}: stored winner ({:.2} MUPS) loses to its own scalar \
                 reference ({:.2} MUPS) — a loser was persisted",
                self.mups, self.scalar_mups
            ));
        }
        if out.is_empty() {
            let violations = check_schedule(
                &self.schedule_config(),
                &ScheduleModel::for_kind(self.plan.schedule),
            );
            if let Some(v) = violations.first() {
                out.push(format!("{label}: schedule race: {v:?}"));
            }
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fingerprint".into(), Json::str(&*self.fingerprint)),
            ("kernel".into(), Json::str(&*self.kernel)),
            ("precision".into(), Json::str(&*self.precision)),
            (
                "grid".into(),
                Json::Arr(self.grid.iter().map(|&g| Json::Num(g as f64)).collect()),
            ),
            ("tile".into(), Json::Num(self.plan.tile as f64)),
            ("dim_t".into(), Json::Num(self.plan.dim_t as f64)),
            ("threads".into(), Json::Num(self.plan.threads as f64)),
            ("schedule".into(), Json::str(self.plan.schedule.as_str())),
            ("source".into(), Json::str(self.plan.source.as_str())),
            ("mups".into(), Json::num(self.mups)),
            ("scalar_mups".into(), Json::num(self.scalar_mups)),
            (
                "analytical_mups".into(),
                match self.analytical_mups {
                    Some(m) => Json::num(m),
                    None => Json::Null,
                },
            ),
            ("probes".into(), Json::Num(self.probes as f64)),
            ("probe_steps".into(), Json::Num(self.probe_steps as f64)),
        ])
    }

    fn from_json(v: &Json, version: u64) -> Result<Self, String> {
        let grid_arr = v
            .get("grid")
            .and_then(Json::as_arr)
            .ok_or("entry missing 'grid' array")?;
        if grid_arr.len() != 3 {
            return Err(format!(
                "'grid' must have 3 extents, got {}",
                grid_arr.len()
            ));
        }
        let mut grid = [0usize; 3];
        for (slot, g) in grid.iter_mut().zip(grid_arr) {
            *slot = g.as_u64().ok_or("'grid' extent must be an integer")? as usize;
        }
        let source_s = req_str(v, "source")?;
        let source = PlanSource::parse(&source_s)
            .ok_or_else(|| format!("unknown plan source '{source_s}'"))?;
        // v1 predates the schedule axis: its entries were all produced by
        // the 3.5-D lag schedule, so that is what absence means.
        let schedule = match v.get("schedule") {
            Some(s) => {
                let s = s.as_str().ok_or("field 'schedule' must be a string")?;
                ScheduleKind::parse(s).ok_or_else(|| format!("unknown schedule '{s}'"))?
            }
            None if version < 2 => ScheduleKind::Lag35d,
            None => return Err("entry missing field 'schedule'".into()),
        };
        Ok(Self {
            fingerprint: req_str(v, "fingerprint")?,
            kernel: req_str(v, "kernel")?,
            precision: req_str(v, "precision")?,
            grid,
            plan: TunedPlan {
                tile: req_u64(v, "tile")? as usize,
                dim_t: req_u64(v, "dim_t")? as usize,
                threads: req_u64(v, "threads")? as usize,
                schedule,
                source,
            },
            mups: req_f64(v, "mups")?,
            scalar_mups: req_f64(v, "scalar_mups")?,
            analytical_mups: match v
                .get("analytical_mups")
                .ok_or("entry missing field 'analytical_mups' (use null when absent)")?
            {
                Json::Null => None,
                m => Some(
                    m.as_f64()
                        .ok_or("field 'analytical_mups' must be a number or null")?,
                ),
            },
            probes: req_u64(v, "probes")?,
            probe_steps: req_u64(v, "probe_steps")? as usize,
        })
    }
}

/// What [`TuneDb::record_winner`] did with a candidate entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecordOutcome {
    /// No entry existed for the key; the winner was stored.
    Inserted,
    /// The winner beat the stored entry, which it replaced.
    Improved {
        /// The replaced entry's MUPS.
        from: f64,
    },
    /// The stored entry is at least as fast; nothing changed.
    Kept {
        /// The stored entry's MUPS.
        best: f64,
    },
}

impl fmt::Display for RecordOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Inserted => write!(f, "stored (new entry)"),
            Self::Improved { from } => write!(f, "stored (improved on {from:.2} MUPS)"),
            Self::Kept { best } => write!(f, "kept existing entry ({best:.2} MUPS)"),
        }
    }
}

/// The whole `TUNE.json` database.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneDb {
    /// Stored entries, one per (fingerprint, kernel, precision, grid).
    pub entries: Vec<TuneEntry>,
}

impl TuneDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored entry for a key, if any.
    pub fn lookup(
        &self,
        fingerprint: &str,
        kernel: &str,
        precision: &str,
        grid: [usize; 3],
    ) -> Option<&TuneEntry> {
        self.entries
            .iter()
            .find(|e| e.key() == (fingerprint, kernel, precision, grid))
    }

    /// Records a tuning winner, enforcing the two core invariants.
    ///
    /// Errors when the entry's own measurements show it losing to the
    /// scalar reference or when the plan is structurally degenerate —
    /// such candidates belong in the search history, never in the
    /// database. On success says whether the entry was inserted,
    /// replaced a slower one, or was dropped in favor of a stored
    /// faster one (monotonic improvement).
    pub fn record_winner(&mut self, entry: TuneEntry) -> Result<RecordOutcome, String> {
        if entry.mups < entry.scalar_mups {
            return Err(format!(
                "refusing to persist a losing plan: {:.2} MUPS < scalar reference {:.2} MUPS \
                 (tile={} dim_t={} threads={})",
                entry.mups,
                entry.scalar_mups,
                entry.plan.tile,
                entry.plan.dim_t,
                entry.plan.threads
            ));
        }
        let structural = entry.problems();
        if !structural.is_empty() {
            return Err(format!(
                "refusing to persist an invalid entry: {}",
                structural.join("; ")
            ));
        }
        match self.entries.iter_mut().find(|e| e.key() == entry.key()) {
            Some(existing) if existing.mups >= entry.mups => Ok(RecordOutcome::Kept {
                best: existing.mups,
            }),
            Some(existing) => {
                let from = existing.mups;
                *existing = entry;
                Ok(RecordOutcome::Improved { from })
            }
            None => {
                self.entries.push(entry);
                Ok(RecordOutcome::Inserted)
            }
        }
    }

    /// Re-checks every stored entry (stale-entry detection): structural
    /// invariants, winner-beats-scalar, and the symbolic race checker.
    /// Returns every problem found across the database.
    pub fn revalidate(&self) -> Vec<String> {
        self.entries.iter().flat_map(TuneEntry::problems).collect()
    }

    /// Serializes to the JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(TUNE_SCHEMA_VERSION as f64),
            ),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(TuneEntry::to_json).collect()),
            ),
        ])
    }

    /// Serializes to pretty-printed JSON text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Deserializes and schema-checks a JSON tree. v1 databases are
    /// migrated on load (entries default to the lag35d schedule) and
    /// re-serialize as v{`TUNE_SCHEMA_VERSION`}.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = req_u64(v, "schema_version")?;
        if version == 0 || version > TUNE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (expected {TUNE_SCHEMA_VERSION}; \
                 regenerate with `threefive tune`)"
            ));
        }
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing 'entries' array")?
            .iter()
            .map(|e| TuneEntry::from_json(e, version))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { entries })
    }

    /// Parses and schema-checks JSON text — the `--validate` entry point.
    pub fn validate_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }

    /// Loads a database from disk; `Ok(None)` when the file does not
    /// exist (a fresh host), `Err` when it exists but fails validation.
    pub fn load(path: &Path) -> Result<Option<Self>, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::validate_str(&text)
                .map(Some)
                .map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Writes the database to disk, creating parent directories as
    /// needed.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        std::fs::write(path, self.to_json_string()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(mups: f64, scalar: f64) -> TuneEntry {
        TuneEntry {
            fingerprint: "linux-x86_64-4t-deadbeef".into(),
            kernel: "7pt".into(),
            precision: "sp".into(),
            grid: [64, 64, 64],
            plan: TunedPlan {
                tile: 32,
                dim_t: 2,
                threads: 2,
                schedule: ScheduleKind::Lag35d,
                source: PlanSource::Tuned,
            },
            mups,
            scalar_mups: scalar,
            analytical_mups: Some(90.0),
            probes: 12,
            probe_steps: 2,
        }
    }

    #[test]
    fn round_trips_through_json_text() {
        let mut db = TuneDb::new();
        db.record_winner(entry(120.0, 100.0)).unwrap();
        let mut lbm = entry(80.0, 60.0);
        lbm.kernel = "lbm".into();
        lbm.analytical_mups = None;
        db.record_winner(lbm).unwrap();
        let back = TuneDb::validate_str(&db.to_json_string()).expect("schema-valid");
        assert_eq!(back, db);
        assert!(back.revalidate().is_empty());
    }

    #[test]
    fn losers_are_never_persisted() {
        let mut db = TuneDb::new();
        let err = db.record_winner(entry(50.0, 100.0)).unwrap_err();
        assert!(err.contains("losing plan"), "{err}");
        assert!(db.entries.is_empty());
    }

    #[test]
    fn degenerate_plans_are_never_persisted() {
        let mut db = TuneDb::new();
        let mut e = entry(120.0, 100.0);
        e.plan.dim_t = 0;
        assert!(db.record_winner(e).is_err());
        let mut e = entry(120.0, 100.0);
        e.plan.tile = 2; // no interior at R = 1
        assert!(db.record_winner(e).is_err());
        assert!(db.entries.is_empty());
    }

    #[test]
    fn improvement_is_monotonic() {
        let mut db = TuneDb::new();
        assert_eq!(
            db.record_winner(entry(120.0, 100.0)).unwrap(),
            RecordOutcome::Inserted
        );
        // A slower re-tune keeps the stored entry.
        assert_eq!(
            db.record_winner(entry(110.0, 100.0)).unwrap(),
            RecordOutcome::Kept { best: 120.0 }
        );
        assert_eq!(db.lookup_first().mups, 120.0);
        // A faster re-tune replaces it.
        assert_eq!(
            db.record_winner(entry(150.0, 100.0)).unwrap(),
            RecordOutcome::Improved { from: 120.0 }
        );
        assert_eq!(db.lookup_first().mups, 150.0);
        assert_eq!(db.entries.len(), 1);
    }

    impl TuneDb {
        fn lookup_first(&self) -> &TuneEntry {
            self.lookup("linux-x86_64-4t-deadbeef", "7pt", "sp", [64, 64, 64])
                .expect("entry present")
        }
    }

    #[test]
    fn lookup_is_keyed_on_all_four_fields() {
        let mut db = TuneDb::new();
        db.record_winner(entry(120.0, 100.0)).unwrap();
        assert!(db.lookup_first().mups == 120.0);
        assert!(db.lookup("other-host", "7pt", "sp", [64, 64, 64]).is_none());
        assert!(db
            .lookup("linux-x86_64-4t-deadbeef", "lbm", "sp", [64, 64, 64])
            .is_none());
        assert!(db
            .lookup("linux-x86_64-4t-deadbeef", "7pt", "dp", [64, 64, 64])
            .is_none());
        assert!(db
            .lookup("linux-x86_64-4t-deadbeef", "7pt", "sp", [32, 32, 32])
            .is_none());
    }

    #[test]
    fn revalidate_flags_hand_edited_losers_and_races() {
        let mut db = TuneDb::new();
        db.record_winner(entry(120.0, 100.0)).unwrap();
        // Simulate a hand-edited (or stale) database: flip the stored
        // numbers so the winner now loses.
        db.entries[0].mups = 10.0;
        let problems = db.revalidate();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("loses to its own scalar"),
            "{problems:?}"
        );
    }

    #[test]
    fn wrong_schema_version_is_rejected_with_guidance() {
        let db = TuneDb::new();
        let text = db
            .to_json_string()
            .replace("\"schema_version\": 2", "\"schema_version\": 99");
        let err = TuneDb::validate_str(&text).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v1_databases_migrate_to_lag35d_and_resave_as_v2() {
        // A pre-schedule (v1) database: no "schedule" key anywhere.
        let v1 = r#"{"schema_version": 1, "entries": [{
            "fingerprint": "linux-x86_64-4t-deadbeef",
            "kernel": "7pt", "precision": "sp", "grid": [64, 64, 64],
            "tile": 32, "dim_t": 2, "threads": 2, "source": "tuned",
            "mups": 120.0, "scalar_mups": 100.0, "analytical_mups": null,
            "probes": 12, "probe_steps": 2}]}"#;
        let db = TuneDb::validate_str(v1).expect("v1 loads via migration");
        assert_eq!(db.entries[0].plan.schedule, ScheduleKind::Lag35d);
        assert!(db.revalidate().is_empty());
        let text = db.to_json_string();
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        assert!(text.contains("\"schedule\": \"lag35d\""), "{text}");
        // But a v2 entry without a schedule is malformed, not defaulted.
        let v2_missing = v1.replace("\"schema_version\": 1", "\"schema_version\": 2");
        let err = TuneDb::validate_str(&v2_missing).unwrap_err();
        assert!(err.contains("schedule"), "{err}");
    }

    #[test]
    fn non_lag_schedules_persist_and_round_trip() {
        let mut db = TuneDb::new();
        for (i, schedule) in ScheduleKind::ALL.into_iter().enumerate() {
            let mut e = entry(120.0, 100.0);
            e.grid = [64, 64, 64 + i]; // distinct keys
            e.plan.schedule = schedule;
            db.record_winner(e).unwrap();
        }
        let back = TuneDb::validate_str(&db.to_json_string()).expect("schema-valid");
        assert_eq!(back, db);
        assert!(back.revalidate().is_empty());
        let schedules: Vec<_> = back.entries.iter().map(|e| e.plan.schedule).collect();
        assert_eq!(schedules, ScheduleKind::ALL.to_vec());
    }

    #[test]
    fn missing_fields_are_rejected_by_name() {
        let mut db = TuneDb::new();
        db.record_winner(entry(120.0, 100.0)).unwrap();
        for key in ["scalar_mups", "source", "analytical_mups", "probe_steps"] {
            let text = db.to_json_string().replace(&format!("\"{key}\""), "\"x\"");
            let err = TuneDb::validate_str(&text).unwrap_err();
            assert!(err.contains(key), "{key}: {err}");
        }
    }

    #[test]
    fn load_distinguishes_absent_from_invalid() {
        let dir = std::env::temp_dir().join(format!("tune-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("TUNE.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(TuneDb::load(&path).unwrap(), None);
        let mut db = TuneDb::new();
        db.record_winner(entry(120.0, 100.0)).unwrap();
        db.save(&path).unwrap();
        assert_eq!(TuneDb::load(&path).unwrap(), Some(db));
        std::fs::write(&path, "{ not json").unwrap();
        assert!(TuneDb::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
