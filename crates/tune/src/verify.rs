//! Correctness gate for tuning winners.
//!
//! Speed alone never qualifies a plan for persistence: before an entry
//! reaches `TUNE.json` the candidate must (1) pass the symbolic race
//! checker for its exact (R, dim_T, threads, nz, ly) geometry and
//! (2) produce results **bit-identical** to the scalar reference on a
//! real sweep. Both kernels already guarantee bit-identity by
//! construction (the engine commits the same arithmetic in the same
//! order); this check catches the day that stops being true, instead of
//! letting the autotuner launder a wrong-but-fast plan into every
//! subsequent run.

use threefive_bench::probe::ProbeWorkload;
use threefive_core::exec::{reference_sweep, try_parallel35d_sweep, Blocking35};
use threefive_core::{SevenPoint, StencilKernel};
use threefive_grid::{Dim3, DoubleGrid, Grid3, Real};
use threefive_lbm::{lbm_naive_sweep, try_lbm35d_sweep, LbmBlocking, LbmMode};
use threefive_sync::{Observer, ThreadTeam};

use crate::search::Candidate;

/// Verifies `c` on an `n`³ problem over `steps` time steps: symbolic
/// race check plus bit-identity against the scalar reference, at the
/// precision the plan was tuned for.
pub fn verify_candidate(
    workload: ProbeWorkload,
    n: usize,
    steps: usize,
    dp: bool,
    c: &Candidate,
) -> Result<(), String> {
    if c.tile == 0 || c.dim_t == 0 || c.threads == 0 {
        return Err(format!("degenerate candidate {c:?}"));
    }
    race_check(n, c)?;
    match (workload, dp) {
        (ProbeWorkload::Stencil, false) => verify_stencil::<f32>(n, steps, c),
        (ProbeWorkload::Stencil, true) => verify_stencil::<f64>(n, steps, c),
        (ProbeWorkload::Lbm, false) => verify_lbm::<f32>(n, steps, c),
        (ProbeWorkload::Lbm, true) => verify_lbm::<f64>(n, steps, c),
    }
}

fn race_check(n: usize, c: &Candidate) -> Result<(), String> {
    use threefive_analyze::schedule::{check_schedule, ScheduleConfig, ScheduleModel};
    const R: usize = 1; // both kernels
    let cfg = ScheduleConfig {
        r: R,
        c: c.dim_t,
        threads: c.threads,
        nz: n,
        ly: c.tile.min(n) + 2 * R * c.dim_t,
    };
    let violations = check_schedule(&cfg, &ScheduleModel::for_kind(c.schedule));
    match violations.first() {
        None => Ok(()),
        Some(v) => Err(format!("candidate {c:?} fails the race checker: {v:?}")),
    }
}

fn stencil_initial<T: Real>(dim: Dim3) -> Grid3<T> {
    // Same deterministic initial condition the bench harness measures on.
    Grid3::from_fn(dim, |x, y, z| {
        T::from_f64(((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1)
    })
}

fn verify_stencil<T: Real>(n: usize, steps: usize, c: &Candidate) -> Result<(), String>
where
    SevenPoint<T>: StencilKernel<T>,
{
    let dim = Dim3::cube(n);
    let kernel = SevenPoint::<T>::heat(T::from_f64(0.125));
    let mut reference = DoubleGrid::from_initial(stencil_initial::<T>(dim));
    reference_sweep(&kernel, &mut reference, steps);

    let mut tuned = DoubleGrid::from_initial(stencil_initial::<T>(dim));
    let team = ThreadTeam::new(c.threads);
    let b = Blocking35 {
        dim_x: c.tile.min(n),
        dim_y: c.tile.min(n),
        dim_t: c.dim_t,
        schedule: c.schedule,
    };
    try_parallel35d_sweep(
        &kernel,
        &mut tuned,
        steps,
        b,
        &team,
        None,
        &Observer::disabled(),
    )
    .map_err(|e| format!("candidate {c:?} failed to execute: {e}"))?;

    let want = reference.src().as_slice();
    let got = tuned.src().as_slice();
    if let Some(i) = (0..want.len()).find(|&i| want[i] != got[i]) {
        return Err(format!(
            "candidate {c:?} is not bit-identical to the scalar reference: \
             first divergence at linear index {i} ({} vs {})",
            got[i], want[i]
        ));
    }
    Ok(())
}

fn verify_lbm<T: Real>(n: usize, steps: usize, c: &Candidate) -> Result<(), String> {
    let dim = Dim3::cube(n);
    let omega = T::from_f64(1.2);
    let u_lid = T::from_f64(0.05);
    let mut reference = threefive_lbm::scenarios::lid_driven_cavity::<T>(dim, omega, u_lid);
    // The SIMD pull sweep is the in-tree ground truth the 3.5-D LBM
    // pipeline is verified against (same arithmetic per site).
    lbm_naive_sweep(&mut reference, steps, LbmMode::Simd, None);

    let mut tuned = threefive_lbm::scenarios::lid_driven_cavity::<T>(dim, omega, u_lid);
    let team = ThreadTeam::new(c.threads);
    let b = LbmBlocking::try_new(c.tile.min(n), c.tile.min(n), c.dim_t)
        .map_err(|e| format!("candidate {c:?} has invalid blocking: {e}"))?
        .with_schedule(c.schedule);
    try_lbm35d_sweep(
        &mut tuned,
        steps,
        b,
        Some(&team),
        None,
        &Observer::disabled(),
    )
    .map_err(|e| format!("candidate {c:?} failed to execute: {e}"))?;

    for q in 0..threefive_lbm::model::Q {
        let want = reference.src().comp(q);
        let got = tuned.src().comp(q);
        if let Some(i) = (0..want.len()).find(|&i| want[i] != got[i]) {
            return Err(format!(
                "candidate {c:?} is not bit-identical to the reference: \
                 distribution {q} diverges at linear index {i} ({} vs {})",
                got[i], want[i]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use threefive_core::exec::ScheduleKind;

    #[test]
    fn valid_candidates_verify_for_both_kernels() {
        for schedule in ScheduleKind::ALL {
            let c = Candidate {
                tile: 8,
                dim_t: 2,
                threads: 2,
                schedule,
            };
            verify_candidate(ProbeWorkload::Stencil, 12, 3, false, &c).unwrap();
            verify_candidate(ProbeWorkload::Stencil, 12, 3, true, &c).unwrap();
            verify_candidate(ProbeWorkload::Lbm, 12, 3, false, &c).unwrap();
        }
    }

    #[test]
    fn degenerate_candidates_are_rejected() {
        let c = Candidate {
            tile: 8,
            dim_t: 0,
            threads: 1,
            schedule: ScheduleKind::Lag35d,
        };
        assert!(verify_candidate(ProbeWorkload::Stencil, 12, 2, false, &c).is_err());
    }
}
