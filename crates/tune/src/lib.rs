//! Runtime autotuner for the 3.5-D blocking parameters.
//!
//! The planner's closed-form Eqs. 1–4 are exact for the paper's 2010
//! Core i7 and *systematically wrong* everywhere else: the checked-in
//! baselines came from a 1-thread cloud machine where the "optimal"
//! parallel plan ran ~100× slower than the scalar reference. Following
//! AN5D's recipe, this crate treats the analytical plan as a **seed**,
//! not an answer:
//!
//! 1. [`search::SearchSpace::seeds`] enumerates starting candidates from
//!    [`threefive_core::planner::candidate_plans`] plus a cache-simulator
//!    sweep ([`threefive_cachesim::trace::blocked35d_trace`]);
//! 2. [`search::hill_climb`] walks (tile, dim_T, threads, schedule)
//!    neighbors with
//!    short timed probes through the `threefive-bench` harness
//!    ([`threefive_bench::probe`]), under a probe/deadline budget, with
//!    a monotonic best-so-far invariant;
//! 3. winners are persisted in a schema-versioned `TUNE.json`
//!    ([`db::TuneDb`]) keyed by (host fingerprint, kernel, precision,
//!    grid) — but **only** after passing the symbolic race checker and
//!    bit-identity verification ([`verify::verify_candidate`]), and only
//!    when they beat the scalar reference. A losing probe is recorded in
//!    the search history, never in the database, so the 100×-slower
//!    failure mode cannot be persisted at all.
//!
//! `run`/`bench`/`serve` consult the database first and fall back to the
//! analytical plan on a miss; plans carry a
//! [`threefive_core::planner::PlanSource`] provenance tag either way.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod db;
pub mod search;
pub mod verify;

pub use db::{RecordOutcome, TuneDb, TuneEntry, TunedPlan, TUNE_SCHEMA_VERSION};
pub use search::{
    hill_climb, BenchProber, Candidate, ProbeBudget, Prober, SearchSpace, TuneOutcome,
};
pub use verify::verify_candidate;
