//! The tuning search: analytical seeds, neighborhood, hill-climb.
//!
//! The search space is (tile, dim_T, threads, schedule) on a fixed
//! (kernel, precision, grid). Seeds come from the paper's own machinery — every
//! depth the planner can justify ([`candidate_plans`]) plus the tile the
//! cache simulator predicts cheapest — so the climb starts where Eqs.
//! 1–4 point and only *walks away* when measurements disagree. The
//! probing side is behind the [`Prober`] trait: production uses
//! [`BenchProber`] (real timed runs through `threefive-bench`), tests
//! inject synthetic landscapes to pin down the search's invariants
//! without timing noise.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use threefive_analyze::schedule::{check_schedule, ScheduleConfig, ScheduleModel};
use threefive_bench::probe::{probe_candidate, probe_scalar, ProbeSpec, ProbeWorkload};
use threefive_bench::BenchConfig;
use threefive_cachesim::trace::blocked35d_trace;
use threefive_cachesim::CacheSim;
use threefive_core::exec::ScheduleKind;
use threefive_core::planner::candidate_plans;
use threefive_grid::Dim3;

/// One point of the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Block edge (dimX = dimY).
    pub tile: usize,
    /// Temporal depth dim_T.
    pub dim_t: usize,
    /// Team size.
    pub threads: usize,
    /// Temporal-blocking schedule.
    pub schedule: ScheduleKind,
}

/// Measurement backend for the search.
pub trait Prober {
    /// Times the 3.5-D blocked variant at `c`; returns MUPS.
    fn probe_blocked(&mut self, c: &Candidate) -> Result<f64, String>;
    /// Times the scalar reference; returns MUPS.
    fn probe_scalar(&mut self) -> Result<f64, String>;
}

/// The production prober: short timed runs through the bench harness.
pub struct BenchProber {
    /// Repetition policy per probe.
    pub cfg: BenchConfig,
    /// Kernel to probe.
    pub workload: ProbeWorkload,
    /// Cubic grid edge.
    pub n: usize,
    /// Time steps per probe repetition.
    pub steps: usize,
    /// Double precision when true.
    pub dp: bool,
}

impl BenchProber {
    fn spec(&self, c: &Candidate) -> ProbeSpec {
        ProbeSpec {
            workload: self.workload,
            n: self.n,
            steps: self.steps,
            tile: c.tile,
            dim_t: c.dim_t,
            threads: c.threads,
            dp: self.dp,
            schedule: c.schedule,
        }
    }
}

impl Prober for BenchProber {
    fn probe_blocked(&mut self, c: &Candidate) -> Result<f64, String> {
        probe_candidate(&self.cfg, &self.spec(c)).map(|m| m.mups)
    }

    fn probe_scalar(&mut self) -> Result<f64, String> {
        let c = Candidate {
            tile: self.n,
            dim_t: 1,
            threads: 1,
            schedule: ScheduleKind::Lag35d,
        };
        probe_scalar(&self.cfg, &self.spec(&c)).map(|m| m.mups)
    }
}

/// Geometry and budget limits of the space being searched.
#[derive(Clone, Copy, Debug)]
pub struct SearchSpace {
    /// Cubic grid edge.
    pub n: usize,
    /// Largest team size to consider.
    pub max_threads: usize,
    /// Fast-storage budget 𝒞 (Eq. 1).
    pub cache_bytes: usize,
    /// Element footprint ℰ.
    pub elem_bytes: usize,
    /// Stencil radius R.
    pub r: usize,
    /// Pin the search to one schedule (`Some`) or let the climb explore
    /// all of them (`None`).
    pub schedule: Option<ScheduleKind>,
}

impl SearchSpace {
    /// Whether a candidate is admissible: geometrically sound (the tile
    /// has an interior, dim_T fits the streaming axis), within the Eq. 1
    /// storage budget, and race-free per the symbolic checker.
    pub fn valid(&self, c: &Candidate) -> bool {
        let tile = c.tile.min(self.n);
        if c.tile == 0 || c.dim_t == 0 || c.threads == 0 {
            return false;
        }
        if tile <= 2 * self.r || c.dim_t > self.n || c.threads > self.max_threads {
            return false;
        }
        if self.schedule.is_some_and(|pin| pin != c.schedule) {
            return false;
        }
        // Eq. 1: the working set of a (loaded tile)² × dim_T chunk must
        // fit the fast-storage budget — using the candidate schedule's
        // own ring capacity, not the lag schedule's.
        let loaded = tile + 2 * self.r * c.dim_t;
        let slots = c.schedule.schedule().ring_slots(self.r);
        let bytes = self.elem_bytes * slots * c.dim_t * loaded * loaded;
        if bytes > self.cache_bytes {
            return false;
        }
        check_schedule(
            &ScheduleConfig {
                r: self.r,
                c: c.dim_t,
                threads: c.threads,
                nz: self.n,
                ly: loaded,
            },
            &ScheduleModel::for_kind(c.schedule),
        )
        .is_empty()
    }

    /// The hill-climb neighborhood of `c`: tile halved/doubled/±8,
    /// dim_T ± 1, threads halved/doubled, every other schedule — clamped
    /// to the space and filtered through [`SearchSpace::valid`].
    pub fn neighbors(&self, c: &Candidate) -> Vec<Candidate> {
        let mut out = Vec::new();
        let mut push = |cand: Candidate| {
            if cand != *c && self.valid(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        };
        for tile in [
            c.tile / 2,
            c.tile.saturating_sub(8),
            c.tile + 8,
            c.tile * 2,
            self.n,
        ] {
            push(Candidate {
                tile: tile.min(self.n),
                ..*c
            });
        }
        for dim_t in [c.dim_t.saturating_sub(1), c.dim_t + 1] {
            push(Candidate { dim_t, ..*c });
        }
        for threads in [c.threads / 2, c.threads * 2] {
            push(Candidate { threads, ..*c });
        }
        for schedule in ScheduleKind::ALL {
            push(Candidate { schedule, ..*c });
        }
        out
    }

    /// Seed candidates: every temporal depth the analytical planner can
    /// justify for (γ, Γ) plus the tile the cache simulator predicts
    /// cheapest, plus the whole-plane (temporal-only) point. All at the
    /// full team size — the climb shrinks threads if probing says so.
    pub fn seeds(&self, gamma: f64, big_gamma: f64) -> Vec<Candidate> {
        let schedule = self.schedule.unwrap_or_default();
        let mut out: Vec<Candidate> = Vec::new();
        let mut push = |cand: Candidate| {
            if self.valid(&cand) && !out.contains(&cand) {
                out.push(cand);
            }
        };
        for plan in candidate_plans(
            gamma,
            big_gamma,
            self.cache_bytes,
            self.elem_bytes,
            self.r,
            2,
        ) {
            push(Candidate {
                tile: plan.dim_xy.min(self.n),
                dim_t: plan.dim_t,
                threads: self.max_threads,
                schedule,
            });
        }
        // Cache-simulator seed: smallest predicted DRAM bytes/point over
        // a coarse tile sweep at dim_T = 2.
        let mut best: Option<(f64, usize)> = None;
        for tile in [8usize, 16, 32, 64, 128]
            .into_iter()
            .filter(|&t| t <= self.n)
        {
            let mut cache = CacheSim::llc(self.cache_bytes);
            let tr = blocked35d_trace(
                Dim3::cube(self.n.min(32)),
                self.elem_bytes,
                2,
                tile,
                2,
                true,
                &mut cache,
            );
            let cost = tr.dram_bytes_per_point();
            if best.is_none_or(|(b, _)| cost < b) {
                best = Some((cost, tile));
            }
        }
        if let Some((_, tile)) = best {
            push(Candidate {
                tile,
                dim_t: 2,
                threads: self.max_threads,
                schedule,
            });
        }
        // Temporal-only: whole-plane tiles at the minimum useful depth.
        push(Candidate {
            tile: self.n,
            dim_t: 2,
            threads: self.max_threads,
            schedule,
        });
        out
    }
}

/// Probe/deadline budget for one tuning campaign.
#[derive(Clone, Copy, Debug)]
pub struct ProbeBudget {
    /// Hard cap on timed probes (scalar probe included).
    pub max_probes: usize,
    /// Optional wall-clock deadline for the whole search.
    pub max_duration: Option<Duration>,
}

impl Default for ProbeBudget {
    fn default() -> Self {
        Self {
            max_probes: 32,
            max_duration: Some(Duration::from_secs(60)),
        }
    }
}

/// The result of one hill-climb campaign.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The best candidate that beat the scalar reference, with its MUPS;
    /// `None` when nothing did (persist nothing, fall back to the
    /// analytical plan at run time).
    pub winner: Option<(Candidate, f64)>,
    /// The scalar reference's MUPS — the floor.
    pub scalar_mups: f64,
    /// The first analytical seed's measured MUPS, when one was probed.
    pub analytical_mups: Option<f64>,
    /// Every probed (candidate, MUPS), in probe order — losers included,
    /// for diagnostics; they are never persisted.
    pub history: Vec<(Candidate, f64)>,
    /// Timed probes spent.
    pub probes_used: usize,
}

/// Steepest-ascent hill-climb over `space` from `seeds` under `budget`.
///
/// Invariants:
/// * the best-so-far MUPS is monotonically non-decreasing over the
///   climb (asserted in debug builds);
/// * every probed candidate passed [`SearchSpace::valid`] — the race
///   checker and the Eq. 1 budget gate admission, not persistence;
/// * the returned `winner` beat the measured scalar floor, or is `None`.
///
/// Probe failures on individual candidates are tolerated (the candidate
/// is skipped); a failing scalar probe fails the whole campaign, since
/// without the floor no winner can be trusted.
pub fn hill_climb(
    space: &SearchSpace,
    seeds: &[Candidate],
    prober: &mut dyn Prober,
    budget: &ProbeBudget,
) -> Result<TuneOutcome, String> {
    let t0 = Instant::now();
    let scalar_mups = prober.probe_scalar()?;
    let mut probes_used = 1usize;
    let mut history: Vec<(Candidate, f64)> = Vec::new();
    let mut visited: HashSet<Candidate> = HashSet::new();
    let mut best: Option<(Candidate, f64)> = None;
    let mut analytical_mups = None;

    let out_of_budget = |probes_used: usize| {
        probes_used >= budget.max_probes || budget.max_duration.is_some_and(|d| t0.elapsed() >= d)
    };

    let mut frontier: Vec<Candidate> = seeds.iter().copied().filter(|c| space.valid(c)).collect();
    while !frontier.is_empty() {
        let mut improved = false;
        for c in std::mem::take(&mut frontier) {
            if !visited.insert(c) {
                continue;
            }
            if out_of_budget(probes_used) {
                break;
            }
            let Ok(mups) = prober.probe_blocked(&c) else {
                continue; // an unmeasurable candidate is just skipped
            };
            probes_used += 1;
            history.push((c, mups));
            if analytical_mups.is_none() {
                // The first seed probed is the analytical plan's point.
                analytical_mups = Some(mups);
            }
            if best.is_none_or(|(_, b)| mups > b) {
                if let Some((_, b)) = best {
                    debug_assert!(mups > b, "monotonic best-so-far");
                }
                best = Some((c, mups));
                improved = true;
            }
        }
        if !improved || out_of_budget(probes_used) {
            break;
        }
        // Steepest ascent: expand only around the current best.
        let (champion, _) = best.expect("improved implies a best");
        frontier = space
            .neighbors(&champion)
            .into_iter()
            .filter(|c| !visited.contains(c))
            .collect();
    }

    Ok(TuneOutcome {
        winner: best.filter(|&(_, mups)| mups >= scalar_mups),
        scalar_mups,
        analytical_mups,
        history,
        probes_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace {
            n: 64,
            max_threads: 4,
            cache_bytes: 4 << 20,
            elem_bytes: 4,
            r: 1,
            schedule: None,
        }
    }

    fn cand(tile: usize, dim_t: usize, threads: usize) -> Candidate {
        Candidate {
            tile,
            dim_t,
            threads,
            schedule: ScheduleKind::Lag35d,
        }
    }

    /// A deterministic synthetic landscape: MUPS is a function of the
    /// candidate, peaking at (tile 16, dim_t 3, threads 4).
    struct FakeProber {
        scalar: f64,
        probes: usize,
        fail_on: Option<Candidate>,
    }

    impl Prober for FakeProber {
        fn probe_blocked(&mut self, c: &Candidate) -> Result<f64, String> {
            self.probes += 1;
            if self.fail_on == Some(*c) {
                return Err("synthetic probe failure".into());
            }
            let tile_term = -((c.tile as f64 - 16.0).abs());
            let t_term = -10.0 * (c.dim_t as f64 - 3.0).abs();
            let thr_term = 5.0 * c.threads as f64;
            Ok(200.0 + tile_term + t_term + thr_term)
        }

        fn probe_scalar(&mut self) -> Result<f64, String> {
            self.probes += 1;
            Ok(self.scalar)
        }
    }

    #[test]
    fn climbs_to_the_synthetic_peak() {
        let space = space();
        let seeds = space.seeds(0.5, 0.29);
        assert!(!seeds.is_empty());
        let mut p = FakeProber {
            scalar: 50.0,
            probes: 0,
            fail_on: None,
        };
        let out = hill_climb(
            &space,
            &seeds,
            &mut p,
            &ProbeBudget {
                max_probes: 200,
                max_duration: None,
            },
        )
        .unwrap();
        let (w, mups) = out.winner.expect("peak beats scalar");
        assert_eq!(w.dim_t, 3, "{w:?}");
        assert_eq!(w.threads, 4, "{w:?}");
        assert!((8..=24).contains(&w.tile), "{w:?}");
        assert!(mups > 200.0);
        // Monotonic best-so-far over history.
        let mut best = f64::MIN;
        for &(_, m) in &out.history {
            if m > best {
                best = m;
            }
        }
        assert_eq!(best, mups);
    }

    #[test]
    fn losing_searches_return_no_winner_but_full_history() {
        let space = space();
        // Scalar floor far above anything the landscape can produce.
        let mut p = FakeProber {
            scalar: 1e9,
            probes: 0,
            fail_on: None,
        };
        let out = hill_climb(
            &space,
            &space.seeds(0.5, 0.29),
            &mut p,
            &ProbeBudget::default(),
        )
        .unwrap();
        assert!(out.winner.is_none(), "{:?}", out.winner);
        assert!(!out.history.is_empty(), "losers are recorded in history");
        assert_eq!(out.scalar_mups, 1e9);
    }

    #[test]
    fn probe_budget_is_respected() {
        let space = space();
        let mut p = FakeProber {
            scalar: 50.0,
            probes: 0,
            fail_on: None,
        };
        let out = hill_climb(
            &space,
            &space.seeds(0.5, 0.29),
            &mut p,
            &ProbeBudget {
                max_probes: 3,
                max_duration: None,
            },
        )
        .unwrap();
        assert!(out.probes_used <= 3, "{}", out.probes_used);
        assert!(p.probes <= 3, "{}", p.probes);
    }

    #[test]
    fn failing_candidates_are_skipped_not_fatal() {
        let space = space();
        let seeds = space.seeds(0.5, 0.29);
        let mut p = FakeProber {
            scalar: 50.0,
            probes: 0,
            fail_on: Some(seeds[0]),
        };
        let out = hill_climb(&space, &seeds, &mut p, &ProbeBudget::default()).unwrap();
        assert!(out.winner.is_some());
        assert!(out.history.iter().all(|&(c, _)| c != seeds[0]));
    }

    #[test]
    fn space_rejects_degenerate_and_overbudget_candidates() {
        let s = space();
        assert!(!s.valid(&cand(0, 2, 1)));
        assert!(!s.valid(&cand(2, 2, 1)));
        assert!(!s.valid(&cand(16, 0, 1)));
        assert!(!s.valid(&cand(16, 2, 0)));
        assert!(!s.valid(&cand(16, 2, 8)));
        assert!(s.valid(&cand(16, 2, 4)));
        // A tiny budget rejects big tiles via Eq. 1.
        let tiny = SearchSpace {
            cache_bytes: 8 << 10,
            ..s
        };
        assert!(!tiny.valid(&cand(64, 2, 1)));
    }

    #[test]
    fn every_schedule_is_admissible_and_a_pin_excludes_the_others() {
        let s = space();
        for schedule in ScheduleKind::ALL {
            assert!(s.valid(&Candidate {
                schedule,
                ..cand(16, 2, 4)
            }));
        }
        let pinned = SearchSpace {
            schedule: Some(ScheduleKind::Wavefront),
            ..s
        };
        assert!(!pinned.valid(&cand(16, 2, 4)), "lag35d rejected by pin");
        assert!(pinned.valid(&Candidate {
            schedule: ScheduleKind::Wavefront,
            ..cand(16, 2, 4)
        }));
        // Pinned seeds carry the pinned schedule.
        for c in pinned.seeds(0.5, 0.29) {
            assert_eq!(c.schedule, ScheduleKind::Wavefront, "{c:?}");
        }
    }

    #[test]
    fn neighbors_are_valid_and_exclude_self() {
        let s = space();
        let c = cand(16, 2, 2);
        let ns = s.neighbors(&c);
        assert!(!ns.is_empty());
        for n in &ns {
            assert_ne!(n, &c);
            assert!(s.valid(n), "{n:?}");
        }
        // Unpinned, the neighborhood reaches the other two schedules.
        for schedule in [ScheduleKind::Wavefront, ScheduleKind::Diamond] {
            assert!(
                ns.iter().any(|n| n.schedule == schedule),
                "missing {schedule} neighbor in {ns:?}"
            );
        }
        // Pinned, it reaches none of them.
        let pinned = SearchSpace {
            schedule: Some(ScheduleKind::Lag35d),
            ..s
        };
        assert!(pinned
            .neighbors(&c)
            .iter()
            .all(|n| n.schedule == ScheduleKind::Lag35d));
    }

    #[test]
    fn seeds_include_the_analytical_plan() {
        let s = space();
        // 7-point SP on the paper machine: planner picks dim_t = 2 and a
        // 360-edge tile, clamped to the 64-edge grid.
        let seeds = s.seeds(0.5, 0.29);
        assert!(
            seeds.iter().any(|c| c.dim_t == 2 && c.tile == s.n),
            "{seeds:?}"
        );
        for c in &seeds {
            assert!(s.valid(c), "{c:?}");
        }
    }
}
