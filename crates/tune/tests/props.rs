//! Property: every plan the tuner can emit validates.
//!
//! For random search spaces and random candidates, anything
//! [`SearchSpace::valid`] admits — i.e. anything the hill-climb could
//! ever probe, and therefore anything that could ever be persisted as a
//! winner — must (1) fit the Eq. 1 cache budget, (2) pass the symbolic
//! race checker, and (3) produce bit-identical results vs the scalar
//! reference. Candidates the space rejects are exempt: they can never
//! reach the database.

use proptest::prelude::*;
use threefive_analyze::schedule::{check_schedule, ScheduleConfig, ScheduleModel};
use threefive_bench::probe::ProbeWorkload;
use threefive_core::exec::ScheduleKind;
use threefive_tune::{verify_candidate, Candidate, SearchSpace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_admissible_plan_validates(
        n in 8usize..13,
        tile in 1usize..16,
        dim_t in 1usize..5,
        threads in 1usize..5,
        steps in 1usize..4,
        lbm in 0u8..2,
        cache_shift in 14u32..23,
        sched_idx in 0usize..3,
    ) {
        let space = SearchSpace {
            n,
            max_threads: 4,
            cache_bytes: 1usize << cache_shift,
            elem_bytes: if lbm == 1 { 80 } else { 4 },
            r: 1,
            schedule: None,
        };
        let schedule = ScheduleKind::ALL[sched_idx];
        let c = Candidate { tile, dim_t, threads, schedule };
        // (No prop_assume in the in-tree shim: skip inadmissible draws.)
        if !space.valid(&c) {
            return Ok(());
        }

        // Eq. 1: the loaded working set fits the budget, with the ring
        // depth the candidate's own schedule requires.
        let loaded = c.tile.min(n) + 2 * c.dim_t;
        let slots = schedule.schedule().ring_slots(space.r);
        let bytes = space.elem_bytes * slots * c.dim_t * loaded * loaded;
        prop_assert!(bytes <= space.cache_bytes);

        // Symbolic race checker accepts the exact schedule geometry.
        let cfg = ScheduleConfig {
            r: 1,
            c: c.dim_t,
            threads: c.threads,
            nz: n,
            ly: loaded,
        };
        prop_assert!(check_schedule(&cfg, &ScheduleModel::for_kind(schedule)).is_empty());

        // Bit-identity vs the scalar reference on a real sweep.
        let workload = if lbm == 1 { ProbeWorkload::Lbm } else { ProbeWorkload::Stencil };
        let verdict = verify_candidate(workload, n, steps, false, &c);
        prop_assert!(verdict.is_ok(), "{:?}: {:?}", c, verdict);
    }

    #[test]
    fn no_neighbor_escapes_the_space(
        n in 8usize..13,
        tile in 3usize..16,
        dim_t in 1usize..5,
        threads in 1usize..5,
        sched_idx in 0usize..3,
    ) {
        let space = SearchSpace {
            n,
            max_threads: 4,
            cache_bytes: 4 << 20,
            elem_bytes: 4,
            r: 1,
            schedule: None,
        };
        let schedule = ScheduleKind::ALL[sched_idx];
        let c = Candidate { tile, dim_t, threads, schedule };
        if !space.valid(&c) {
            return Ok(());
        }
        for nb in space.neighbors(&c) {
            prop_assert!(space.valid(&nb), "{:?} escaped via {:?}", c, nb);
        }
    }

    #[test]
    fn seeds_are_always_admissible(
        n in 8usize..17,
        cache_shift in 16u32..23,
        lbm in 0u8..2,
    ) {
        let space = SearchSpace {
            n,
            max_threads: 4,
            cache_bytes: 1usize << cache_shift,
            elem_bytes: if lbm == 1 { 80 } else { 4 },
            r: 1,
            schedule: None,
        };
        let (gamma, big_gamma) = if lbm == 1 { (0.88, 0.29) } else { (0.5, 0.29) };
        for seed in space.seeds(gamma, big_gamma) {
            prop_assert!(space.valid(&seed), "{:?}", seed);
        }
    }
}
