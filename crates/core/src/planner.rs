//! Blocking-parameter selection (paper §V).
//!
//! Given the kernel's bytes/op ratio γ, the machine's peak bytes/op ratio
//! Γ, the fast-storage size 𝒞, the element size ℰ and the stencil radius
//! R, the planner chooses the temporal factor `dim_T` and the XY block
//! dimensions, and evaluates the ghost-layer *overestimation* κ (the ratio
//! of extra DRAM traffic and recomputation) for each blocking scheme.
//!
//! All formulas are from §V-A and §V-C:
//!
//! * κ³ᴰ   = ((1−2R/dx)(1−2R/dy)(1−2R/dz))⁻¹
//! * κ²·⁵ᴰ = ((1−2R/dx)(1−2R/dy))⁻¹
//! * κ³·⁵ᴰ = ((1−2R·dimT/dx)(1−2R·dimT/dy))⁻¹            (Eq. 2)
//! * κ⁴ᴰ   = ((1−2R·dimT/dx)(1−2R·dimT/dy)(1−2R·dimT/dz))⁻¹
//! * dimT ≥ η = ⌈γ/Γ⌉                                     (Eq. 3)
//! * dx = dy = ⌊√(𝒞/(ℰ·(2R+2)·dimT))⌋                     (Eqs. 1, 4)

use std::fmt;

pub use crate::exec::schedule::ScheduleKind;

/// Errors from the planning process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanError {
    /// The kernel is already compute bound (γ ≤ Γ): temporal blocking
    /// cannot improve it (paper: 7-point DP and LBM DP on GTX 285).
    AlreadyComputeBound {
        /// Kernel bytes/op.
        gamma: f64,
        /// Machine peak bytes/op.
        big_gamma: f64,
    },
    /// The fast storage is too small for any valid block: the computed
    /// block dimension does not exceed `2R·dimT` (paper: LBM SP on the
    /// GTX 285's 16 KB shared memory, where `dimX ≤ 2`).
    BlockTooSmall {
        /// Block edge that fits in storage.
        dim_xy: usize,
        /// Minimum usable edge (`2R·dimT + 1`).
        required: usize,
    },
    /// Eq. 4 (plus the SIMD-friendly rounding) produced a *degenerate*
    /// block edge — zero, or no interior even at `dim_T = 1` (edge ≤
    /// `2R`). Unlike [`PlanError::BlockTooSmall`], which says "this
    /// `dim_T` does not fit", this says the storage budget cannot hold
    /// any usable block for this radius at all.
    DegenerateBlock {
        /// The degenerate edge Eq. 4 produced.
        dim_xy: usize,
        /// Stencil radius `R` (the edge must exceed `2R`).
        radius: usize,
    },
    /// γ or Γ was not a positive finite number — garbage in (a NaN from
    /// an upstream division, a zero-bandwidth machine model) is diagnosed
    /// instead of flowing through `ceil()`/`sqrt()` into a bogus plan.
    InvalidInput {
        /// Kernel bytes/op as given.
        gamma: f64,
        /// Machine peak bytes/op as given.
        big_gamma: f64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::AlreadyComputeBound { gamma, big_gamma } => write!(
                f,
                "kernel is already compute bound (γ = {gamma:.3} ≤ Γ = {big_gamma:.3}); \
                 temporal blocking cannot help"
            ),
            PlanError::BlockTooSmall { dim_xy, required } => write!(
                f,
                "fast storage too small: block edge {dim_xy} < required {required}"
            ),
            PlanError::DegenerateBlock { dim_xy, radius } => write!(
                f,
                "degenerate block: edge {dim_xy} has no interior for radius {radius} \
                 (needs > {}); the storage budget cannot hold any usable block",
                2 * radius
            ),
            PlanError::InvalidInput { gamma, big_gamma } => write!(
                f,
                "invalid planner input: γ = {gamma} and Γ = {big_gamma} must be positive \
                 finite numbers"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Where a plan's parameters came from: the paper's closed-form model or
/// a measured tuning campaign. Carried through `TUNE.json` and printed by
/// the CLI so a surprising blocking choice is always attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Eqs. 1–4 against a machine model (the paper's §V-C planner).
    Analytical,
    /// Measured on the host by `threefive tune` and persisted.
    Tuned,
}

impl PlanSource {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanSource::Analytical => "analytical",
            PlanSource::Tuned => "tuned",
        }
    }

    /// Parses a serialization name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "analytical" => Some(PlanSource::Analytical),
            "tuned" => Some(PlanSource::Tuned),
            _ => None,
        }
    }
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A complete 3.5-D blocking plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan35D {
    /// Stencil radius R.
    pub radius: usize,
    /// Temporal blocking factor `dim_T` (time steps per DRAM round trip).
    pub dim_t: usize,
    /// XY block edge `dimX = dimY`.
    pub dim_xy: usize,
    /// Ghost-layer overestimation κ³·⁵ᴰ.
    pub kappa: f64,
    /// Bytes of fast storage the buffers occupy (left side of Eq. 1).
    pub buffer_bytes: usize,
    /// Effective bytes/op after blocking: γ·κ/dimT.
    pub effective_gamma: f64,
}

/// Overestimation of 3-D spatial blocking with block `dx × dy × dz`.
///
/// Returns `+∞` when any edge is not larger than `2R` (no interior).
pub fn kappa_3d(r: usize, dx: usize, dy: usize, dz: usize) -> f64 {
    kappa_product(&[(r, dx), (r, dy), (r, dz)], 1)
}

/// Overestimation of 2.5-D spatial blocking with XY block `dx × dy`.
pub fn kappa_25d(r: usize, dx: usize, dy: usize) -> f64 {
    kappa_product(&[(r, dx), (r, dy)], 1)
}

/// Overestimation of 3.5-D blocking (Eq. 2).
pub fn kappa_35d(r: usize, dim_t: usize, dx: usize, dy: usize) -> f64 {
    kappa_product(&[(r, dx), (r, dy)], dim_t)
}

/// Overestimation of 4-D (3-D space + 1-D time) blocking.
pub fn kappa_4d(r: usize, dim_t: usize, dx: usize, dy: usize, dz: usize) -> f64 {
    kappa_product(&[(r, dx), (r, dy), (r, dz)], dim_t)
}

fn kappa_product(axes: &[(usize, usize)], dim_t: usize) -> f64 {
    let mut prod = 1.0f64;
    for &(r, d) in axes {
        let ghost = 2.0 * r as f64 * dim_t as f64;
        let frac = 1.0 - ghost / d as f64;
        if frac <= 0.0 {
            return f64::INFINITY;
        }
        prod *= frac;
    }
    1.0 / prod
}

/// Minimum temporal factor η = ⌈γ/Γ⌉ (Eq. 3).
///
/// # Panics
/// Panics if `big_gamma` is not positive.
pub fn dim_t_min(gamma: f64, big_gamma: f64) -> usize {
    assert!(
        big_gamma > 0.0,
        "dim_t_min: machine bytes/op must be positive"
    );
    (gamma / big_gamma).ceil() as usize
}

/// Largest block edge satisfying Eq. 1 with `dimX = dimY`:
/// `ℰ·(2R+2)·dimT·dim² ≤ 𝒞` ⇒ `dim = ⌊√(𝒞/(ℰ(2R+2)dimT))⌋` (Eq. 4).
pub fn dim_xy_max(cache_bytes: usize, elem_bytes: usize, r: usize, dim_t: usize) -> usize {
    let denom = (elem_bytes * (2 * r + 2) * dim_t) as f64;
    ((cache_bytes as f64 / denom).sqrt()).floor() as usize
}

/// Largest cubic 3-D block edge for plain 3-D spatial blocking:
/// `dim = ⌊∛(𝒞/ℰ)⌋` (§V-A2).
pub fn dim_3d_max(cache_bytes: usize, elem_bytes: usize) -> usize {
    ((cache_bytes as f64 / elem_bytes as f64).cbrt()).floor() as usize
}

/// Largest XY block edge for 2.5-D spatial blocking:
/// `dim = ⌊√(𝒞/(ℰ(2R+1)))⌋` (§V-A3).
pub fn dim_25d_max(cache_bytes: usize, elem_bytes: usize, r: usize) -> usize {
    ((cache_bytes as f64 / (elem_bytes * (2 * r + 1)) as f64).sqrt()).floor() as usize
}

/// Largest cubic 4-D block edge: the block is double-buffered across time
/// steps, so `2·ℰ·dim³ ≤ 𝒞`.
pub fn dim_4d_max(cache_bytes: usize, elem_bytes: usize) -> usize {
    ((cache_bytes as f64 / (2 * elem_bytes) as f64).cbrt()).floor() as usize
}

/// Produces a complete 3.5-D plan (paper §V-C/§VI).
///
/// * `gamma` — kernel bytes/op (e.g. 0.5 for 7-point SP);
/// * `big_gamma` — machine peak bytes/op (e.g. 0.29 for Core i7 SP);
/// * `cache_bytes` — fast storage budget 𝒞 (the paper uses half the LLC);
/// * `elem_bytes` — per-grid-point size ℰ (4/8 for scalar grids, 80/160
///   for D3Q19 lattices);
/// * `r` — stencil radius.
///
/// `dim_t` is chosen as the **minimum** satisfying Eq. 3 because larger
/// values only increase overestimation (§VI-A); `dim_xy` maximal per
/// Eq. 4, rounded down to a multiple of 8 when that costs < 3% of the
/// edge (block edges divisible by the SIMD width avoid ragged rows —
/// the paper picks 360 over the maximal 361).
pub fn plan_35d(
    gamma: f64,
    big_gamma: f64,
    cache_bytes: usize,
    elem_bytes: usize,
    r: usize,
) -> Result<Plan35D, PlanError> {
    check_ratios(gamma, big_gamma)?;
    if gamma <= big_gamma {
        return Err(PlanError::AlreadyComputeBound { gamma, big_gamma });
    }
    let dim_t = dim_t_min(gamma, big_gamma).max(2);
    finish_plan(gamma, dim_t, cache_bytes, elem_bytes, r)
}

/// Rejects non-finite / non-positive byte-per-op ratios up front.
fn check_ratios(gamma: f64, big_gamma: f64) -> Result<(), PlanError> {
    if !(gamma.is_finite() && gamma > 0.0 && big_gamma.is_finite() && big_gamma > 0.0) {
        return Err(PlanError::InvalidInput { gamma, big_gamma });
    }
    Ok(())
}

/// Shared tail of every planner entry point: Eq. 4 edge, rounding, and
/// the validity checks that make an emitted plan *usable by construction*
/// — a non-degenerate edge (`> 2R`), an interior at this `dim_T`
/// (`≥ 2R·dimT + 1`, which also keeps κ finite), and buffers within the
/// Eq. 1 budget.
fn finish_plan(
    gamma: f64,
    dim_t: usize,
    cache_bytes: usize,
    elem_bytes: usize,
    r: usize,
) -> Result<Plan35D, PlanError> {
    let raw = dim_xy_max(cache_bytes, elem_bytes, r, dim_t);
    let dim_xy = round_block_edge(raw);
    // Degenerate before too-small: an edge with no interior even at
    // dim_T = 1 means no temporal depth can ever fit this budget/radius,
    // which is a more useful diagnosis than "this dim_T doesn't fit".
    if dim_xy <= 2 * r {
        return Err(PlanError::DegenerateBlock { dim_xy, radius: r });
    }
    let required = 2 * r * dim_t + 1;
    if dim_xy < required {
        return Err(PlanError::BlockTooSmall { dim_xy, required });
    }
    let kappa = kappa_35d(r, dim_t, dim_xy, dim_xy);
    debug_assert!(kappa.is_finite(), "interior checked above");
    Ok(Plan35D {
        radius: r,
        dim_t,
        dim_xy,
        kappa,
        buffer_bytes: elem_bytes * (2 * r + 2) * dim_t * dim_xy * dim_xy,
        effective_gamma: gamma * kappa / dim_t as f64,
    })
}

/// A refinement beyond the paper: Eq. 3's minimum `dim_T = ⌈γ/Γ⌉` is
/// necessary but not always *sufficient*, because the ghost factor κ
/// multiplies back into the effective bytes/op (`γ·κ/dim_T`). For LBM SP
/// on the Core i7, the paper's `dim_T = 3` leaves the kernel ~15-20% shy
/// of compute bound — visible in its own Figure 4(a) "20% drop" remark.
/// This planner searches upward from the Eq. 3 minimum until the
/// effective ratio actually clears Γ (or returns the best achievable).
pub fn plan_35d_optimal(
    gamma: f64,
    big_gamma: f64,
    cache_bytes: usize,
    elem_bytes: usize,
    r: usize,
) -> Result<Plan35D, PlanError> {
    check_ratios(gamma, big_gamma)?;
    if gamma <= big_gamma {
        return Err(PlanError::AlreadyComputeBound { gamma, big_gamma });
    }
    let start = dim_t_min(gamma, big_gamma).max(2);
    let mut best: Option<Plan35D> = None;
    let mut first_err: Option<PlanError> = None;
    // Search from the shallowest useful factor: when the cache cannot fit
    // the Eq. 3 minimum, a shallower dim_T still buys a partial reduction.
    for dim_t in 2..=start + 16 {
        match plan_35d_forced(gamma, dim_t, cache_bytes, elem_bytes, r) {
            Ok(plan) => {
                if dim_t >= start && plan.effective_gamma <= big_gamma {
                    return Ok(plan);
                }
                if best
                    .as_ref()
                    .is_none_or(|b| plan.effective_gamma < b.effective_gamma)
                {
                    best = Some(plan);
                }
            }
            Err(e) => {
                // Deeper blocking no longer fits the fast storage; keep
                // the typed reason (degenerate vs too-small) for the
                // nothing-fits verdict below.
                first_err = Some(e);
                break;
            }
        }
    }
    best.ok_or_else(|| {
        first_err.unwrap_or(PlanError::BlockTooSmall {
            dim_xy: dim_xy_max(cache_bytes, elem_bytes, r, 2),
            required: 4 * r + 1,
        })
    })
}

/// Enumerates the analytical *candidate* plans the autotuner seeds its
/// search from: one maximal-tile plan per temporal factor from the
/// shallowest useful `dim_T = 1` up to `extra_depth` past the Eq. 3
/// minimum. Infeasible depths are simply absent — the list is every plan
/// the closed-form model considers valid, ordered by `dim_T`.
pub fn candidate_plans(
    gamma: f64,
    big_gamma: f64,
    cache_bytes: usize,
    elem_bytes: usize,
    r: usize,
    extra_depth: usize,
) -> Vec<Plan35D> {
    if check_ratios(gamma, big_gamma).is_err() {
        return Vec::new();
    }
    let start = dim_t_min(gamma, big_gamma).max(2);
    (1..=start + extra_depth)
        .map_while(|dim_t| plan_35d_forced(gamma, dim_t, cache_bytes, elem_bytes, r).ok())
        .collect()
}

/// Like [`plan_35d`] but with the temporal factor fixed by the caller —
/// the paper's "even using the minimum value of dim_T = 2" analysis
/// (§VI-B), used when the Eq. 3 minimum doesn't fit the fast storage and
/// one asks whether a *partial* bandwidth reduction is still feasible.
pub fn plan_35d_forced(
    gamma: f64,
    dim_t: usize,
    cache_bytes: usize,
    elem_bytes: usize,
    r: usize,
) -> Result<Plan35D, PlanError> {
    assert!(dim_t >= 1, "plan_35d_forced: dim_t must be at least 1");
    if !(gamma.is_finite() && gamma > 0.0) {
        return Err(PlanError::InvalidInput {
            gamma,
            big_gamma: f64::NAN,
        });
    }
    finish_plan(gamma, dim_t, cache_bytes, elem_bytes, r)
}

/// Per-thread plane-slice size below which a barrier per Z-step costs a
/// noticeable fraction of the compute it separates (spin-barrier latency
/// vs ~1 ns/cell stencil work).
const BARRIER_BOUND_CELLS_PER_THREAD: usize = 4096;

/// The temporal-blocking schedule the analytical model prefers for a
/// stencil of radius `r` on `threads` threads over planes of
/// `plane_cells` points.
///
/// The choice follows the schedules' own arithmetic (see
/// `exec::schedule`):
///
/// * **Diamond** processes `DIAMOND_SPAN` consecutive planes per barrier
///   interval, quartering the barrier count — the right trade when the
///   per-thread slice of a plane is so small that synchronization, not
///   bandwidth, bounds the sweep.
/// * **Wavefront** needs only `2R+2` ring slots and a lag of `(R+1)(t−1)`
///   planes, against the 3.5-D lag schedule's `3R+1` slots and `2R(t−1)`
///   lag — strictly less fast-storage and a shorter pipeline fill once
///   `R > 1`.
/// * **Lag35d** is the paper's schedule and the default everywhere else;
///   at `R = 1` the wavefront degenerates to the same lag/slot counts, so
///   nothing is gained by switching.
///
/// This is a seed for the autotuner's schedule axis, not a verdict: the
/// tuner measures all three and may overrule it.
pub fn preferred_schedule(r: usize, threads: usize, plane_cells: usize) -> ScheduleKind {
    if threads > 1 && plane_cells / threads.max(1) < BARRIER_BOUND_CELLS_PER_THREAD {
        return ScheduleKind::Diamond;
    }
    if r > 1 {
        return ScheduleKind::Wavefront;
    }
    ScheduleKind::Lag35d
}

/// Rounds a block edge down to a SIMD/warp-friendly multiple when the lost
/// area is small: to a multiple of 8 when that costs < 4% of the edge, else
/// to a multiple of 4 when that costs < 5%. Reproduces the paper's picks:
/// 362 → 360, 66 → 64, 46 → 44, 256 → 256.
fn round_block_edge(raw: usize) -> usize {
    for (m, limit) in [(8usize, 0.04f64), (4, 0.05)] {
        let r = raw / m * m;
        if r > 0 && (raw - r) as f64 / (raw as f64) < limit {
            return r;
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    #[test]
    fn kappa_examples_from_section_5a() {
        // §V-A2: R ~ 10% of dim³ᴰ ⇒ κ³ᴰ ≈ 1.95; R ~ 20% ⇒ κ³ᴰ ≈ 4.62.
        let k10 = kappa_3d(10, 100, 100, 100);
        let k20 = kappa_3d(20, 100, 100, 100);
        assert!((k10 - 1.95).abs() < 0.01, "{k10}");
        assert!((k20 - 4.62).abs() < 0.02, "{k20}");
        // §V-A3: *same cache budget* with 2.5-D blocking gives a larger
        // block edge (√(𝒞/(ℰ(2R+1))) vs ∛(𝒞/ℰ) = 100 ⇒ 𝒞/ℰ = 10⁶), so κ
        // drops to ≈ 1.2X and ≈ 1.77X.
        let budget = 1_000_000usize; // 𝒞/ℰ
        let d10 = dim_25d_max(budget, 1, 10);
        let d20 = dim_25d_max(budget, 1, 20);
        let k10 = kappa_25d(10, d10, d10);
        let k20 = kappa_25d(20, d20, d20);
        assert!((k10 - 1.2).abs() < 0.05, "{k10}");
        assert!((k20 - 1.77).abs() < 0.05, "{k20}");
    }

    #[test]
    fn seven_point_sp_cpu_plan_matches_section_6a() {
        // γ = 0.5, Γ = 0.29, 𝒞 = 4 MB, ℰ = 4 B, R = 1
        // ⇒ dimT = 2, dimX ≤ 361 (paper uses 360), κ ≈ 1.02.
        let plan = plan_35d(0.5, 0.29, 4 * MB, 4, 1).unwrap();
        assert_eq!(plan.dim_t, 2);
        assert_eq!(dim_xy_max(4 * MB, 4, 1, 2), 362); // √(4MB/(4·4·2)) = 362.03
        assert_eq!(plan.dim_xy, 360); // rounded to SIMD-friendly multiple of 8
        assert!((plan.kappa - 1.02).abs() < 0.01, "{}", plan.kappa);
        assert!(plan.buffer_bytes <= 4 * MB);
        // Effective γ drops below Γ: kernel becomes compute bound.
        assert!(plan.effective_gamma < 0.29);
    }

    #[test]
    fn seven_point_dp_cpu_plan_matches_section_6a() {
        // γ = 1.0, Γ = 0.59 ⇒ dimT = 2, dimX = 256, κ ≈ 1.03-1.04.
        let plan = plan_35d(1.0, 0.59, 4 * MB, 8, 1).unwrap();
        assert_eq!(plan.dim_t, 2);
        assert_eq!(plan.dim_xy, 256);
        assert!((plan.kappa - 1.035).abs() < 0.01, "{}", plan.kappa);
    }

    #[test]
    fn lbm_sp_cpu_plan_matches_section_6b() {
        // Paper §VI-B quotes dimT ≥ 2.9 (i.e. it evaluates γ/Γ ≈ 2.9, a
        // slightly lower γ than the headline 0.88), choosing dimT = 3.
        // ℰ = 80 B ⇒ dimX ≤ 66, paper uses 64, κ ≈ 1.21.
        let plan = plan_35d(0.85, 0.29, 4 * MB, 80, 1).unwrap();
        assert_eq!(plan.dim_t, 3);
        let raw = dim_xy_max(4 * MB, 80, 1, 3);
        assert!((64..=66).contains(&raw), "{raw}");
        assert_eq!(plan.dim_xy, 64);
        assert!((plan.kappa - 1.21).abs() < 0.01, "{}", plan.kappa);
    }

    #[test]
    fn lbm_dp_cpu_plan_matches_section_6b() {
        // γ = 1.75, Γ = 0.59 ⇒ dimT = 3; ℰ = 160 B ⇒ dimX = 44 (paper),
        // κ ≈ 1.34.
        let plan = plan_35d(1.75, 0.59, 4 * MB, 160, 1).unwrap();
        assert_eq!(plan.dim_t, 3);
        // Raw maximum is 46; the alignment rounding picks the paper's 44.
        assert_eq!(plan.dim_xy, 44);
        assert!((plan.kappa - 1.34).abs() < 0.01, "{}", plan.kappa);
    }

    #[test]
    fn gpu_seven_point_sp_kappa_matches_section_6a() {
        // GPU: dimX = 32 (warp width), dimT = 2 ⇒ κ ≈ 1.31.
        let kappa = kappa_35d(1, 2, 32, 32);
        assert!((kappa - 1.31).abs() < 0.01, "{kappa}");
    }

    #[test]
    fn gpu_lbm_sp_is_infeasible_as_in_section_6b() {
        // 16 KB shared memory, ℰ = 160 B... paper quotes ℰ = 160 (SP uses
        // 80 but they quote the full two-copy footprint); with dimT = 6.1
        // required, even dimT = 2 gives dimX ≤ 4 — blocking impossible.
        // At the Eq. 3 minimum dim_T = 7 the edge collapses to 1, which
        // has no interior for any temporal depth: a degenerate block.
        let err = plan_35d(0.88, 0.43 / 3.0, 16 * 1024, 160, 1).unwrap_err();
        match err {
            PlanError::DegenerateBlock { dim_xy, radius } => {
                assert!(dim_xy <= 2, "{dim_xy}");
                assert_eq!(radius, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(err.to_string().contains("degenerate block"), "{err}");
    }

    #[test]
    fn compute_bound_kernels_are_rejected() {
        // 7-point DP on GTX 285: γ = 1.0 < Γ = 1.7.
        let err = plan_35d(1.0, 1.7, 16 * 1024, 8, 1).unwrap_err();
        assert!(matches!(err, PlanError::AlreadyComputeBound { .. }));
        assert!(err.to_string().contains("compute bound"));
    }

    #[test]
    fn four_d_overheads_match_section_6() {
        // §VI-A: 4-D blocking overhead ≈ 1.18X SP / 1.21X DP for 7-point.
        let dim_sp = dim_4d_max(4 * MB, 4);
        let k_sp = kappa_4d(1, 2, dim_sp, dim_sp, dim_sp);
        assert!((k_sp - 1.18).abs() < 0.02, "dim={dim_sp} k={k_sp}");
        let dim_dp = dim_4d_max(4 * MB, 8);
        let k_dp = kappa_4d(1, 2, dim_dp, dim_dp, dim_dp);
        assert!((k_dp - 1.21).abs() < 0.02, "dim={dim_dp} k={k_dp}");
        // §VI-B: ≈ 2.03X SP / 2.71X DP for LBM (dimT = 3).
        let dim_lsp = dim_4d_max(4 * MB, 80);
        let k_lsp = kappa_4d(1, 3, dim_lsp, dim_lsp, dim_lsp);
        assert!((k_lsp - 2.03).abs() < 0.1, "dim={dim_lsp} k={k_lsp}");
        let dim_ldp = dim_4d_max(4 * MB, 160);
        let k_ldp = kappa_4d(1, 3, dim_ldp, dim_ldp, dim_ldp);
        assert!((k_ldp - 2.71).abs() < 0.25, "dim={dim_ldp} k={k_ldp}");
    }

    #[test]
    fn dim_t_min_is_ceiling() {
        assert_eq!(dim_t_min(0.5, 0.29), 2);
        assert_eq!(dim_t_min(0.88, 0.29), 4); // 3.034 rounds up
        assert_eq!(dim_t_min(0.87, 0.29), 3);
        assert_eq!(dim_t_min(1.0, 1.0), 1);
        assert_eq!(dim_t_min(1.75, 0.59), 3);
    }

    #[test]
    fn optimal_planner_clears_the_roofline_where_eq3_falls_short() {
        // LBM SP at its exact γ: Eq. 3 gives dim_T = 4 already, but κ at
        // the corresponding tile leaves effective γ slightly above Γ;
        // the optimal search pushes one step deeper.
        let gamma = 0.896;
        let big_gamma = 30.0 / 102.0;
        let eq3 = plan_35d(gamma, big_gamma, 4 * MB, 80, 1).unwrap();
        let opt = plan_35d_optimal(gamma, big_gamma, 4 * MB, 80, 1).unwrap();
        assert!(
            opt.effective_gamma <= big_gamma + 1e-12,
            "{}",
            opt.effective_gamma
        );
        assert!(opt.dim_t >= eq3.dim_t);
        // And it never regresses the 7-point case, where Eq. 3 suffices.
        let seven = plan_35d_optimal(0.5, 0.29, 4 * MB, 4, 1).unwrap();
        assert_eq!(seven.dim_t, 2);
        assert_eq!(seven.dim_xy, 360);
    }

    #[test]
    fn optimal_planner_degrades_gracefully_when_nothing_clears() {
        // A tiny cache: no dim_T clears Γ; the best-achievable plan comes
        // back instead of an error as long as *some* blocking fits.
        let plan = plan_35d_optimal(0.9, 0.05, 64 << 10, 80, 1).unwrap();
        assert!(plan.effective_gamma > 0.05);
        assert!(plan.dim_xy > 2 * plan.dim_t);
    }

    #[test]
    fn forced_dim_t_reproduces_the_gpu_minimum_analysis() {
        // §VI-B: on the GTX 285's 16 KB, "even using the minimum value of
        // dim_T = 2 yields dimX ≤ 4, which also does not permit blocking".
        let err = plan_35d_forced(0.88, 2, 16 << 10, 160, 1).unwrap_err();
        match err {
            PlanError::BlockTooSmall { dim_xy, required } => {
                assert!(dim_xy <= 4, "{dim_xy}");
                assert_eq!(required, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A Fermi-sized 768 KB cache crosses the threshold (§VIII).
        let plan = plan_35d_forced(0.88, 2, 768 << 10, 160, 1).unwrap();
        assert!(plan.dim_xy > 2 * 2);
        assert!(plan.kappa.is_finite());
    }

    #[test]
    fn kappa_degenerate_blocks_are_infinite() {
        assert_eq!(kappa_35d(1, 2, 4, 4), f64::INFINITY);
        assert_eq!(kappa_3d(2, 4, 100, 100), f64::INFINITY);
        assert!(kappa_35d(1, 2, 5, 5).is_finite());
    }

    #[test]
    fn effective_gamma_reduces_by_dim_t_over_kappa() {
        let plan = plan_35d(0.5, 0.29, 4 * MB, 4, 1).unwrap();
        let expect = 0.5 * plan.kappa / plan.dim_t as f64;
        assert!((plan.effective_gamma - expect).abs() < 1e-12);
    }

    #[test]
    fn boundary_budget_scan_never_emits_invalid_plans() {
        // Sweep storage budgets from absurdly small up past the paper's
        // 4 MB across radii and element sizes: every Ok plan must have a
        // usable interior and fit the Eq. 1 budget; every failure must be
        // one of the typed geometry errors, never a degenerate plan.
        for r in 1..=4usize {
            for elem in [4usize, 80, 160] {
                for shift in 8..=22 {
                    let cache = 1usize << shift;
                    for dim_t in 1..=6usize {
                        match plan_35d_forced(1.5, dim_t, cache, elem, r) {
                            Ok(p) => {
                                assert!(p.dim_xy > 2 * r, "edge {} r {r}", p.dim_xy);
                                assert!(p.dim_xy > 2 * r * dim_t);
                                assert!(p.buffer_bytes <= cache, "{} > {cache}", p.buffer_bytes);
                                assert!(p.kappa.is_finite() && p.kappa >= 1.0, "{}", p.kappa);
                            }
                            Err(
                                PlanError::DegenerateBlock { dim_xy, .. }
                                | PlanError::BlockTooSmall { dim_xy, .. },
                            ) => {
                                // The rejected edge really was unusable.
                                assert!(dim_xy <= 2 * r || dim_xy < 2 * r * dim_t + 1);
                            }
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_edges_are_typed_errors() {
        // R = 2 with a 5 KB budget: edge rounds to 2 ≤ 2R — no interior.
        let err = plan_35d_forced(1.0, 1, 5 << 10, 160, 2).unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::DegenerateBlock {
                    dim_xy: 2,
                    radius: 2
                }
            ),
            "{err:?}"
        );
        // A budget too small for even one point: edge collapses to 0.
        let err = plan_35d_forced(1.0, 1, 100, 160, 1).unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::DegenerateBlock {
                    dim_xy: 0,
                    radius: 1
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("cannot hold any usable block"));
    }

    #[test]
    fn invalid_ratios_are_typed_errors_not_panics() {
        for (g, bg) in [
            (f64::NAN, 0.29),
            (0.5, f64::NAN),
            (0.5, 0.0),
            (-1.0, 0.29),
            (0.5, f64::INFINITY),
        ] {
            let err = plan_35d(g, bg, 4 * MB, 4, 1).unwrap_err();
            assert!(matches!(err, PlanError::InvalidInput { .. }), "{err:?}");
            let err = plan_35d_optimal(g, bg, 4 * MB, 4, 1).unwrap_err();
            assert!(matches!(err, PlanError::InvalidInput { .. }), "{err:?}");
        }
        let err = plan_35d_forced(f64::NAN, 2, 4 * MB, 4, 1).unwrap_err();
        assert!(matches!(err, PlanError::InvalidInput { .. }), "{err:?}");
        assert!(err.to_string().contains("invalid planner input"));
    }

    #[test]
    fn candidate_plans_enumerates_valid_increasing_depths() {
        let cands = candidate_plans(0.5, 0.29, 4 * MB, 4, 1, 4);
        assert!(cands.len() >= 3, "{}", cands.len());
        for (i, p) in cands.iter().enumerate() {
            assert_eq!(p.dim_t, i + 1);
            assert!(p.dim_xy > 2 * p.radius);
            assert!(p.buffer_bytes <= 4 * MB);
            assert!(p.kappa.is_finite());
        }
        // Deeper dim_T never enlarges the block edge.
        for w in cands.windows(2) {
            assert!(w[1].dim_xy <= w[0].dim_xy);
        }
        // Bad inputs or hopeless budgets yield an empty set, not a panic.
        assert!(candidate_plans(f64::NAN, 0.29, 4 * MB, 4, 1, 4).is_empty());
        assert!(candidate_plans(0.88, 0.1433, 100, 160, 1, 4).is_empty());
    }

    #[test]
    fn preferred_schedule_follows_the_regime() {
        // Paper regime: R = 1, big planes — the lag schedule itself.
        assert_eq!(preferred_schedule(1, 4, 512 * 512), ScheduleKind::Lag35d);
        // Serial runs never pay for barriers, so small planes alone do
        // not flip the choice.
        assert_eq!(preferred_schedule(1, 1, 16 * 16), ScheduleKind::Lag35d);
        // Wide stencils: the wavefront's ring is strictly smaller.
        assert_eq!(preferred_schedule(2, 4, 512 * 512), ScheduleKind::Wavefront);
        let r = 2;
        assert!(
            ScheduleKind::Wavefront.schedule().ring_slots(r)
                < ScheduleKind::Lag35d.schedule().ring_slots(r)
        );
        // Many threads on tiny planes: barrier-bound, span the barriers.
        assert_eq!(preferred_schedule(1, 16, 32 * 32), ScheduleKind::Diamond);
        assert_eq!(preferred_schedule(2, 16, 32 * 32), ScheduleKind::Diamond);
    }

    #[test]
    fn plan_source_round_trips() {
        for src in [PlanSource::Analytical, PlanSource::Tuned] {
            assert_eq!(PlanSource::parse(src.as_str()), Some(src));
            assert_eq!(src.to_string(), src.as_str());
        }
        assert_eq!(
            PlanSource::parse("analytical"),
            Some(PlanSource::Analytical)
        );
        assert_eq!(PlanSource::parse("tuned"), Some(PlanSource::Tuned));
        assert_eq!(PlanSource::parse("oracle"), None);
    }
}
