//! # threefive-core — 3.5-D blocking for stencil computations
//!
//! Implementation of the central contribution of Nguyen, Satish, Chhugani,
//! Kim, Dubey, *"3.5-D Blocking Optimization for Stencil Computations on
//! Modern CPUs and GPUs"* (SC 2010): 2.5-D spatial blocking (block XY,
//! stream Z) combined with 1-D temporal blocking, a planner that chooses
//! the blocking parameters from machine and kernel byte/op ratios, and a
//! thread-parallel executor in which **every** thread works on **every**
//! time level of **every** XY sub-plane.
//!
//! ## Module map
//!
//! * [`kernel`] — the [`kernel::StencilKernel`] trait and
//!   the paper's kernels: 7-point, 27-point, and a generic star stencil of
//!   arbitrary radius used to exercise the machinery at `R > 1`.
//! * [`planner`] — Eqs. 1–4 and all overestimation (κ) formulas for 3-D,
//!   2.5-D, 4-D and 3.5-D blocking.
//! * [`exec`] — the executor ladder, every rung verified against the
//!   reference sweep:
//!   1. [`exec::reference_sweep`] — scalar ground truth;
//!   2. [`exec::simd_sweep`] — DLP only (no blocking);
//!   3. [`exec::blocked3d_sweep`] — classic 3-D spatial blocking;
//!   4. [`exec::blocked25d_sweep`] — 2.5-D spatial blocking (§V-A3);
//!   5. [`exec::temporal_sweep`] — temporal-only blocking (Habich-style);
//!   6. [`exec::blocked4d_sweep`] — 4-D (3-D space + time) baseline;
//!   7. [`exec::blocked35d_sweep`] — serial 3.5-D pipeline (§V-E);
//!   8. [`exec::parallel35d_sweep`] — the full parallel 3.5-D executor.
//! * [`stats`] — analytic DRAM-traffic/op accounting per executor, used by
//!   the machine-model figures.
//!
//! ## Boundary semantics
//!
//! All executors implement Jacobi sweeps with **Dirichlet (time-invariant)
//! boundaries**: grid points within distance `R` of any face keep their
//! initial values forever, matching the paper's "z₀ (boundary condition)
//! does not change with time".

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod faults;
pub mod kernel;
pub mod planner;
pub mod solve;
pub mod stats;
pub mod verify;

pub use error::ExecError;
pub use kernel::{GenericStar, OpCount, SevenPoint, StencilKernel, TwentySevenPoint};
pub use planner::{plan_35d, plan_35d_forced, plan_35d_optimal, Plan35D, PlanError};
pub use solve::{solve_steady, try_solve_steady, SteadyState};
pub use verify::{check_finite, verify_executor, Divergence};
