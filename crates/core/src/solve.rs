//! Iterate-to-steady-state driver.
//!
//! Stencil sweeps in production often run "until converged" rather than a
//! fixed step count; this driver wraps the 3.5-D executor with a residual
//! check so boundary-value problems (Laplace/Poisson via Jacobi) can be
//! solved directly. The residual is checked every `dim_T`-aligned batch,
//! so temporal blocking keeps its full benefit between checks.

use std::time::Duration;

use threefive_grid::{DoubleGrid, Real};
use threefive_sync::{Observer, ThreadTeam};

use crate::error::ExecError;
use crate::exec::{try_parallel35d_sweep, Blocking35};
use crate::kernel::StencilKernel;

/// Outcome of [`solve_steady`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SteadyState {
    /// Time steps executed.
    pub steps: usize,
    /// Final residual: max |Δ| per point over the last batch, scaled by
    /// the batch length (an estimate of the per-step change).
    pub residual: f64,
    /// Whether `residual <= tol` was reached before `max_steps`.
    pub converged: bool,
}

/// Advances `grids` in batches of `check_every` steps with the parallel
/// 3.5-D executor until the per-step change drops to `tol` (L∞ over the
/// whole grid) or `max_steps` is exhausted.
///
/// # Panics
/// Panics if `check_every == 0` or if the parallel substrate fails; see
/// [`try_solve_steady`] for the non-panicking variant.
pub fn solve_steady<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    blocking: Blocking35,
    team: Option<&ThreadTeam>,
    tol: f64,
    max_steps: usize,
    check_every: usize,
) -> SteadyState {
    match try_solve_steady(
        kernel,
        grids,
        blocking,
        team,
        tol,
        max_steps,
        check_every,
        None,
    ) {
        Ok(out) => out,
        Err(ExecError::ZeroCheckInterval) => {
            panic!("solve_steady: check_every must be positive")
        }
        Err(e) => panic!("solve_steady: {e}"),
    }
}

/// Fault-tolerant [`solve_steady`]: invalid arguments and executor
/// failures surface as [`ExecError`] instead of panics.
///
/// `deadline`, when set, bounds how long each batch's barrier episodes may
/// wait on a stalled member (see [`try_parallel35d_sweep`]).
/// With `max_steps == 0` the driver returns immediately (zero steps, not
/// converged) without touching — or snapshotting — the grid.
#[allow(clippy::too_many_arguments)]
pub fn try_solve_steady<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    blocking: Blocking35,
    team: Option<&ThreadTeam>,
    tol: f64,
    max_steps: usize,
    check_every: usize,
    deadline: Option<Duration>,
) -> Result<SteadyState, ExecError> {
    if check_every == 0 {
        return Err(ExecError::ZeroCheckInterval);
    }
    if max_steps == 0 {
        // Early out before the full-grid snapshot clone below: a zero-step
        // solve is a cheap no-op, not an O(grid) allocation.
        return Ok(SteadyState {
            steps: 0,
            residual: f64::INFINITY,
            converged: false,
        });
    }
    let fallback;
    let team = match team {
        Some(t) => t,
        None => {
            fallback = ThreadTeam::new(1);
            &fallback
        }
    };
    let dim = grids.dim();
    let full = dim.full_region();
    let mut snapshot = grids.src().clone();
    let mut steps = 0usize;
    let mut last_delta = f64::INFINITY;
    while steps < max_steps {
        let batch = check_every.min(max_steps - steps);
        try_parallel35d_sweep(
            kernel,
            grids,
            batch,
            blocking,
            team,
            deadline,
            &Observer::disabled(),
        )?;
        steps += batch;
        last_delta = grids.src().max_abs_diff(&snapshot, &full) / batch as f64;
        if last_delta <= tol {
            return Ok(SteadyState {
                steps,
                residual: last_delta,
                converged: true,
            });
        }
        snapshot.copy_from(grids.src());
    }
    Ok(SteadyState {
        steps,
        residual: last_delta,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SevenPoint;
    use threefive_grid::{Dim3, Grid3};

    /// Boundary ramp in Y, zero interior: the Jacobi iteration must relax
    /// to the exact linear ramp (the unique harmonic function matching
    /// the boundary).
    fn ramp_problem(n: usize) -> (DoubleGrid<f64>, Grid3<f64>) {
        let d = Dim3::cube(n);
        let ramp = |y: usize| y as f64 / (n - 1) as f64 * 100.0;
        let init = Grid3::from_fn(d, |x, y, z| {
            if d.is_interior(x, y, z, 1) {
                0.0
            } else {
                ramp(y)
            }
        });
        let exact = Grid3::from_fn(d, |_, y, _| ramp(y));
        (DoubleGrid::from_initial(init), exact)
    }

    #[test]
    fn laplace_relaxes_to_the_linear_ramp() {
        let n = 12;
        let (mut grids, exact) = ramp_problem(n);
        let k = SevenPoint::<f64>::heat(1.0 / 6.0); // pure-neighbor Jacobi
        let out = solve_steady(
            &k,
            &mut grids,
            Blocking35::new(n, n, 2),
            None,
            1e-10,
            20_000,
            50,
        );
        assert!(out.converged, "residual {}", out.residual);
        let err = grids.src().max_abs_diff(&exact, &exact.dim().full_region());
        assert!(err < 1e-6, "max deviation from analytic ramp: {err}");
    }

    #[test]
    fn max_steps_bound_is_respected() {
        let (mut grids, _) = ramp_problem(10);
        let k = SevenPoint::<f64>::heat(1.0 / 6.0);
        let out = solve_steady(
            &k,
            &mut grids,
            Blocking35::new(10, 10, 2),
            None,
            1e-30, // unreachable tolerance
            64,
            10,
        );
        assert!(!out.converged);
        assert_eq!(out.steps, 64);
    }

    #[test]
    fn zero_check_interval_is_a_typed_error() {
        let (mut grids, _) = ramp_problem(8);
        let k = SevenPoint::<f64>::heat(1.0 / 6.0);
        let err = try_solve_steady(
            &k,
            &mut grids,
            Blocking35::new(8, 8, 2),
            None,
            1e-6,
            100,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::ZeroCheckInterval);
    }

    #[test]
    fn zero_max_steps_returns_without_work() {
        let (mut grids, _) = ramp_problem(8);
        let before = grids.src().clone();
        let k = SevenPoint::<f64>::heat(1.0 / 6.0);
        let out = try_solve_steady(
            &k,
            &mut grids,
            Blocking35::new(8, 8, 2),
            None,
            1e-6,
            0,
            10,
            None,
        )
        .unwrap();
        assert_eq!(out.steps, 0);
        assert!(!out.converged);
        assert_eq!(grids.src().as_slice(), before.as_slice());
    }

    #[test]
    fn already_steady_field_converges_immediately() {
        let d = Dim3::cube(8);
        let mut grids = DoubleGrid::from_initial(Grid3::splat(d, 5.0));
        let k = SevenPoint::<f64>::heat(0.125);
        let out = solve_steady(
            &k,
            &mut grids,
            Blocking35::new(8, 8, 2),
            None,
            1e-12,
            100,
            4,
        );
        assert!(out.converged);
        assert_eq!(out.steps, 4);
        assert!(out.residual < 1e-14);
    }
}
