//! Typed errors for the fault-tolerant executor entry points.

use std::fmt;

use threefive_sync::SyncError;

use crate::planner::PlanError;

/// Failures surfaced by the `try_`-returning executor entry points
/// ([`crate::exec::try_parallel35d_sweep`], [`crate::solve::try_solve_steady`],
/// [`crate::exec::Blocking35::try_new`]).
///
/// The panicking wrappers (`parallel35d_sweep`, `solve_steady`,
/// `Blocking35::new`) keep their historical behavior by unwrapping these;
/// robust callers — the facade's fallback ladder in particular — match on
/// the variants to decide whether to degrade to a simpler executor or to
/// abort.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A blocking parameter was zero; the 3.5-D geometry is undefined.
    InvalidBlocking {
        /// Requested owned-tile extent along X.
        dim_x: usize,
        /// Requested owned-tile extent along Y.
        dim_y: usize,
        /// Requested temporal factor.
        dim_t: usize,
    },
    /// `check_every == 0` was passed to the steady-state driver, which
    /// would never test the residual.
    ZeroCheckInterval,
    /// The planner rejected the configuration (compute-bound already, or
    /// the cache cannot hold the minimum working set).
    Plan(PlanError),
    /// The parallel substrate failed: a team member panicked, a barrier
    /// was poisoned, or a watchdog deadline elapsed. The grid contents are
    /// unspecified after this error (a partially-committed chunk); callers
    /// that need the pre-call state must snapshot it first, as the
    /// facade's fallback ladder does.
    Sync(SyncError),
    /// A grid value was NaN or infinite.
    NonFinite {
        /// Coordinate `(x, y, z)` of the first non-finite value in
        /// row-major (z-outermost) scan order.
        at: (usize, usize, usize),
        /// The offending value, widened to `f64`.
        value: f64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            } => write!(
                f,
                "invalid 3.5-D blocking {dim_x}x{dim_y} dimT={dim_t}: \
                 every parameter must be positive"
            ),
            ExecError::ZeroCheckInterval => {
                write!(f, "solve_steady: check_every must be positive")
            }
            ExecError::Plan(e) => write!(f, "planner rejected configuration: {e}"),
            ExecError::Sync(e) => write!(f, "parallel execution failed: {e}"),
            ExecError::NonFinite { at, value } => write!(
                f,
                "non-finite value {value} at {at:?}; grid is numerically corrupt"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            ExecError::Sync(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<SyncError> for ExecError {
    fn from(e: SyncError) -> Self {
        ExecError::Sync(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_informative() {
        let e = ExecError::InvalidBlocking {
            dim_x: 0,
            dim_y: 4,
            dim_t: 2,
        };
        assert!(e.to_string().contains("0x4"));
        let e = ExecError::NonFinite {
            at: (1, 2, 3),
            value: f64::NAN,
        };
        assert!(e.to_string().contains("(1, 2, 3)"));
        assert!(ExecError::ZeroCheckInterval
            .to_string()
            .contains("check_every"));
    }

    #[test]
    fn sources_chain_through_wrappers() {
        let e: ExecError = SyncError::BarrierPoisoned.into();
        assert!(e.source().is_some());
        let e: ExecError = PlanError::AlreadyComputeBound {
            gamma: 1.0,
            big_gamma: 2.0,
        }
        .into();
        assert!(e.source().is_some());
        assert!(ExecError::ZeroCheckInterval.source().is_none());
    }
}
