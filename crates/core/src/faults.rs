//! Runtime fault-injection harness for the fault-tolerance test suite.
//!
//! Production configurations never arm a fault, and the only cost they pay
//! is one relaxed atomic load per (member × outer step) inside the
//! parallel pipeline — noise next to a barrier episode. Tests arm a
//! [`FaultPlan`] through [`inject`], which returns an RAII [`FaultGuard`]
//! so a failing test cannot leak an armed fault into the next one.
//!
//! Faults fire **at most once** per arming: the first team member whose
//! `(tid, outer_step)` matches claims the fault with a compare-exchange
//! and then panics or stalls. This models the paper-relevant failure
//! modes of the 3.5-D executor — a worker dying mid-pipeline and a worker
//! wedging while its peers spin at the per-Z-step barrier — without any
//! test-only compilation of the executor itself.
//!
//! [`corrupt_plane`] covers the third failure class (numerical
//! corruption): it poisons a Z plane with NaNs so the
//! [`check_finite`](crate::verify::check_finite) guard has something to
//! find.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

use threefive_grid::{Grid3, Real};

/// What the armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The matching team member panics (message `"injected fault"`).
    Panic,
    /// The matching team member sleeps for this long before continuing —
    /// long enough to trip a watchdog deadline, short enough that the
    /// member eventually drains and the team heals.
    Stall(Duration),
}

/// A single scheduled fault: member `tid`, pipeline outer step `step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Team member that should fail (caller is `tid == 0`).
    pub tid: usize,
    /// Pipeline outer step (Z-step index within a tile × chunk) at which
    /// the fault fires.
    pub step: usize,
    /// Failure mode.
    pub kind: FaultKind,
}

// Armed state. `STATE` is the fast-path gate: DISARMED means `fault_point`
// returns after one relaxed load. ARMED → FIRED transitions through a
// compare-exchange so exactly one matching member fires.
const DISARMED: u8 = 0;
const ARMED: u8 = 1;
const FIRED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(DISARMED);
static FAULT_TID: AtomicUsize = AtomicUsize::new(0);
static FAULT_STEP: AtomicUsize = AtomicUsize::new(0);
/// 0 = panic; otherwise stall milliseconds.
static FAULT_STALL_MS: AtomicU64 = AtomicU64::new(0);

/// Arms `plan` process-wide and returns a guard that disarms it on drop.
///
/// Only one fault can be armed at a time; arming while armed panics (the
/// harness is for single-threaded test orchestration, not concurrent
/// fuzzing).
pub fn inject(plan: FaultPlan) -> FaultGuard {
    FAULT_TID.store(plan.tid, Ordering::Relaxed);
    FAULT_STEP.store(plan.step, Ordering::Relaxed);
    FAULT_STALL_MS.store(
        match plan.kind {
            FaultKind::Panic => 0,
            FaultKind::Stall(d) => d.as_millis().max(1) as u64,
        },
        Ordering::Relaxed,
    );
    // Release: publish the plan fields before the armed flag.
    let prev = STATE.swap(ARMED, Ordering::Release);
    assert_ne!(prev, ARMED, "faults::inject: a fault is already armed");
    FaultGuard { _priv: () }
}

/// Disarms the fault when dropped (whether or not it fired).
#[must_use = "dropping the guard immediately disarms the fault"]
pub struct FaultGuard {
    _priv: (),
}

impl FaultGuard {
    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        STATE.load(Ordering::Acquire) == FIRED
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        STATE.store(DISARMED, Ordering::Release);
    }
}

/// Test point called by the parallel pipeline once per member per outer
/// step. Disarmed cost: one relaxed load.
#[inline]
pub fn fault_point(tid: usize, step: usize) {
    if STATE.load(Ordering::Relaxed) != ARMED {
        return;
    }
    fault_point_slow(tid, step);
}

#[cold]
fn fault_point_slow(tid: usize, step: usize) {
    if FAULT_TID.load(Ordering::Relaxed) != tid || FAULT_STEP.load(Ordering::Relaxed) != step {
        return;
    }
    // Claim the fault: exactly one member fires even if several match
    // (e.g. the same step of a later tile).
    if STATE
        .compare_exchange(ARMED, FIRED, Ordering::AcqRel, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    let stall_ms = FAULT_STALL_MS.load(Ordering::Relaxed);
    if stall_ms == 0 {
        panic!("injected fault");
    }
    std::thread::sleep(Duration::from_millis(stall_ms));
}

/// Overwrites plane `z` of `grid` with NaNs — numerical-corruption
/// injection for exercising [`check_finite`](crate::verify::check_finite).
///
/// # Panics
/// Panics if `z` is out of range.
pub fn corrupt_plane<T: Real>(grid: &mut Grid3<T>, z: usize) {
    let nan = T::from_f64(f64::NAN);
    for v in grid.plane_mut(z) {
        *v = nan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_grid::Dim3;

    // The global harness state is process-wide, so these tests serialize
    // through a mutex rather than relying on `--test-threads=1`.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disarmed_fault_point_is_inert() {
        let _l = LOCK.lock().unwrap();
        for tid in 0..4 {
            for step in 0..4 {
                fault_point(tid, step); // must not panic
            }
        }
    }

    #[test]
    fn fires_once_at_the_matching_point_only() {
        let _l = LOCK.lock().unwrap();
        let guard = inject(FaultPlan {
            tid: 2,
            step: 3,
            kind: FaultKind::Panic,
        });
        fault_point(2, 2); // wrong step
        fault_point(1, 3); // wrong tid
        assert!(!guard.fired());
        let caught = std::panic::catch_unwind(|| fault_point(2, 3));
        assert!(caught.is_err());
        assert!(guard.fired());
        fault_point(2, 3); // already fired: inert
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _l = LOCK.lock().unwrap();
        {
            let _g = inject(FaultPlan {
                tid: 0,
                step: 0,
                kind: FaultKind::Stall(Duration::from_millis(1)),
            });
        }
        fault_point(0, 0); // disarmed again: inert
    }

    #[test]
    fn stall_fault_delays_instead_of_panicking() {
        let _l = LOCK.lock().unwrap();
        let guard = inject(FaultPlan {
            tid: 1,
            step: 0,
            kind: FaultKind::Stall(Duration::from_millis(20)),
        });
        let t0 = std::time::Instant::now();
        fault_point(1, 0);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(guard.fired());
    }

    #[test]
    fn corrupt_plane_writes_nans() {
        let mut g = Grid3::<f32>::splat(Dim3::cube(4), 1.0);
        corrupt_plane(&mut g, 2);
        assert!(g.plane(2).iter().all(|v| v.is_nan()));
        assert!(g.plane(1).iter().all(|v| *v == 1.0));
    }
}
