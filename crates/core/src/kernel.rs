//! Stencil kernels (paper §IV).
//!
//! A kernel knows its radius, its per-point operation counts (the paper
//! counts arithmetic *and* memory instructions as "ops"), and how to apply
//! itself — pointwise for the reference sweep and row-wise for the blocked
//! executors, which hand it a stack of `2R+1` XY planes.
//!
//! # Determinism
//!
//! Every kernel evaluates its floating-point expression in one documented
//! association order, identical in `apply_point`, the scalar tail of
//! `apply_row` and each SIMD lane. Executors may therefore be compared
//! **bit-exactly** against the reference sweep.

use std::ops::Range;

use threefive_grid::{Grid3, Real};
use threefive_simd::{vector_prefix_len, NativeF32, NativeF64, Packed, SimdReal};

/// Per-grid-point operation counts, following the paper's convention that
/// one "op" is one executed instruction — arithmetic or memory (§III-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCount {
    /// Floating-point multiplications.
    pub mul: usize,
    /// Floating-point additions.
    pub add: usize,
    /// Loads from the source grid.
    pub loads: usize,
    /// Stores to the destination grid.
    pub stores: usize,
}

impl OpCount {
    /// Total ops per point (the denominator of bytes/op).
    pub const fn total(&self) -> usize {
        self.mul + self.add + self.loads + self.stores
    }

    /// Floating-point operations only.
    pub const fn flops(&self) -> usize {
        self.mul + self.add
    }
}

/// A Jacobi-type stencil computable on XY-plane stacks.
pub trait StencilKernel<T: Real>: Send + Sync {
    /// Stencil radius `R` in the L∞ norm: the kernel may read any point
    /// within `±R` along each axis.
    fn radius(&self) -> usize;

    /// Per-point operation counts (paper §IV).
    fn ops(&self) -> OpCount;

    /// Reference application at one interior point of `src`.
    fn apply_point(&self, src: &Grid3<T>, x: usize, y: usize, z: usize) -> T;

    /// Row application on a plane stack.
    ///
    /// `planes` holds `2R+1` XY planes of width `nx` (ordered by Z offset
    /// `-R ..= +R`, index `R` is the center plane); `y` is the row within
    /// those planes, and `out[i]` receives the stencil value at
    /// `x = xs.start + i`. All accessed coordinates must be in bounds:
    /// `xs.start >= R`, `xs.end + R <= nx`, `R <= y < ny - R`.
    ///
    /// # Panics
    /// Panics if `planes.len() != 2R+1` or `out.len() != xs.len()`.
    fn apply_row(&self, planes: &[&[T]], nx: usize, y: usize, xs: Range<usize>, out: &mut [T]);
}

// ---------------------------------------------------------------------------
// 7-point stencil
// ---------------------------------------------------------------------------

/// The 7-point stencil (paper §IV-A1):
///
/// ```text
/// B(x,y,z) = α·A(x,y,z) + β·(A(x±1,y,z) + A(x,y±1,z) + A(x,y,z±1))
/// ```
///
/// 16 ops/point: 2 mul, 6 add, 7 loads, 1 store. Association order:
/// `sum = ((((xm + xp) + ym) + yp) + zm) + zp`, `out = α·c + β·sum`.
#[derive(Clone, Copy, Debug)]
pub struct SevenPoint<T> {
    /// Center weight α.
    pub alpha: T,
    /// Neighbor weight β.
    pub beta: T,
}

impl<T: Real> SevenPoint<T> {
    /// Creates the kernel with weights `alpha`, `beta`.
    pub fn new(alpha: T, beta: T) -> Self {
        Self { alpha, beta }
    }

    /// The heat-equation-style instance `α = 1 - 6λ`, `β = λ` which keeps
    /// grid values bounded for `0 < λ ≤ 1/6` (used by examples and tests).
    pub fn heat(lambda: T) -> Self {
        let six = T::from_f64(6.0);
        Self {
            alpha: T::ONE - six * lambda,
            beta: lambda,
        }
    }
}

/// Shared row body for the 7-point kernel, generic over the lane type so
/// the SSE and portable builds use identical code.
#[inline(always)]
fn seven_row<V: SimdReal>(
    alpha: V::Scalar,
    beta: V::Scalar,
    planes: &[&[V::Scalar]],
    nx: usize,
    y: usize,
    xs: Range<usize>,
    out: &mut [V::Scalar],
) {
    assert_eq!(planes.len(), 3, "SevenPoint: need exactly 3 planes");
    assert_eq!(out.len(), xs.len(), "SevenPoint: out/xs length mismatch");
    let (zm, c, zp) = (planes[0], planes[1], planes[2]);
    let row = y * nx;
    let row_n = (y - 1) * nx;
    let row_s = (y + 1) * nx;
    let va = V::splat(alpha);
    let vb = V::splat(beta);
    let x0 = xs.start;
    let main = vector_prefix_len::<V>(xs.len());
    let mut i = 0;
    while i < main {
        let x = x0 + i;
        let xm = V::loadu(&c[row + x - 1..]);
        let xp = V::loadu(&c[row + x + 1..]);
        let ym = V::loadu(&c[row_n + x..]);
        let yp = V::loadu(&c[row_s + x..]);
        let vzm = V::loadu(&zm[row + x..]);
        let vzp = V::loadu(&zp[row + x..]);
        let sum = ((((xm + xp) + ym) + yp) + vzm) + vzp;
        let ctr = V::loadu(&c[row + x..]);
        (va * ctr + vb * sum).storeu(&mut out[i..]);
        i += V::LANES;
    }
    while i < xs.len() {
        let x = x0 + i;
        let sum = ((((c[row + x - 1] + c[row + x + 1]) + c[row_n + x]) + c[row_s + x])
            + zm[row + x])
            + zp[row + x];
        out[i] = alpha * c[row + x] + beta * sum;
        i += 1;
    }
}

/// AVX2-compiled instantiation of the shared row body: eight f32 lanes per
/// iteration, 256-bit loads/stores. Per-lane operation order is identical
/// to the SSE and scalar paths, so results stay bit-exact — only the
/// number of lanes processed per instruction changes (the paper's
/// "scales near-linearly with the SIMD width").
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn seven_row_avx2(
    alpha: f32,
    beta: f32,
    planes: &[&[f32]],
    nx: usize,
    y: usize,
    xs: Range<usize>,
    out: &mut [f32],
) {
    // Inside this target-feature scope LLVM widens the 8-lane `Packed`
    // loops to 256-bit AVX instructions.
    seven_row::<threefive_simd::F32x8>(alpha, beta, planes, nx, y, xs, out);
}

/// Whether the AVX2 fast path is available (memoized feature detection).
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

impl StencilKernel<f32> for SevenPoint<f32> {
    fn radius(&self) -> usize {
        1
    }

    fn ops(&self) -> OpCount {
        OpCount {
            mul: 2,
            add: 6,
            loads: 7,
            stores: 1,
        }
    }

    #[inline]
    fn apply_point(&self, src: &Grid3<f32>, x: usize, y: usize, z: usize) -> f32 {
        let sum = ((((src.get(x - 1, y, z) + src.get(x + 1, y, z)) + src.get(x, y - 1, z))
            + src.get(x, y + 1, z))
            + src.get(x, y, z - 1))
            + src.get(x, y, z + 1);
        self.alpha * src.get(x, y, z) + self.beta * sum
    }

    #[inline]
    fn apply_row(&self, planes: &[&[f32]], nx: usize, y: usize, xs: Range<usize>, out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: feature presence just checked.
            unsafe { seven_row_avx2(self.alpha, self.beta, planes, nx, y, xs, out) };
            return;
        }
        seven_row::<NativeF32>(self.alpha, self.beta, planes, nx, y, xs, out);
    }
}

impl StencilKernel<f64> for SevenPoint<f64> {
    fn radius(&self) -> usize {
        1
    }

    fn ops(&self) -> OpCount {
        OpCount {
            mul: 2,
            add: 6,
            loads: 7,
            stores: 1,
        }
    }

    #[inline]
    fn apply_point(&self, src: &Grid3<f64>, x: usize, y: usize, z: usize) -> f64 {
        let sum = ((((src.get(x - 1, y, z) + src.get(x + 1, y, z)) + src.get(x, y - 1, z))
            + src.get(x, y + 1, z))
            + src.get(x, y, z - 1))
            + src.get(x, y, z + 1);
        self.alpha * src.get(x, y, z) + self.beta * sum
    }

    #[inline]
    fn apply_row(&self, planes: &[&[f64]], nx: usize, y: usize, xs: Range<usize>, out: &mut [f64]) {
        seven_row::<NativeF64>(self.alpha, self.beta, planes, nx, y, xs, out);
    }
}

// ---------------------------------------------------------------------------
// 27-point stencil
// ---------------------------------------------------------------------------

/// The 27-point stencil (paper §IV-A2): all points of the 3×3×3 cube, with
/// separate weights for the center, the 6 face neighbors, the 12 edge
/// neighbors and the 8 corner neighbors.
///
/// 58 ops/point: 4 mul, 26 add, 27 loads, 1 store. Association order: each
/// of the three neighbor classes is summed in `(dz, dy, dx)` lexicographic
/// order, then `out = ((α·c + β·faces) + γ·edges) + δ·corners`.
#[derive(Clone, Copy, Debug)]
pub struct TwentySevenPoint<T> {
    /// Center weight α.
    pub center: T,
    /// Face-neighbor weight β (Manhattan distance 1).
    pub face: T,
    /// Edge-neighbor weight γ (Manhattan distance 2).
    pub edge: T,
    /// Corner-neighbor weight δ (Manhattan distance 3).
    pub corner: T,
}

impl<T: Real> TwentySevenPoint<T> {
    /// Creates the kernel with the four class weights.
    pub fn new(center: T, face: T, edge: T, corner: T) -> Self {
        Self {
            center,
            face,
            edge,
            corner,
        }
    }

    /// A smoothing instance whose 27 weights sum to 1.
    pub fn smoothing() -> Self {
        Self {
            center: T::from_f64(0.5),
            face: T::from_f64(0.25 / 6.0),
            edge: T::from_f64(0.15 / 12.0),
            corner: T::from_f64(0.10 / 8.0),
        }
    }

    /// Sums one neighbor class at `(x, y)` given three rows per plane.
    /// `class` selects by Manhattan distance of `(dx, dy, dz)`: 1 = face,
    /// 2 = edge, 3 = corner.
    #[inline(always)]
    fn class_sum(planes: &[&[T]], nx: usize, y: usize, x: usize, class: u32) -> T {
        let mut acc = T::ZERO;
        for (pz, plane) in planes.iter().enumerate() {
            let dz = pz as i32 - 1;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let dist = dz.unsigned_abs() + dy.unsigned_abs() + dx.unsigned_abs();
                    if dist == class {
                        let yy = (y as i32 + dy) as usize;
                        let xx = (x as i32 + dx) as usize;
                        acc += plane[yy * nx + xx];
                    }
                }
            }
        }
        acc
    }
}

/// Vectorized 27-point row body: lane groups accumulate each neighbor
/// class over taps visited in the exact `(dz, dy, dx)` lexicographic order
/// of [`TwentySevenPoint::class_sum`], then combine with the class
/// weights — so each lane's result is bit-identical to the scalar path.
#[inline(always)]
fn twenty_seven_row<V: SimdReal>(
    k: &TwentySevenPoint<V::Scalar>,
    planes: &[&[V::Scalar]],
    nx: usize,
    y: usize,
    xs: Range<usize>,
    out: &mut [V::Scalar],
) {
    let x0 = xs.start;
    let len = xs.len();
    let main = vector_prefix_len::<V>(len);

    #[inline(always)]
    fn class_sum_v<V: SimdReal>(
        planes: &[&[V::Scalar]],
        nx: usize,
        y: usize,
        x: usize,
        class: u32,
    ) -> V {
        let mut acc = V::zero();
        for (pz, plane) in planes.iter().enumerate() {
            let dz = pz as i32 - 1;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let dist = dz.unsigned_abs() + dy.unsigned_abs() + dx.unsigned_abs();
                    if dist == class {
                        let yy = (y as i32 + dy) as usize;
                        let xx = (x as i32 + dx) as usize;
                        acc = acc + V::loadu(&plane[yy * nx + xx..]);
                    }
                }
            }
        }
        acc
    }

    let wc = V::splat(k.center);
    let wf = V::splat(k.face);
    let we = V::splat(k.edge);
    let wd = V::splat(k.corner);
    let mut i = 0;
    while i < main {
        let x = x0 + i;
        let faces = class_sum_v::<V>(planes, nx, y, x, 1);
        let edges = class_sum_v::<V>(planes, nx, y, x, 2);
        let corners = class_sum_v::<V>(planes, nx, y, x, 3);
        let c = V::loadu(&planes[1][y * nx + x..]);
        (((wc * c + wf * faces) + we * edges) + wd * corners).storeu(&mut out[i..]);
        i += V::LANES;
    }
    while i < len {
        let x = x0 + i;
        let faces = TwentySevenPoint::class_sum(planes, nx, y, x, 1);
        let edges = TwentySevenPoint::class_sum(planes, nx, y, x, 2);
        let corners = TwentySevenPoint::class_sum(planes, nx, y, x, 3);
        let c = planes[1][y * nx + x];
        out[i] = ((k.center * c + k.face * faces) + k.edge * edges) + k.corner * corners;
        i += 1;
    }
}

impl<T: Real> StencilKernel<T> for TwentySevenPoint<T> {
    fn radius(&self) -> usize {
        1
    }

    fn ops(&self) -> OpCount {
        OpCount {
            mul: 4,
            add: 26,
            loads: 27,
            stores: 1,
        }
    }

    fn apply_point(&self, src: &Grid3<T>, x: usize, y: usize, z: usize) -> T {
        let planes = [src.plane(z - 1), src.plane(z), src.plane(z + 1)];
        let nx = src.dim().nx;
        let faces = Self::class_sum(&planes, nx, y, x, 1);
        let edges = Self::class_sum(&planes, nx, y, x, 2);
        let corners = Self::class_sum(&planes, nx, y, x, 3);
        ((self.center * src.get(x, y, z) + self.face * faces) + self.edge * edges)
            + self.corner * corners
    }

    fn apply_row(&self, planes: &[&[T]], nx: usize, y: usize, xs: Range<usize>, out: &mut [T]) {
        assert_eq!(planes.len(), 3, "TwentySevenPoint: need exactly 3 planes");
        assert_eq!(
            out.len(),
            xs.len(),
            "TwentySevenPoint: out/xs length mismatch"
        );
        // Dispatch by element width, as in the LBM row kernels: the 4- and
        // 2-lane bodies compile to packed SSE and accumulate taps in the
        // same (dz, dy, dx) order as `class_sum`, keeping results bit-exact
        // with `apply_point`.
        match T::BYTES {
            4 => twenty_seven_row::<Packed<T, 4>>(self, planes, nx, y, xs, out),
            _ => twenty_seven_row::<Packed<T, 2>>(self, planes, nx, y, xs, out),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic star stencil (arbitrary radius)
// ---------------------------------------------------------------------------

/// An axis-aligned star stencil of arbitrary radius `R`:
///
/// ```text
/// B(p) = w[0]·A(p) + Σ_{d=1..R} w[d]·(six axis neighbors at distance d)
/// ```
///
/// The paper's kernels both have `R = 1`; this kernel exercises the
/// blocking machinery (ring sizing, ghost shrinking, pipeline lag) at
/// larger radii, where the generalizations are easy to get wrong.
#[derive(Clone, Debug)]
pub struct GenericStar<T> {
    weights: Vec<T>,
}

impl<T: Real> GenericStar<T> {
    /// Creates the kernel from weights `w[0..=R]` (`w[0]` = center).
    ///
    /// # Panics
    /// Panics if `weights.len() < 2` (radius would be zero).
    pub fn new(weights: Vec<T>) -> Self {
        assert!(weights.len() >= 2, "GenericStar: need center + >=1 ring");
        Self { weights }
    }

    /// A bounded smoothing instance of radius `r` (weights sum to 1).
    pub fn smoothing(r: usize) -> Self {
        assert!(r >= 1);
        let ring = T::from_f64(0.5 / (6.0 * r as f64));
        let mut w = vec![ring; r + 1];
        w[0] = T::from_f64(0.5);
        Self::new(w)
    }
}

impl<T: Real> StencilKernel<T> for GenericStar<T> {
    fn radius(&self) -> usize {
        self.weights.len() - 1
    }

    fn ops(&self) -> OpCount {
        let r = self.radius();
        OpCount {
            mul: r + 1,
            add: 6 * r,
            loads: 6 * r + 1,
            stores: 1,
        }
    }

    fn apply_point(&self, src: &Grid3<T>, x: usize, y: usize, z: usize) -> T {
        let mut acc = self.weights[0] * src.get(x, y, z);
        for d in 1..=self.radius() {
            let w = self.weights[d];
            let ring = ((((src.get(x - d, y, z) + src.get(x + d, y, z)) + src.get(x, y - d, z))
                + src.get(x, y + d, z))
                + src.get(x, y, z - d))
                + src.get(x, y, z + d);
            acc += w * ring;
        }
        acc
    }

    fn apply_row(&self, planes: &[&[T]], nx: usize, y: usize, xs: Range<usize>, out: &mut [T]) {
        let r = self.radius();
        assert_eq!(planes.len(), 2 * r + 1, "GenericStar: plane count != 2R+1");
        assert_eq!(out.len(), xs.len(), "GenericStar: out/xs length mismatch");
        let center = planes[r];
        for (i, x) in xs.enumerate() {
            let mut acc = self.weights[0] * center[y * nx + x];
            for d in 1..=r {
                let w = self.weights[d];
                let ring = ((((center[y * nx + x - d] + center[y * nx + x + d])
                    + center[(y - d) * nx + x])
                    + center[(y + d) * nx + x])
                    + planes[r - d][y * nx + x])
                    + planes[r + d][y * nx + x];
                acc += w * ring;
            }
            out[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threefive_grid::Dim3;

    fn test_grid<T: Real>(d: Dim3) -> Grid3<T> {
        Grid3::from_fn(d, |x, y, z| {
            T::from_f64(((x * 31 + y * 17 + z * 7) % 23) as f64 * 0.25 - 2.0)
        })
    }

    /// apply_row must agree bit-exactly with apply_point for every kernel.
    fn row_matches_point<T: Real, K: StencilKernel<T>>(k: &K, d: Dim3) {
        let g = test_grid::<T>(d);
        let r = k.radius();
        let nx = d.nx;
        for z in r..d.nz - r {
            let planes: Vec<&[T]> = (z - r..=z + r).map(|zz| g.plane(zz)).collect();
            for y in r..d.ny - r {
                let mut out = vec![T::ZERO; nx - 2 * r];
                k.apply_row(&planes, nx, y, r..nx - r, &mut out);
                for (i, x) in (r..nx - r).enumerate() {
                    let expect = k.apply_point(&g, x, y, z);
                    assert!(
                        out[i] == expect,
                        "kernel row/point mismatch at ({x},{y},{z}): {} vs {}",
                        out[i],
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn seven_point_row_matches_point_f32() {
        row_matches_point::<f32, _>(&SevenPoint::new(0.4f32, 0.1), Dim3::new(13, 7, 5));
    }

    #[test]
    fn seven_point_row_matches_point_f64() {
        row_matches_point::<f64, _>(&SevenPoint::new(0.4f64, 0.1), Dim3::new(10, 6, 4));
    }

    #[test]
    fn twenty_seven_point_row_matches_point() {
        row_matches_point::<f32, _>(&TwentySevenPoint::<f32>::smoothing(), Dim3::new(9, 6, 5));
        row_matches_point::<f64, _>(&TwentySevenPoint::<f64>::smoothing(), Dim3::new(9, 6, 5));
    }

    #[test]
    fn generic_star_row_matches_point() {
        for r in 1..=3 {
            let k = GenericStar::<f64>::smoothing(r);
            let n = 4 * r + 3;
            row_matches_point::<f64, _>(&k, Dim3::new(n, n, n));
        }
    }

    #[test]
    fn generic_star_radius_one_matches_seven_point() {
        let d = Dim3::cube(6);
        let g = test_grid::<f64>(d);
        let seven = SevenPoint::new(0.5f64, 0.25);
        let star = GenericStar::new(vec![0.5f64, 0.25]);
        for (x, y, z) in d.interior_region(1).points() {
            // Same association order → bit-exact agreement.
            assert_eq!(
                seven.apply_point(&g, x, y, z),
                star.apply_point(&g, x, y, z)
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_path_is_bit_exact_with_sse_path() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to compare on this host
        }
        let d = Dim3::new(37, 9, 5); // odd width exercises the scalar tail
        let g = test_grid::<f32>(d);
        let planes = [g.plane(1), g.plane(2), g.plane(3)];
        let mut avx = vec![0.0f32; d.nx - 2];
        // SAFETY: feature detected above.
        unsafe { seven_row_avx2(0.37, 0.09, &planes, d.nx, 4, 1..d.nx - 1, &mut avx) };
        let mut sse = vec![0.0f32; d.nx - 2];
        seven_row::<NativeF32>(0.37, 0.09, &planes, d.nx, 4, 1..d.nx - 1, &mut sse);
        assert_eq!(avx, sse);
    }

    #[test]
    fn op_counts_match_paper() {
        // §IV-A1: 16 ops = 2 mul + 6 add + 7 loads + 1 store.
        let seven = SevenPoint::new(1.0f32, 1.0);
        assert_eq!(seven.ops().total(), 16);
        assert_eq!(seven.ops().flops(), 8);
        // §IV-A2: 58 ops = 4 mul + 26 add + 27 loads + 1 store.
        let twenty7 = TwentySevenPoint::<f32>::smoothing();
        assert_eq!(twenty7.ops().total(), 58);
        assert_eq!(twenty7.ops().flops(), 30);
    }

    #[test]
    fn heat_instance_conserves_on_uniform_field() {
        // α + 6β = 1 ⇒ a uniform field is a fixed point.
        let k = SevenPoint::<f64>::heat(0.125);
        let d = Dim3::cube(5);
        let g = Grid3::splat(d, 3.0);
        for (x, y, z) in d.interior_region(1).points() {
            assert!((k.apply_point(&g, x, y, z) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_27_is_convex_on_uniform_field() {
        let k = TwentySevenPoint::<f64>::smoothing();
        let d = Dim3::cube(4);
        let g = Grid3::splat(d, 2.0);
        assert!((k.apply_point(&g, 1, 1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need exactly 3 planes")]
    fn seven_point_rejects_wrong_plane_count() {
        let k = SevenPoint::new(1.0f32, 1.0);
        let plane = vec![0.0f32; 16];
        let mut out = vec![0.0f32; 2];
        k.apply_row(&[&plane, &plane], 4, 1, 1..3, &mut out);
    }
}
