//! The generic 3.5-D streaming engine shared by every workload.
//!
//! The paper's core claim is that **one** algorithm — 2.5-D XY blocking
//! plus 1-D temporal blocking streamed along Z (§V-C–§V-E) — serves both
//! the 7-point stencil and D3Q19 LBM. This module is that algorithm,
//! factored out once: the chunked tile loop, the staggered Z-stream
//! schedule, the plane rings, the per-step barrier discipline and the
//! fault-tolerance/observability plumbing all live here, while everything
//! workload-specific sits behind the [`PlaneKernel`] trait (what one time
//! level does to one streamed plane) and a [`BoundaryPolicy`] choice on
//! the unified [`TileGeom`]. Adding a new workload is a `PlaneKernel`
//! impl, not a third copy of the pipeline.
//!
//! # Schedule
//!
//! *When* each level touches which plane is delegated to a
//! [`super::schedule::Schedule`] implementation chosen through
//! [`Blocking35::schedule`]. The default is the paper's lag schedule
//! ([`super::schedule::Lag35`]): levels staggered along Z by `2R` planes,
//! so at outer step `s` level `t` (1-based) processes plane
//! `z = s − 2R(t−1)`, a chunk of `c` levels takes `nz + 2R(c−1)` outer
//! steps (one barrier episode per step), and each intermediate level
//! writes a [`PlaneRing`] of `max(2R+2, 3R+1)` slots (see the pipeline
//! module docs for why the paper's `2R+2` is generalized for `R ≥ 2`).
//! The wavefront and wavefront-diamond schedules swap in different
//! lag/ring/span arithmetic behind the same trait; the engine loop below
//! never hardcodes any of it.
//!
//! # Boundary policies
//!
//! * [`BoundaryPolicy::DirichletRim`] (stencil): compute ranges shrink by
//!   `R` per level away from loaded edges, and stop `R` short of grid
//!   faces — the fixed Dirichlet rim is copied, never recomputed.
//! * [`BoundaryPolicy::FaceExtended`] (LBM): compute ranges extend all
//!   the way to grid faces — boundary sites carry their own update rule
//!   (bounce-back / fixed), so every site is valid to "compute".
//!
//! # Fault tolerance
//!
//! [`tile_stream`] runs under PR 1's fault model for every workload: a
//! member panic poisons the barrier via an RAII guard, stalls are bounded
//! by the `deadline` watchdog in [`SweepCtx`], and the first
//! [`SyncError`] any member observes is returned after the whole team
//! drained cooperatively.

use std::ops::Range;
use std::sync::OnceLock;
use std::time::Duration;

use threefive_grid::partition::even_range;
use threefive_grid::{Dim3, PlaneRing, Real};
use threefive_sync::{Observer, SharedSlice, SpinBarrier, SyncError, ThreadTeam};

use crate::error::ExecError;
use crate::exec::elem_bytes;
use crate::exec::schedule::{Schedule, ScheduleKind};
use crate::faults;
use crate::stats::SweepStats;

/// Z-plane lag of time level `t` (1-based) behind the leading level, in
/// planes: `2R(t − 1)`.
///
/// This is the paper's staggered schedule (§V-C): the extra `R` beyond the
/// `R` strictly required by the data dependence is what lets all levels run
/// concurrently inside one barrier-separated step. This function — not a
/// copy of its arithmetic — is what both [`tile_stream`] and the symbolic
/// race checker in `threefive-analyze` evaluate, so the checker's model
/// cannot drift from the shipped schedule.
#[inline]
pub fn level_lag(r: usize, t: usize) -> usize {
    2 * r * (t - 1)
}

/// The global Z plane level `t` (1-based) processes at outer step `s`, or
/// `None` while the level is still warming up (`s < lag`) or already
/// drained past the grid (`z ≥ nz`).
#[inline]
pub fn plane_for_level(s: usize, r: usize, t: usize, nz: usize) -> Option<usize> {
    let lag = level_lag(r, t);
    if s < lag {
        return None;
    }
    let z = s - lag;
    (z < nz).then_some(z)
}

/// Outer steps one tile × chunk takes to stream `nz` planes through `c`
/// staggered levels: `nz + 2R(c − 1)` (one barrier episode per step).
#[inline]
pub fn outer_steps(nz: usize, r: usize, c: usize) -> usize {
    nz + level_lag(r, c)
}

/// Ring slots required for a radius-`r` pipeline: `max(2R+2, 3R+1)`.
///
/// With the `2R` lag a level's ring must simultaneously retain the
/// producer's current plane `z` and the consumer's read window
/// `[z−3R, z−R]`, i.e. `3R+1` distinct planes — which equals the paper's
/// `2R+2` at `R = 1` but exceeds it for `R ≥ 2`. Shared with the symbolic
/// race checker, whose ring-reuse proof quantifies over exactly this slot
/// count.
#[inline]
pub fn ring_slots(r: usize) -> usize {
    (2 * r + 2).max(3 * r + 1)
}

/// 3.5-D blocking parameters: owned XY tile dims, temporal factor and
/// the temporal-blocking schedule the engine runs them under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking35 {
    /// Owned tile extent along X.
    pub dim_x: usize,
    /// Owned tile extent along Y.
    pub dim_y: usize,
    /// Temporal blocking factor `dim_T`.
    pub dim_t: usize,
    /// Which lag/ring/barrier schedule streams the chunk.
    pub schedule: ScheduleKind,
}

impl Blocking35 {
    /// Creates blocking parameters under the paper's lag schedule.
    ///
    /// # Panics
    /// Panics if any parameter is zero; see
    /// [`try_new`](Blocking35::try_new) for the non-panicking variant.
    pub fn new(dim_x: usize, dim_y: usize, dim_t: usize) -> Self {
        match Self::try_new(dim_x, dim_y, dim_t) {
            Ok(b) => b,
            Err(_) => panic!("Blocking35: zero parameter"),
        }
    }

    /// Creates blocking parameters under the paper's lag schedule,
    /// rejecting zero extents with [`ExecError::InvalidBlocking`]
    /// instead of panicking.
    pub fn try_new(dim_x: usize, dim_y: usize, dim_t: usize) -> Result<Self, ExecError> {
        if dim_x == 0 || dim_y == 0 || dim_t == 0 {
            return Err(ExecError::InvalidBlocking {
                dim_x,
                dim_y,
                dim_t,
            });
        }
        Ok(Self {
            dim_x,
            dim_y,
            dim_t,
            schedule: ScheduleKind::Lag35d,
        })
    }

    /// The same blocking under a different temporal schedule.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }
}

/// How a workload treats grid faces in the per-level compute ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// Dirichlet stencil: an `R`-deep rim at every grid face holds fixed
    /// values; compute ranges stop `R` short of faces and the rim is
    /// copied into intermediate rings instead of recomputed.
    DirichletRim,
    /// LBM-style self-updating boundaries: compute ranges extend to the
    /// grid faces (boundary sites carry bounce-back / fixed rules), and
    /// valid ranges shrink only at *internal* tile edges.
    FaceExtended,
}

/// Geometry of one tile × chunk: owned/loaded regions and per-level
/// compute ranges, parameterized by the workload's [`BoundaryPolicy`].
///
/// The loaded footprint expands the owned tile by `R·c` on each internal
/// side (clipped at grid faces); level `t`'s valid region shrinks back by
/// `R` per level from internal edges, so the final level exactly covers
/// the owned tile.
#[derive(Clone, Copy, Debug)]
pub struct TileGeom {
    dim: Dim3,
    r: usize,
    c: usize,
    policy: BoundaryPolicy,
    gx0: usize,
    gx1: usize,
    gy0: usize,
    gy1: usize,
}

impl TileGeom {
    /// Geometry for the owned tile `ox × oy` of a radius-`r` kernel
    /// streaming a chunk of `c` time levels.
    pub fn new(
        dim: Dim3,
        r: usize,
        c: usize,
        policy: BoundaryPolicy,
        ox: Range<usize>,
        oy: Range<usize>,
    ) -> Self {
        let h = r * c;
        Self {
            dim,
            r,
            c,
            policy,
            gx0: ox.start.saturating_sub(h),
            gx1: (ox.end + h).min(dim.nx),
            gy0: oy.start.saturating_sub(h),
            gy1: (oy.end + h).min(dim.ny),
        }
    }

    /// Full grid dimensions.
    pub fn dim(&self) -> Dim3 {
        self.dim
    }
    /// Kernel radius `R`.
    pub fn radius(&self) -> usize {
        self.r
    }
    /// Time levels `c` in this chunk.
    pub fn levels(&self) -> usize {
        self.c
    }
    /// The boundary policy the compute ranges follow.
    pub fn policy(&self) -> BoundaryPolicy {
        self.policy
    }
    /// First global X of the loaded footprint.
    pub fn gx0(&self) -> usize {
        self.gx0
    }
    /// One past the last global X of the loaded footprint.
    pub fn gx1(&self) -> usize {
        self.gx1
    }
    /// First global Y of the loaded footprint.
    pub fn gy0(&self) -> usize {
        self.gy0
    }
    /// One past the last global Y of the loaded footprint.
    pub fn gy1(&self) -> usize {
        self.gy1
    }
    /// Loaded footprint extent along X.
    pub fn lx(&self) -> usize {
        self.gx1 - self.gx0
    }
    /// Loaded footprint extent along Y.
    pub fn ly(&self) -> usize {
        self.gy1 - self.gy0
    }

    fn face_edges(&self, n: usize) -> (usize, usize) {
        match self.policy {
            BoundaryPolicy::DirichletRim => (self.r, n - self.r),
            BoundaryPolicy::FaceExtended => (0, n),
        }
    }

    /// Global X compute range for level `t` (1-based): shrinks by `R` per
    /// level from internal loaded edges; at grid faces the policy decides
    /// (Dirichlet rim of width `R`, or the face itself for LBM).
    pub fn compute_x(&self, t: usize) -> Range<usize> {
        let (face_lo, face_hi) = self.face_edges(self.dim.nx);
        let lo = if self.gx0 == 0 {
            face_lo
        } else {
            self.gx0 + self.r * t
        };
        let hi = if self.gx1 == self.dim.nx {
            face_hi
        } else {
            self.gx1.saturating_sub(self.r * t)
        };
        lo..hi.max(lo)
    }

    /// Global Y compute range for level `t`.
    pub fn compute_y(&self, t: usize) -> Range<usize> {
        let (face_lo, face_hi) = self.face_edges(self.dim.ny);
        let lo = if self.gy0 == 0 {
            face_lo
        } else {
            self.gy0 + self.r * t
        };
        let hi = if self.gy1 == self.dim.ny {
            face_hi
        } else {
            self.gy1.saturating_sub(self.r * t)
        };
        lo..hi.max(lo)
    }

    /// Whether the final level commits anything (owned ∩ valid region).
    /// Always true under [`BoundaryPolicy::FaceExtended`] since the valid
    /// region then covers at least the owned tile.
    pub fn has_commit(&self) -> bool {
        !self.compute_x(self.c).is_empty() && !self.compute_y(self.c).is_empty()
    }

    /// Interior Z planes (the ones actually stenciled).
    pub fn interior_z(&self) -> Range<usize> {
        self.r..self.dim.nz - self.r
    }

    /// Analytic work/traffic accounting for this tile × chunk, under the
    /// Dirichlet stencil cost model (one `T` per point per pass).
    pub(crate) fn stats<T: Real>(&self) -> SweepStats {
        let nz_int = self.interior_z().len() as u64;
        let mut updates = 0u64;
        for t in 1..=self.c {
            updates += (self.compute_x(t).len() * self.compute_y(t).len()) as u64 * nz_int;
        }
        let commit = (self.compute_x(self.c).len() * self.compute_y(self.c).len()) as u64 * nz_int;
        let e = elem_bytes::<T>();
        SweepStats {
            stencil_updates: updates,
            committed_points: commit * self.c as u64,
            // Level 1 streams the loaded footprint in once per chunk; the
            // committed region streams out (with write-allocate).
            dram_bytes_read: (self.lx() * self.ly() * self.dim.nz) as u64 * e + commit * e,
            dram_bytes_written: commit * e,
        }
    }
}

/// Shared views over the intermediate-level plane rings of one tile.
///
/// Ring `i` (0-based) holds the output planes of level `i + 1`; the final
/// level writes the destination grid instead and has no ring. Planes are
/// stored with `comps` components each (`1` for scalar stencils, `Q` for
/// LBM), each component a contiguous `lx × ly` local tile plane.
pub struct Rings<'a, T> {
    views: Vec<SharedSlice<'a, T>>,
    slots: usize,
    comps: usize,
    plane_area: usize,
    lx: usize,
}

impl<'a, T: Real> Rings<'a, T> {
    fn new(
        rings: &'a mut [PlaneRing<T>],
        slots: usize,
        comps: usize,
        lx: usize,
        ly: usize,
    ) -> Self {
        Self {
            views: rings
                .iter_mut()
                .map(|rg| SharedSlice::new(rg.as_mut_slice()))
                .collect(),
            slots,
            comps,
            plane_area: lx * ly,
            lx,
        }
    }

    /// Local-tile row length (X extent) of every ring plane.
    pub fn lx(&self) -> usize {
        self.lx
    }

    fn base(&self, z: usize, q: usize) -> usize {
        (z % self.slots) * self.comps * self.plane_area + q * self.plane_area
    }

    /// Shared read of component `q` of the plane stored for global Z
    /// index `z` in ring `ring`.
    ///
    /// # Safety
    /// No thread may be writing this plane concurrently (guaranteed by
    /// the engine's slot-disjointness and per-step barriers).
    pub unsafe fn plane(&self, ring: usize, z: usize, q: usize) -> &[T] {
        // SAFETY: forwarded contract.
        unsafe { self.views[ring].slice(self.base(z, q), self.plane_area) }
    }

    /// Mutable access to `len` cells starting at local column `x0` of
    /// local row `row`, component `q`, of ring `ring`'s plane for `z`.
    ///
    /// # Safety
    /// The caller must own this row range exclusively for the current
    /// step (guaranteed by the per-thread row partition).
    // Interior mutability through SharedSlice; exclusivity is the contract.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(
        &self,
        ring: usize,
        z: usize,
        q: usize,
        row: usize,
        x0: usize,
        len: usize,
    ) -> &mut [T] {
        // SAFETY: forwarded contract.
        unsafe { self.views[ring].slice_mut(self.base(z, q) + row * self.lx + x0, len) }
    }
}

/// One workload's per-time-level plane update, plugged into the engine.
///
/// Implementors hold the workload's borrowed source/destination views for
/// the current chunk; the engine owns scheduling, rings, barriers, faults
/// and observability. `process_level` is called once per
/// (outer step, level, thread) with `z < nz`, and must restrict all
/// writes to this thread's `my_rows` band of local rows (rings) / the
/// matching global rows (destination) — that disjointness is what makes
/// the engine's shared views sound.
pub trait PlaneKernel<T: Real>: Sync {
    /// Stencil radius `R` in the L∞ norm.
    fn radius(&self) -> usize;

    /// How compute ranges behave at grid faces.
    fn boundary(&self) -> BoundaryPolicy;

    /// Components per grid point (1 for scalar stencils, `Q` for LBM).
    fn components(&self) -> usize {
        1
    }

    /// Executes level `t`'s work (1-based, final level = `geom.levels()`)
    /// for global plane `z`, restricted to this thread's `my_rows` band
    /// of local tile rows. Intermediate levels write ring `t − 1`'s plane
    /// for `z` and read ring `t − 2` (level 1 reads the workload's source
    /// grid); the final level writes the workload's destination.
    fn process_level(
        &self,
        geom: &TileGeom,
        rings: &Rings<'_, T>,
        t: usize,
        z: usize,
        my_rows: &Range<usize>,
    );
}

/// Everything a sweep needs besides the kernel and geometry: the team,
/// the shared per-step barrier, the watchdog deadline and the
/// observability bundle. Bundling these keeps every engine entry point
/// within the repo-wide `clippy::too_many_arguments` budget.
pub struct SweepCtx<'a> {
    /// The persistent worker team executing the tile.
    pub team: &'a ThreadTeam,
    /// Barrier separating consecutive outer steps, shared across chunks.
    pub barrier: &'a SpinBarrier,
    /// Watchdog deadline per barrier episode; `None` disables it.
    pub deadline: Option<Duration>,
    /// Timing/tracing sinks (zero-cost when disabled).
    pub obs: &'a Observer<'a>,
}

/// Poisons the barrier if dropped while armed — i.e. during the unwind of
/// a panicking team member — so the surviving members drain at their next
/// [`SpinBarrier::checked_wait`] episode instead of spinning forever on an
/// arrival that will never come.
struct PoisonOnPanic<'a> {
    barrier: &'a SpinBarrier,
    armed: bool,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.poison();
        }
    }
}

/// Streams one tile × chunk through Z on the team under `sched`.
///
/// Every thread owns a fixed band of local Y rows of every sub-plane at
/// every time level (the paper's flexible load-balancing scheme, §V-D);
/// one barrier separates consecutive outer steps. The schedule decides
/// which planes each level advances per step and how many ring slots
/// keep live planes disjoint. Failure paths: a member panic surfaces as
/// [`SyncError::TeamPanicked`]; a poisoned/timed-out barrier surfaces as
/// the first [`SyncError`] any member observed. Either way every member
/// has finished (drained cooperatively) before this returns.
pub fn tile_stream<T: Real, K: PlaneKernel<T>>(
    kernel: &K,
    geom: &TileGeom,
    ctx: &SweepCtx<'_>,
    sched: &dyn Schedule,
) -> Result<(), SyncError> {
    let (r, c) = (geom.radius(), geom.levels());
    let (lx, ly) = (geom.lx(), geom.ly());
    let comps = kernel.components();
    let slots = sched.ring_slots(r);
    let mut ring_bufs: Vec<PlaneRing<T>> = (1..c)
        .map(|_| PlaneRing::new(slots, comps * lx * ly))
        .collect();
    let rings = Rings::new(&mut ring_bufs, slots, comps, lx, ly);

    let n_threads = ctx.team.threads();
    let steps = sched.outer_steps(geom.dim().nz, r, c);
    // Lock-free first-error slot: `OnceLock::set` races are benign (first
    // writer wins), and the healthy fast path never touches it.
    let first_err: OnceLock<SyncError> = OnceLock::new();
    let obs = ctx.obs;

    let run_res = ctx.team.try_run(|tid| {
        let mut guard = PoisonOnPanic {
            barrier: ctx.barrier,
            armed: true,
        };
        let my_rows = even_range(ly, n_threads, tid);
        // `None` when instrumentation is disabled: the loop then performs
        // no clock reads at all (the zero-cost contract).
        let mut compute_start = obs.now();
        for s in 0..steps {
            faults::fault_point(tid, s);
            for t in 1..=c {
                for z in sched.planes_for_level(s, r, t, geom.dim().nz) {
                    let span0 = obs.span_start();
                    kernel.process_level(geom, &rings, t, z, &my_rows);
                    obs.plane_span(tid, z, t, span0);
                }
            }
            if let Some(t0) = compute_start {
                obs.add_compute_ns(tid, t0.elapsed().as_nanos() as u64);
            }
            let bar0 = obs.span_start();
            let wait = obs.barrier_wait(ctx.barrier, ctx.deadline, tid);
            obs.barrier_span(tid, s, bar0);
            compute_start = obs.now();
            if let Err(e) = wait {
                // Cooperative exit: the barrier is poisoned (by a panicked
                // peer's guard or by a timeout), so every member breaks
                // out here and the generation drains in bounded time.
                let _ = first_err.set(e);
                break;
            }
        }
        guard.armed = false;
    });
    run_res?;
    match first_err.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Streams one tile × chunk entirely on the calling thread under `sched`
/// (no barriers, no fault points) — the building block of the
/// tile-level-parallel scheduling ablation, where parallelism is across
/// tiles instead of across rows.
pub fn tile_stream_serial<T: Real, K: PlaneKernel<T>>(
    kernel: &K,
    geom: &TileGeom,
    sched: &dyn Schedule,
) {
    if !geom.has_commit() {
        return;
    }
    let (r, c) = (geom.radius(), geom.levels());
    let (lx, ly) = (geom.lx(), geom.ly());
    let comps = kernel.components();
    let slots = sched.ring_slots(r);
    let mut ring_bufs: Vec<PlaneRing<T>> = (1..c)
        .map(|_| PlaneRing::new(slots, comps * lx * ly))
        .collect();
    let rings = Rings::new(&mut ring_bufs, slots, comps, lx, ly);
    let my_rows = 0..ly;
    for s in 0..sched.outer_steps(geom.dim().nz, r, c) {
        for t in 1..=c {
            for z in sched.planes_for_level(s, r, t, geom.dim().nz) {
                kernel.process_level(geom, &rings, t, z, &my_rows);
            }
        }
    }
}

/// Runs one chunk of `chunk ≤ b.dim_t` time levels over every owned tile
/// of the XY plane, calling `on_tile` after each tile that committed
/// (for the caller's stats accounting).
///
/// The caller swaps its double buffer between chunks; the engine is
/// oblivious to what "source" and "destination" mean — they live inside
/// the [`PlaneKernel`] impl built per chunk. The schedule rides in on
/// `b.schedule`.
pub fn stream_chunk<T: Real, K: PlaneKernel<T>>(
    kernel: &K,
    dim: Dim3,
    b: Blocking35,
    chunk: usize,
    ctx: &SweepCtx<'_>,
    mut on_tile: impl FnMut(&TileGeom),
) -> Result<(), SyncError> {
    let r = kernel.radius();
    let policy = kernel.boundary();
    let sched = b.schedule.schedule();
    let mut oy = 0usize;
    while oy < dim.ny {
        let oy1 = (oy + b.dim_y).min(dim.ny);
        let mut ox = 0usize;
        while ox < dim.nx {
            let ox1 = (ox + b.dim_x).min(dim.nx);
            let geom = TileGeom::new(dim, r, chunk, policy, ox..ox1, oy..oy1);
            if geom.has_commit() {
                tile_stream(kernel, &geom, ctx, sched)?;
                on_tile(&geom);
            }
            ox = ox1;
        }
        oy = oy1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_rim_stops_r_short_of_faces() {
        let d = Dim3::cube(16);
        // Whole-plane tile, R=1, c=2: every level computes the interior.
        let g = TileGeom::new(d, 1, 2, BoundaryPolicy::DirichletRim, 0..16, 0..16);
        assert_eq!(g.compute_x(1), 1..15);
        assert_eq!(g.compute_x(2), 1..15);
        assert_eq!(g.compute_y(2), 1..15);
        assert_eq!(g.interior_z(), 1..15);
        assert!(g.has_commit());
    }

    #[test]
    fn face_extended_reaches_the_faces() {
        let d = Dim3::cube(16);
        let g = TileGeom::new(d, 1, 2, BoundaryPolicy::FaceExtended, 0..16, 0..16);
        assert_eq!(g.compute_x(1), 0..16);
        assert_eq!(g.compute_x(2), 0..16);
        assert_eq!(g.compute_y(2), 0..16);
        assert!(g.has_commit());
    }

    #[test]
    fn internal_edges_shrink_identically_under_both_policies() {
        // An interior tile never touches a face, so the policies agree:
        // valid ranges shrink by R per level from the loaded edges back
        // to exactly the owned tile at the final level.
        let d = Dim3::new(32, 32, 16);
        for policy in [BoundaryPolicy::DirichletRim, BoundaryPolicy::FaceExtended] {
            let g = TileGeom::new(d, 1, 3, policy, 8..16, 8..16);
            assert_eq!(g.gx0(), 5);
            assert_eq!(g.gx1(), 19);
            assert_eq!(g.compute_x(1), 6..18, "{policy:?}");
            assert_eq!(g.compute_x(2), 7..17, "{policy:?}");
            assert_eq!(g.compute_x(3), 8..16, "{policy:?}");
        }
    }

    #[test]
    fn rim_only_tile_commits_nothing_under_dirichlet_but_commits_under_lbm() {
        // A 1-wide tile hugging the X face: its owned points are all rim
        // points for the stencil (nothing to commit), but LBM boundary
        // sites update themselves.
        let d = Dim3::new(16, 16, 8);
        let dirichlet = TileGeom::new(d, 1, 1, BoundaryPolicy::DirichletRim, 0..1, 4..8);
        assert!(!dirichlet.has_commit());
        let lbm = TileGeom::new(d, 1, 1, BoundaryPolicy::FaceExtended, 0..1, 4..8);
        assert!(lbm.has_commit());
        assert_eq!(lbm.compute_x(1), 0..1);
    }

    #[test]
    fn higher_radius_needs_more_ring_slots() {
        assert_eq!(ring_slots(1), 4); // 2R+2 = 3R+1 = 4 at R=1
        assert_eq!(ring_slots(2), 7); // 3R+1 > 2R+2 from R=2 on
        assert_eq!(ring_slots(3), 10);
    }
}
