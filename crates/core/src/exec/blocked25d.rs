//! 2.5-D spatial blocking (paper §V-A3).
//!
//! The XY plane is covered by non-overlapping *owned* tiles of
//! `dim_x × dim_y`; each tile's ghost-expanded footprint streams through Z
//! via an explicit `Buffer^2.5D` ring of `2R+1` sub-planes, exactly the
//! paper's two-phase algorithm:
//!
//! * **Phase 1 (prolog):** load the tile's sub-planes `z ∈ [0, 2R)` into
//!   the ring;
//! * **Phase 2:** for each `z ∈ [R, N_Z − R)`: load sub-plane `z + R` into
//!   `Buffer[(z+R) % (2R+1)]`, compute sub-plane `z` from the ring and
//!   store the result to the destination grid.

use threefive_grid::{Dim3, DoubleGrid, Grid3, PlaneRing, Real};

use crate::exec::{elem_bytes, has_interior};
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// One Jacobi sweep ladder with 2.5-D spatial blocking of XY tile
/// `dim_x × dim_y`.
///
/// Result ends in `grids.src()`; bit-exact with
/// [`reference_sweep`](crate::exec::reference_sweep).
///
/// # Panics
/// Panics if `dim_x == 0 || dim_y == 0`.
pub fn blocked25d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    dim_x: usize,
    dim_y: usize,
) -> SweepStats {
    assert!(
        dim_x > 0 && dim_y > 0,
        "blocked25d_sweep: tile dims must be positive"
    );
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let mut stats = SweepStats::default();
    for _ in 0..steps {
        let (src, dst) = grids.pair_mut();
        // Tile the full XY plane with owned tiles.
        let mut oy = 0usize;
        while oy < dim.ny {
            let oy1 = (oy + dim_y).min(dim.ny);
            let mut ox = 0usize;
            while ox < dim.nx {
                let ox1 = (ox + dim_x).min(dim.nx);
                stats = stats + tile_sweep(kernel, src, dst, dim, r, ox, ox1, oy, oy1);
                ox = ox1;
            }
            oy = oy1;
        }
        grids.swap();
    }
    stats
}

/// Streams one XY tile through Z with an explicit 2R+1-plane ring.
#[allow(clippy::too_many_arguments)]
fn tile_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    src: &Grid3<T>,
    dst: &mut Grid3<T>,
    dim: Dim3,
    r: usize,
    ox: usize,
    ox1: usize,
    oy: usize,
    oy1: usize,
) -> SweepStats {
    // Ghost-expanded (loaded) footprint, clamped to the grid.
    let gx0 = ox.saturating_sub(r);
    let gx1 = (ox1 + r).min(dim.nx);
    let gy0 = oy.saturating_sub(r);
    let gy1 = (oy1 + r).min(dim.ny);
    let (lx, ly) = (gx1 - gx0, gy1 - gy0);

    // Computed region: owned ∩ grid interior.
    let cx0 = ox.max(r);
    let cx1 = ox1.min(dim.nx - r);
    let cy0 = oy.max(r);
    let cy1 = oy1.min(dim.ny - r);
    if cx0 >= cx1 || cy0 >= cy1 {
        return SweepStats::default();
    }

    let mut ring = PlaneRing::<T>::new(2 * r + 1, lx * ly);
    let load = |ring: &mut PlaneRing<T>, z: usize, src: &Grid3<T>| {
        let plane = ring.plane_mut(z);
        for ly_i in 0..ly {
            let gy = gy0 + ly_i;
            plane[ly_i * lx..(ly_i + 1) * lx].copy_from_slice(&src.row(gy, z)[gx0..gx1]);
        }
    };

    // Phase 1: prolog — sub-planes [0, 2R).
    for z in 0..2 * r {
        load(&mut ring, z, src);
    }

    // Phase 2: stream.
    let mut stats = SweepStats::default();
    for z in r..dim.nz - r {
        load(&mut ring, z + r, src);
        let planes: Vec<&[T]> = (z - r..=z + r).map(|zz| ring.plane(zz)).collect();
        for y in cy0..cy1 {
            let out = &mut dst.row_mut(y, z)[cx0..cx1];
            kernel.apply_row(&planes, lx, y - gy0, cx0 - gx0..cx1 - gx0, out);
        }
        let row_points = ((cx1 - cx0) * (cy1 - cy0)) as u64;
        stats.stencil_updates += row_points;
        stats.committed_points += row_points;
    }

    // Modeled traffic: the loaded footprint streams in once (the κ²·⁵ᴰ
    // overestimation lives in lx·ly vs the owned area), the computed
    // region streams out with write-allocate.
    let e = elem_bytes::<T>();
    let committed = stats.committed_points;
    stats.dram_bytes_read = (lx * ly * dim.nz) as u64 * e + committed * e;
    stats.dram_bytes_written = committed * e;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::{GenericStar, SevenPoint, TwentySevenPoint};
    use crate::planner::kappa_25d;

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 7 + y * 3 + z * 11) % 13) as f64) * 0.5 - 3.0)
        }))
    }

    #[test]
    fn matches_reference_for_various_tiles() {
        let d = Dim3::new(15, 11, 8);
        let k = SevenPoint::new(0.35f32, 0.105);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 3);
        for (tx, ty) in [(4usize, 4usize), (5, 3), (15, 11), (1, 1), (7, 20)] {
            let mut got = init::<f32>(d);
            blocked25d_sweep(&k, &mut got, 3, tx, ty);
            assert_eq!(
                got.src().as_slice(),
                want.src().as_slice(),
                "tile {tx}x{ty}"
            );
        }
    }

    #[test]
    fn matches_reference_27_point() {
        let d = Dim3::cube(10);
        let k = TwentySevenPoint::<f64>::smoothing();
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 2);
        let mut got = init::<f64>(d);
        blocked25d_sweep(&k, &mut got, 2, 4, 6);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn matches_reference_radius_three() {
        let d = Dim3::cube(15);
        let k = GenericStar::<f32>::smoothing(3);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 2);
        let mut got = init::<f32>(d);
        blocked25d_sweep(&k, &mut got, 2, 6, 5);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn spatial_blocking_never_recomputes() {
        let d = Dim3::cube(12);
        let k = SevenPoint::new(0.4f64, 0.1);
        let mut g = init::<f64>(d);
        let stats = blocked25d_sweep(&k, &mut g, 2, 4, 4);
        assert!((stats.overestimation() - 1.0).abs() < 1e-12);
        // Every interior point committed once per step.
        assert_eq!(stats.committed_points, 10 * 10 * 10 * 2);
    }

    #[test]
    fn modeled_read_traffic_tracks_kappa_25d() {
        // Interior tiles of t×t with radius r read (t+2r)² per t² owned.
        let t = 6usize;
        let r = 1usize;
        let d = Dim3::new(t * 4, t * 4, 10);
        let k = SevenPoint::new(0.4f32, 0.1);
        let mut g = init::<f32>(d);
        let stats = blocked25d_sweep(&k, &mut g, 1, t, t);
        let read_planes = (stats.dram_bytes_read / 4) as f64 - stats.committed_points as f64;
        let ideal = (d.len()) as f64; // loading each point exactly once
        let measured_kappa = read_planes / ideal;
        let kappa = kappa_25d(r, t + 2 * r, t + 2 * r);
        assert!(
            measured_kappa <= kappa && measured_kappa > 0.85 * kappa,
            "measured {measured_kappa} vs kappa {kappa}"
        );
    }
}
