//! 4-D blocking (3-D space + 1-D time) — the comparison baseline.
//!
//! The paper evaluates 4-D blocking (as in Williams et al. on Cell) to
//! quantify why 2.5-D spatial blocking is the better partner for temporal
//! blocking: a 3-D block must shrink by `R·dim_T` in **three** dimensions,
//! so its overestimation κ⁴ᴰ is much larger (2.03X vs 1.21X for LBM SP,
//! §VI-B). Each ghost-expanded block is copied into a local double buffer,
//! advanced `dim_T` steps locally, and its owned region written back.

use threefive_grid::{Dim3, DoubleGrid, Grid3, Real, Region3};

use crate::exec::{elem_bytes, has_interior};
use crate::kernel::StencilKernel;
use crate::stats::SweepStats;

/// Jacobi sweeps with 4-D blocking: cubic blocks of edge `block`, `dim_t`
/// time steps per DRAM round trip.
///
/// Result ends in `grids.src()`; bit-exact with
/// [`reference_sweep`](crate::exec::reference_sweep).
///
/// # Panics
/// Panics if `block == 0` or `dim_t == 0`.
pub fn blocked4d_sweep<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    grids: &mut DoubleGrid<T>,
    steps: usize,
    block: usize,
    dim_t: usize,
) -> SweepStats {
    assert!(block > 0, "blocked4d_sweep: block edge must be positive");
    assert!(dim_t > 0, "blocked4d_sweep: dim_t must be positive");
    let dim = grids.dim();
    let r = kernel.radius();
    if !has_interior(dim, r) {
        return SweepStats::default();
    }
    let mut stats = SweepStats::default();
    let mut remaining = steps;
    while remaining > 0 {
        let chunk = remaining.min(dim_t);
        let (src, dst) = grids.pair_mut();
        // Owned blocks tile the whole grid.
        let mut oz = 0usize;
        while oz < dim.nz {
            let oz1 = (oz + block).min(dim.nz);
            let mut oy = 0usize;
            while oy < dim.ny {
                let oy1 = (oy + block).min(dim.ny);
                let mut ox = 0usize;
                while ox < dim.nx {
                    let ox1 = (ox + block).min(dim.nx);
                    let owned = Region3::new(ox, ox1, oy, oy1, oz, oz1);
                    stats = stats + block_pipeline(kernel, src, dst, dim, r, chunk, &owned);
                    ox = ox1;
                }
                oy = oy1;
            }
            oz = oz1;
        }
        grids.swap();
        remaining -= chunk;
    }
    stats
}

/// Runs `chunk` local time steps for one owned block.
fn block_pipeline<T: Real, K: StencilKernel<T>>(
    kernel: &K,
    src: &Grid3<T>,
    dst: &mut Grid3<T>,
    dim: Dim3,
    r: usize,
    chunk: usize,
    owned: &Region3,
) -> SweepStats {
    let h = r * chunk;
    // Ghost-expanded (loaded) footprint, clamped to the grid.
    let loaded = Region3::new(
        owned.x0.saturating_sub(h),
        (owned.x1 + h).min(dim.nx),
        owned.y0.saturating_sub(h),
        (owned.y1 + h).min(dim.ny),
        owned.z0.saturating_sub(h),
        (owned.z1 + h).min(dim.nz),
    );
    let ldim = Dim3::new(loaded.nx(), loaded.ny(), loaded.nz());

    // Copy the footprint into a local double buffer.
    let mut local = DoubleGrid::from_initial(Grid3::from_fn(ldim, |x, y, z| {
        src.get(loaded.x0 + x, loaded.y0 + y, loaded.z0 + z)
    }));

    let mut stats = SweepStats::default();
    for s in 1..=chunk {
        // Valid region at local step s: shrink by r·s from every side that
        // was not clamped at the grid face; grid faces stay Dirichlet.
        let compute = local_compute_region(dim, &loaded, r, s);
        if compute.is_empty() {
            local.swap();
            continue;
        }
        let (lsrc, ldst) = local.pair_mut();
        for z in compute.zs() {
            let planes: Vec<&[T]> = (z - r..=z + r).map(|zz| lsrc.plane(zz)).collect();
            for y in compute.ys() {
                let out = &mut ldst.row_mut(y, z)[compute.xs()];
                kernel.apply_row(&planes, ldim.nx, y, compute.xs(), out);
            }
        }
        stats.stencil_updates += compute.len() as u64;
        local.swap();
    }

    // Write back the owned ∩ interior region at time T+chunk.
    let commit = Region3::new(
        owned.x0.max(r),
        owned.x1.min(dim.nx - r),
        owned.y0.max(r),
        owned.y1.min(dim.ny - r),
        owned.z0.max(r),
        owned.z1.min(dim.nz - r),
    );
    let result = local.src();
    for z in commit.zs() {
        for y in commit.ys() {
            let lrow = &result.row(y - loaded.y0, z - loaded.z0)
                [commit.x0 - loaded.x0..commit.x1 - loaded.x0];
            dst.row_mut(y, z)[commit.xs()].copy_from_slice(lrow);
        }
    }
    stats.committed_points = (commit.len() * chunk) as u64;
    let e = elem_bytes::<T>();
    stats.dram_bytes_read = loaded.len() as u64 * e + commit.len() as u64 * e;
    stats.dram_bytes_written = commit.len() as u64 * e;
    stats
}

/// Compute region inside the local buffer at local step `s`: shrink by
/// `r·s` on tile-interior sides, but only by `r` (the Dirichlet rim) on
/// sides clamped at a grid face.
fn local_compute_region(dim: Dim3, loaded: &Region3, r: usize, s: usize) -> Region3 {
    let shrink = r * s;
    let lo = |clamped: bool| if clamped { r } else { shrink };
    let hi = |n: usize, clamped: bool| n.saturating_sub(if clamped { r } else { shrink });
    Region3::new(
        lo(loaded.x0 == 0),
        hi(loaded.nx(), loaded.x1 == dim.nx),
        lo(loaded.y0 == 0),
        hi(loaded.ny(), loaded.y1 == dim.ny),
        lo(loaded.z0 == 0),
        hi(loaded.nz(), loaded.z1 == dim.nz),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference_sweep;
    use crate::kernel::{GenericStar, SevenPoint};
    use crate::planner::kappa_4d;

    fn init<T: Real>(d: Dim3) -> DoubleGrid<T> {
        DoubleGrid::from_initial(Grid3::from_fn(d, |x, y, z| {
            T::from_f64((((x * 5 + y * 9 + z * 13) % 11) as f64) * 0.75 - 4.0)
        }))
    }

    #[test]
    fn matches_reference_over_step_and_block_grid() {
        let d = Dim3::new(12, 10, 9);
        let k = SevenPoint::new(0.3f32, 0.11);
        for steps in [1usize, 2, 3, 5] {
            let mut want = init::<f32>(d);
            reference_sweep(&k, &mut want, steps);
            for block in [4usize, 6, 16] {
                for dim_t in [1usize, 2, 3] {
                    let mut got = init::<f32>(d);
                    blocked4d_sweep(&k, &mut got, steps, block, dim_t);
                    assert_eq!(
                        got.src().as_slice(),
                        want.src().as_slice(),
                        "steps={steps} block={block} dim_t={dim_t}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_reference_radius_two_f64() {
        let d = Dim3::cube(14);
        let k = GenericStar::<f64>::smoothing(2);
        let mut want = init::<f64>(d);
        reference_sweep(&k, &mut want, 4);
        let mut got = init::<f64>(d);
        blocked4d_sweep(&k, &mut got, 4, 6, 2);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }

    #[test]
    fn read_traffic_tracks_kappa_4d() {
        // κ⁴ᴰ is the *bandwidth* overestimation: loaded (ghost-expanded)
        // volume per owned volume. Blocks of edge b load (b + 2R·dimT)³.
        let b = 8usize;
        let dim_t = 2usize;
        let r = 1usize;
        let d = Dim3::cube(b * 3);
        let k = SevenPoint::new(0.4f64, 0.1);
        let mut g = init::<f64>(d);
        let stats = blocked4d_sweep(&k, &mut g, dim_t, b, dim_t);
        // Subtract the write-allocate component, then compare reads to the
        // ideal one-load-per-point traffic.
        let e = 8u64;
        let commit_bytes = d.interior_region(r).len() as u64 * e;
        let measured_kappa =
            (stats.dram_bytes_read - commit_bytes) as f64 / (d.len() as u64 * e) as f64;
        let loaded = b + 2 * r * dim_t;
        let kappa = kappa_4d(r, dim_t, loaded, loaded, loaded);
        // Face-clamped blocks load less than the interior formula.
        assert!(
            measured_kappa <= kappa * 1.0001 && measured_kappa > 0.5 * kappa,
            "measured {measured_kappa} vs kappa {kappa}"
        );
        // Temporal ghost recomputation must also show up in compute counts.
        assert!(stats.overestimation() > 1.2, "{}", stats.overestimation());
    }

    #[test]
    fn partial_tail_chunk_is_handled() {
        let d = Dim3::cube(9);
        let k = SevenPoint::new(0.4f32, 0.1);
        let mut want = init::<f32>(d);
        reference_sweep(&k, &mut want, 5);
        let mut got = init::<f32>(d);
        // 5 steps with dim_t = 3 → chunks of 3 + 2.
        blocked4d_sweep(&k, &mut got, 5, 5, 3);
        assert_eq!(got.src().as_slice(), want.src().as_slice());
    }
}
