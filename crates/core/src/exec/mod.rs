//! The executor ladder (paper §V, §VI-A).
//!
//! Every function here advances a Jacobi [`DoubleGrid`](threefive_grid::DoubleGrid) by `steps` time
//! steps under Dirichlet boundaries and leaves the result in `grids.src()`.
//! All executors compute **identical results** (bit-exact, because kernels
//! fix their association order); they differ only in traversal order,
//! buffering, temporal blocking and parallelism — which is exactly what
//! the paper's figures compare.
//!
//! | Executor | Paper label |
//! |---|---|
//! | [`reference_sweep`] | no-blocking, scalar |
//! | [`simd_sweep`] | no-blocking (+SIMD) |
//! | [`blocked3d_sweep`] | 3-D spatial blocking |
//! | [`blocked25d_sweep`] | spatial-only (2.5-D) blocking |
//! | [`temporal_sweep`] | temporal-only blocking |
//! | [`blocked4d_sweep`] | 4-D (3-D space + time) blocking |
//! | [`blocked35d_sweep`] | 3.5-D blocking, serial |
//! | [`parallel35d_sweep`] | 3.5-D blocking, parallel |

mod blocked25d;
mod blocked3d;
mod blocked4d;
pub mod engine35;
mod periodic;
mod pipeline35;
mod reference;
pub mod schedule;
mod tile_parallel;

pub use blocked25d::blocked25d_sweep;
pub use blocked3d::blocked3d_sweep;
pub use blocked4d::blocked4d_sweep;
pub use engine35::{
    level_lag, outer_steps, plane_for_level, ring_slots, stream_chunk, tile_stream,
    tile_stream_serial, Blocking35, BoundaryPolicy, PlaneKernel, Rings, SweepCtx, TileGeom,
};
pub use periodic::{periodic35d_sweep, reference_sweep_periodic, wrap_extend};
pub use pipeline35::{blocked35d_sweep, parallel35d_sweep, temporal_sweep, try_parallel35d_sweep};
pub use reference::{reference_sweep, simd_sweep};
pub use schedule::{
    Lag35, Schedule, ScheduleKind, WavefrontDiamond, WavefrontShared, DIAMOND_SPAN,
};
pub use tile_parallel::tile_parallel35d_sweep;

use threefive_grid::{Dim3, Real};

/// Validates that a grid is large enough for radius-`r` sweeps to have an
/// interior; returns `false` for degenerate grids where every sweep is a
/// no-op (the executors then return immediately, by construction agreeing
/// with the reference).
pub(crate) fn has_interior(dim: Dim3, r: usize) -> bool {
    !dim.interior_region(r).is_empty()
}

/// Bytes of one grid point for modeled-traffic purposes.
pub(crate) fn elem_bytes<T: Real>() -> u64 {
    T::BYTES as u64
}
